"""Compression codec tests."""

import pytest
from hypothesis import given, strategies as st

from repro.common.compression import (
    NoneCodec,
    ZlibCodec,
    codec_by_id,
    codec_by_name,
    compress_with_header,
    decompress_with_header,
)
from repro.common.errors import SerdeError


class TestCodecs:
    @given(st.binary(max_size=500))
    def test_zlib_roundtrip(self, data):
        codec = ZlibCodec(6)
        assert codec.decompress(codec.compress(data)) == data

    @given(st.binary(max_size=200))
    def test_none_roundtrip(self, data):
        codec = NoneCodec()
        assert codec.decompress(codec.compress(data)) == data

    def test_zlib_compresses_repetitive_data(self):
        data = b"abcdef" * 1000
        assert len(ZlibCodec(6).compress(data)) < len(data) // 4

    def test_higher_level_not_larger(self):
        data = bytes(range(256)) * 50
        assert len(ZlibCodec(9).compress(data)) <= len(ZlibCodec(1).compress(data))

    @pytest.mark.parametrize("level", [0, 10, -1])
    def test_bad_level_rejected(self, level):
        with pytest.raises(ValueError):
            ZlibCodec(level)

    def test_corrupt_zlib_raises(self):
        with pytest.raises(SerdeError):
            ZlibCodec(6).decompress(b"not zlib data")


class TestRegistry:
    def test_lookup_by_id(self):
        assert codec_by_id(0).name == "none"
        assert codec_by_id(6).name == "zlib"

    def test_unknown_id(self):
        with pytest.raises(SerdeError):
            codec_by_id(42)

    @pytest.mark.parametrize(
        "name,wire_id", [("none", 0), ("zlib", 6), ("zlib:1", 1), ("zlib:9", 9)]
    )
    def test_lookup_by_name(self, name, wire_id):
        assert codec_by_name(name).wire_id == wire_id

    @pytest.mark.parametrize("bad", ["gzip", "zlib:abc", "zlib:42"])
    def test_bad_names(self, bad):
        with pytest.raises(SerdeError):
            codec_by_name(bad)


class TestHeaderedPayloads:
    @given(st.binary(max_size=300), st.sampled_from(["none", "zlib:1", "zlib:6"]))
    def test_self_describing_roundtrip(self, data, codec_name):
        codec = codec_by_name(codec_name)
        payload = compress_with_header(codec, data)
        assert decompress_with_header(payload) == data

    def test_empty_payload_rejected(self):
        with pytest.raises(SerdeError):
            decompress_with_header(b"")

    def test_reader_needs_no_codec_knowledge(self):
        # A zlib-9 writer and a reader that never saw the config.
        payload = compress_with_header(codec_by_name("zlib:9"), b"hello")
        assert decompress_with_header(payload) == b"hello"
