"""Workload generator tests: determinism, skew, burst geometry."""

import pytest

from repro.common.clock import MINUTES
from repro.events.generators import BurstWorkload, FraudWorkload, ZipfSampler, fraud_schema


class TestFraudSchema:
    def test_has_103_fields_by_default(self):
        assert len(fraud_schema()) == 103

    def test_core_fields_present(self):
        schema = fraud_schema()
        for name in ("cardId", "merchantId", "amount"):
            assert schema.has_field(name)

    def test_custom_width(self):
        assert len(fraud_schema(50)) == 50

    def test_too_narrow_rejected(self):
        with pytest.raises(ValueError):
            fraud_schema(3)


class TestZipfSampler:
    def test_rank_zero_most_popular(self):
        import random

        sampler = ZipfSampler(1000, 1.2, random.Random(1))
        counts = {}
        for _ in range(20_000):
            rank = sampler.sample()
            counts[rank] = counts.get(rank, 0) + 1
        assert counts.get(0, 0) > counts.get(100, 0)
        assert all(0 <= rank < 1000 for rank in counts)

    def test_uniform_when_s_zero(self):
        import random

        sampler = ZipfSampler(10, 0.0, random.Random(2))
        counts = [0] * 10
        for _ in range(20_000):
            counts[sampler.sample()] += 1
        assert max(counts) < 2 * min(counts)

    def test_bad_parameters(self):
        import random

        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(1))
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, random.Random(1))


class TestFraudWorkload:
    def test_deterministic_given_seed(self):
        a = FraudWorkload(seed=7).take(50)
        b = FraudWorkload(seed=7).take(50)
        assert [e.fields for e in a] == [e.fields for e in b]
        assert [e.timestamp for e in a] == [e.timestamp for e in b]

    def test_different_seeds_differ(self):
        a = FraudWorkload(seed=1).take(20)
        b = FraudWorkload(seed=2).take(20)
        assert [e.fields for e in a] != [e.fields for e in b]

    def test_events_validate_against_schema(self):
        workload = FraudWorkload(seed=3)
        for event in workload.take(30):
            workload.schema.validate_event(event)

    def test_timestamps_monotone(self):
        events = FraudWorkload(seed=4).take(200)
        assert all(
            events[i].timestamp <= events[i + 1].timestamp
            for i in range(len(events) - 1)
        )

    def test_rate_approximately_respected(self):
        events = FraudWorkload(seed=5, events_per_second=1000.0).take(2000)
        span_s = (events[-1].timestamp - events[0].timestamp) / 1000.0
        rate = len(events) / span_s
        assert 700 < rate < 1400

    def test_paced_mode_has_fixed_interarrival(self):
        events = FraudWorkload(seed=6, events_per_second=100.0, jitter=0).take(10)
        gaps = {
            events[i + 1].timestamp - events[i].timestamp
            for i in range(len(events) - 1)
        }
        assert gaps == {10}

    def test_card_skew_is_heavy(self):
        events = FraudWorkload(seed=8, cards=1000).take(3000)
        counts = {}
        for event in events:
            counts[event["cardId"]] = counts.get(event["cardId"], 0) + 1
        top = max(counts.values())
        assert top > 3000 / 1000 * 10  # head card way above average

    def test_ids_unique(self):
        events = FraudWorkload(seed=9).take(500)
        assert len({e.event_id for e in events}) == 500

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FraudWorkload(events_per_second=0)


class TestBurstWorkload:
    def test_burst_fits_inside_window(self):
        window = 5 * MINUTES
        for burst in BurstWorkload(window, entities=20, seed=1).bursts():
            span = burst[-1].timestamp - burst[0].timestamp
            assert 0 < span < window

    def test_burst_size(self):
        for burst in BurstWorkload(5 * MINUTES, burst_size=7, entities=5).bursts():
            assert len(burst) == 7

    def test_bursts_are_isolated_in_time(self):
        bursts = list(BurstWorkload(5 * MINUTES, entities=10, seed=2).bursts())
        for previous, current in zip(bursts, bursts[1:]):
            gap = current[0].timestamp - previous[-1].timestamp
            assert gap > 5 * MINUTES

    def test_span_range_respected(self):
        window = 5 * MINUTES
        workload = BurstWorkload(window, entities=20, seed=3, span_range=(0.9, 0.95))
        for burst in workload.bursts():
            span = burst[-1].timestamp - burst[0].timestamp
            assert 0.85 * window < span < 0.96 * window

    def test_timestamps_sorted_within_burst(self):
        for burst in BurstWorkload(5 * MINUTES, entities=10, seed=4).bursts():
            timestamps = [event.timestamp for event in burst]
            assert timestamps == sorted(timestamps)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            BurstWorkload(1000, burst_size=1)
        with pytest.raises(ValueError):
            BurstWorkload(1000, span_range=(0.0, 0.5))
