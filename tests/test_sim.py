"""Simulation substrate tests: distributions, GC, Kafka, pipeline."""

import random

import pytest

from repro.sim import (
    Exponential,
    GcConfig,
    GcModel,
    HoppingServiceConfig,
    HoppingServiceModel,
    KafkaConfig,
    KafkaModel,
    LogNormal,
    PipelineConfig,
    RailgunServiceConfig,
    RailgunServiceModel,
    simulate_pipeline,
)
from repro.sim.service import PerEventScanConfig, PerEventScanServiceModel


class TestDistributions:
    def test_lognormal_median(self):
        sampler = LogNormal(10.0, 0.5, random.Random(1))
        samples = sorted(sampler.sample() for _ in range(4000))
        median = samples[2000]
        assert 8.5 < median < 11.5

    def test_lognormal_zero_sigma_is_constant(self):
        sampler = LogNormal(5.0, 0.0, random.Random(1))
        assert sampler.sample() == pytest.approx(5.0)

    def test_exponential_mean(self):
        sampler = Exponential(4.0, random.Random(2))
        mean = sum(sampler.sample() for _ in range(4000)) / 4000
        assert 3.5 < mean < 4.5

    def test_bad_params(self):
        with pytest.raises(ValueError):
            LogNormal(0, 0.5, random.Random(1))
        with pytest.raises(ValueError):
            Exponential(0, random.Random(1))


class TestGcModel:
    def test_no_pause_before_young_fills(self):
        gc = GcModel(GcConfig(young_gen_bytes=1e9, alloc_per_event_bytes=1e6),
                     random.Random(1))
        pauses = [gc.on_event() for _ in range(999)]
        assert all(p == 0.0 for p in pauses)
        assert gc.on_event() > 0.0
        assert gc.minor_pauses == 1

    def test_low_pressure_never_majors(self):
        config = GcConfig(
            young_gen_bytes=1e8, alloc_per_event_bytes=1e6,
            baseline_live_bytes=1e9, heap_bytes=10e9,
        )
        gc = GcModel(config, random.Random(2))
        for _ in range(50_000):
            gc.on_event()
        assert gc.major_pauses == 0
        assert gc.heap_pressure < 0.2

    def test_high_pressure_triggers_majors(self):
        config = GcConfig(
            young_gen_bytes=1e8, alloc_per_event_bytes=1e6,
            baseline_live_bytes=1e9, heap_bytes=10e9,
        )
        gc = GcModel(config, random.Random(3), extra_live_bytes=8e9)
        for _ in range(50_000):
            gc.on_event()
        assert gc.major_pauses > 0

    def test_major_pauses_are_long(self):
        config = GcConfig(
            young_gen_bytes=1e8, alloc_per_event_bytes=1e6,
            baseline_live_bytes=1e9, heap_bytes=10e9,
            major_pause_median_ms=280.0,
        )
        gc = GcModel(config, random.Random(4), extra_live_bytes=8.5e9)
        longest = max(gc.on_event() for _ in range(50_000))
        assert longest > 100.0


class TestKafkaModel:
    def test_leg_delay_positive(self):
        model = KafkaModel(KafkaConfig(), random.Random(1))
        assert all(model.leg_delay() > 0 for _ in range(100))

    def test_partition_overload_raises_median(self):
        light = KafkaModel(KafkaConfig(), random.Random(1), total_partitions=4, brokers=1)
        heavy = KafkaModel(KafkaConfig(), random.Random(1), total_partitions=400, brokers=1)
        assert heavy.effective_median_ms > light.effective_median_ms

    def test_acks_all_adds_latency(self):
        plain = KafkaModel(KafkaConfig(), random.Random(1), acks_all=False)
        acked = KafkaModel(KafkaConfig(), random.Random(1), acks_all=True)
        assert acked.effective_median_ms > plain.effective_median_ms

    def test_hiccups_appear_in_tail(self):
        config = KafkaConfig(hiccup_probability=0.01)
        model = KafkaModel(config, random.Random(5))
        longest = max(model.leg_delay() for _ in range(5000))
        assert longest > 30.0


class TestServiceModels:
    def test_railgun_mean_close_to_samples(self):
        config = RailgunServiceConfig()
        model = RailgunServiceModel(config, random.Random(1))
        samples = [model.service_ms(i, 0) for i in range(5000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(model.mean_service_ms, rel=0.5)

    def test_railgun_miss_probability_grows_with_iterators(self):
        few = RailgunServiceModel(
            RailgunServiceConfig(iterators=20, cache_capacity=220), random.Random(1)
        )
        many = RailgunServiceModel(
            RailgunServiceConfig(iterators=240, cache_capacity=220), random.Random(1)
        )
        assert many._miss_probability > 100 * few._miss_probability

    def test_hopping_cost_grows_with_pane_count(self):
        coarse = HoppingServiceModel(
            HoppingServiceConfig(hop_ms=300_000), random.Random(1)
        )
        fine = HoppingServiceModel(
            HoppingServiceConfig(hop_ms=1_000), random.Random(1)
        )
        assert fine.mean_service_ms > 10 * coarse.mean_service_ms
        assert fine.panes_per_event == 3600

    def test_hopping_burst_at_hop_boundary(self):
        config = HoppingServiceConfig(hop_ms=10_000, active_keys=10_000)
        model = HoppingServiceModel(config, random.Random(2))
        inside = model.service_ms(1_000, 0)
        crossing = model.service_ms(11_000, 0)  # crosses one hop boundary
        assert crossing > inside + 0.5 * model.rotation_burst_ms

    def test_perevent_scan_is_expensive(self):
        scan = PerEventScanServiceModel(PerEventScanConfig(), random.Random(1))
        railgun = RailgunServiceModel(RailgunServiceConfig(), random.Random(1))
        assert scan.mean_service_ms > 5 * railgun.mean_service_ms


class TestBatchedCostModel:
    """The per-batch vs per-event amortization split (batched ingest)."""

    def test_batch_size_one_is_bit_identical_to_legacy(self):
        # With poll_batch_events=1 the amortized distribution never
        # draws, so the split is inert: samples must not depend on the
        # dispatch share at all.
        a = RailgunServiceModel(
            RailgunServiceConfig(dispatch_us=0.0), random.Random(11)
        )
        b = RailgunServiceModel(
            RailgunServiceConfig(dispatch_us=110.0), random.Random(11)
        )
        assert [a.service_ms(i, 0) for i in range(2000)] == [
            b.service_ms(i, 0) for i in range(2000)
        ]

    def test_follower_events_skip_dispatch(self):
        config = RailgunServiceConfig(poll_batch_events=64, jitter_sigma=0.0)
        model = RailgunServiceModel(config, random.Random(1))
        leader = model.service_ms(0, 0, first_of_batch=True)
        follower = model.service_ms(1, 0, first_of_batch=False)
        assert leader - follower == pytest.approx(
            config.dispatch_us / 1000.0, rel=1e-6
        )

    def test_batched_mean_interpolates_dispatch(self):
        config = RailgunServiceConfig(poll_batch_events=64)
        model = RailgunServiceModel(config, random.Random(1))
        saved_ms = (
            config.dispatch_us * (1 - 1 / config.poll_batch_events)
        ) / 1000.0
        assert model.mean_service_ms - model.mean_service_ms_batched == (
            pytest.approx(saved_ms, rel=1e-6)
        )

    def test_dispatch_share_clamped_to_base(self):
        # Legacy configs tune base_us below the default dispatch share;
        # the amortizable part is then simply all of base_us.
        model = RailgunServiceModel(
            RailgunServiceConfig(
                base_us=50.0, dispatch_us=60.0, poll_batch_events=64,
                jitter_sigma=0.0,
            ),
            random.Random(1),
        )
        leader = model.service_ms(0, 0, first_of_batch=True)
        follower = model.service_ms(1, 0, first_of_batch=False)
        assert leader - follower == pytest.approx(50.0 / 1000.0, rel=1e-6)
        with pytest.raises(ValueError):
            RailgunServiceModel(
                RailgunServiceConfig(dispatch_us=-1.0), random.Random(1)
            )

    def test_pipeline_batched_engine_sustains_higher_rate(self):
        # A rate the per-event engine cannot sustain but the batched
        # engine can: dispatch dominates, and under backlog the batched
        # unit amortizes it across whole poll batches (Figure 8/9
        # projections use exactly this split).
        per_event = RailgunServiceConfig(
            base_us=2000.0, dispatch_us=1800.0, poll_batch_events=1
        )
        batched = RailgunServiceConfig(
            base_us=2000.0, dispatch_us=1800.0, poll_batch_events=64
        )
        rate = 1000.0 / (
            RailgunServiceModel(batched, random.Random(0)).mean_service_ms_batched
            * 1.4
        )
        kafka_rng = random.Random(9)

        def run(service_config):
            config = PipelineConfig(
                rate_ev_s=rate, duration_s=30.0, warmup_s=3.0, processors=1,
                seed=7,
            )
            kafka = KafkaModel(KafkaConfig(), random.Random(kafka_rng.randrange(1 << 30)))
            return simulate_pipeline(
                config,
                lambda rng: RailgunServiceModel(service_config, rng),
                kafka,
            )

        slow = run(per_event)
        fast = run(batched)
        assert slow.diverged or slow.utilization > 0.99
        assert not fast.diverged
        assert fast.utilization < 0.95
        assert fast.percentile(99.0) < slow.percentile(99.0)


class TestPipeline:
    def _run(self, rate, service_config=None, **kwargs):
        config = PipelineConfig(
            rate_ev_s=rate, duration_s=30.0, warmup_s=3.0, processors=1, seed=7,
            **kwargs,
        )
        kafka = KafkaModel(KafkaConfig(), random.Random(9))
        return simulate_pipeline(
            config,
            lambda rng: RailgunServiceModel(
                service_config or RailgunServiceConfig(), rng
            ),
            kafka,
        )

    def test_stable_load_converges(self):
        result = self._run(rate=500)
        assert not result.diverged
        assert result.utilization < 0.9
        assert result.percentile(50.0) < 10.0
        assert result.measured_events > 10_000

    def test_overload_diverges(self):
        slow = RailgunServiceConfig(base_us=5_000.0)  # 5ms/event @ 500/s
        result = self._run(rate=500, service_config=slow)
        assert result.diverged or result.utilization > 0.99

    def test_paced_arrivals_option(self):
        result = self._run(rate=200, poisson_arrivals=False)
        assert result.offered_events == pytest.approx(200 * 30, rel=0.02)

    def test_multiple_processors_split_load(self):
        config = PipelineConfig(
            rate_ev_s=2_000, duration_s=20.0, warmup_s=2.0, processors=8, seed=3
        )
        kafka = KafkaModel(KafkaConfig(), random.Random(4))
        result = simulate_pipeline(
            config,
            lambda rng: RailgunServiceModel(RailgunServiceConfig(), rng),
            kafka,
        )
        assert not result.diverged
        assert result.utilization < 0.5

    def test_gc_config_produces_pauses(self):
        config = PipelineConfig(
            rate_ev_s=1_000, duration_s=30.0, warmup_s=3.0, processors=1, seed=5
        )
        kafka = KafkaModel(KafkaConfig(), random.Random(6))
        result = simulate_pipeline(
            config,
            lambda rng: RailgunServiceModel(RailgunServiceConfig(), rng),
            kafka,
            gc_config=GcConfig(alloc_per_event_bytes=1e6, young_gen_bytes=1e9),
        )
        assert result.gc_minor > 0

    def test_deterministic_given_seed(self):
        first = self._run(rate=300)
        second = self._run(rate=300)
        assert first.percentile(99.0) == second.percentile(99.0)
        assert first.offered_events == second.offered_events
