"""Task plan tests: DAG sharing, windowed correctness, backfill."""

import random

import pytest

from repro.common.clock import MINUTES
from repro.events import Event, FieldType, Schema, SchemaField, SchemaRegistry
from repro.plan import TaskPlan
from repro.query import parse_query
from repro.reservoir import EventReservoir, ReservoirConfig
from repro.state import MetricStateStore


def _setup(chunk_events=16, cache=8):
    registry = SchemaRegistry()
    registry.register(
        Schema(
            [
                SchemaField("cardId", FieldType.STRING),
                SchemaField("merchantId", FieldType.STRING),
                SchemaField("amount", FieldType.FLOAT),
                SchemaField("channel", FieldType.STRING),
            ]
        )
    )
    reservoir = EventReservoir(
        registry,
        config=ReservoirConfig(chunk_max_events=chunk_events, cache_capacity=cache),
    )
    return reservoir, TaskPlan(reservoir, MetricStateStore())


def _event(i, ts, card="c1", merchant="m1", amount=1.0, channel="pos"):
    return Event(
        f"e{i}", ts,
        {"cardId": card, "merchantId": merchant, "amount": amount, "channel": channel},
    )


def _feed(reservoir, plan, event):
    result = reservoir.append(event)
    assert result.stored
    return plan.process_event(result.event)


class TestDagSharing:
    def test_figure6_example(self):
        # Q1 (card sum+count) and Q2 (merchant avg), same 5-min window:
        # 1 window + 1 filter + 2 group-bys + 3 aggregators = 7 nodes.
        _, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT sum(amount), count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        plan.add_metric(parse_query(
            "SELECT avg(amount) FROM p GROUP BY merchantId OVER sliding 5 minutes"
        ))
        assert plan.node_count() == 7
        assert plan.iterator_count == 2  # shared head + shared tail

    def test_same_groupby_shares_everything(self):
        _, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT sum(amount) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        plan.add_metric(parse_query(
            "SELECT max(amount) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        # window + filter + group-by + 2 aggregators.
        assert plan.node_count() == 5

    def test_different_filters_fork(self):
        _, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p WHERE amount > 10 GROUP BY cardId OVER sliding 5 minutes"
        ))
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        # 1 window + 2 filters + 2 group-bys + 2 aggs.
        assert plan.node_count() == 7
        assert plan.iterator_count == 2  # iterators still shared

    def test_different_windows_fork_iterators(self):
        _, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 minute"
        ))
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        # Heads shared (same delay), tails differ: 1 + 2 = 3.
        assert plan.iterator_count == 3

    def test_misaligned_delays_fork_heads(self):
        _, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 minute"
        ))
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 minute delayed by 10 seconds"
        ))
        assert plan.iterator_count == 4

    def test_infinite_window_has_no_tail(self):
        _, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT countDistinct(merchantId) FROM p GROUP BY cardId OVER infinite"
        ))
        assert plan.iterator_count == 1


class TestWindowedCorrectness:
    def test_sliding_against_brute_force(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT sum(amount), count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        rng = random.Random(7)
        history = []
        ts = 0
        for i in range(400):
            ts += rng.randrange(1, 40_000)
            card = f"c{rng.randrange(4)}"
            amount = round(rng.uniform(1, 50), 2)
            event = _event(i, ts, card=card, amount=amount)
            history.append(event)
            replies = _feed(reservoir, plan, event)
            window = [
                e for e in history
                if e.timestamp > ts - 5 * MINUTES and e["cardId"] == card
            ]
            got = replies[handle.metric_id]
            assert got["count(*)"] == len(window)
            assert got["sum(amount)"] == pytest.approx(
                sum(e["amount"] for e in window)
            )

    def test_filter_applies_to_enter_and_exit(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p WHERE channel == 'ecom' "
            "GROUP BY cardId OVER sliding 1 minute"
        ))
        _feed(reservoir, plan, _event(0, 1_000, channel="ecom"))
        _feed(reservoir, plan, _event(1, 2_000, channel="pos"))
        replies = _feed(reservoir, plan, _event(2, 3_000, channel="ecom"))
        assert replies[handle.metric_id]["count(*)"] == 2
        # After expiry of the first ecom event.
        replies = _feed(reservoir, plan, _event(3, 62_000, channel="pos"))
        assert replies[handle.metric_id]["count(*)"] == 1

    def test_tumbling_window(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER tumbling 1 minute"
        ))
        _feed(reservoir, plan, _event(0, 10_000))
        replies = _feed(reservoir, plan, _event(1, 50_000))
        assert replies[handle.metric_id]["count(*)"] == 2
        # New bucket: all previous events evicted at once.
        replies = _feed(reservoir, plan, _event(2, 61_000))
        assert replies[handle.metric_id]["count(*)"] == 1

    def test_infinite_window_accumulates_forever(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT countDistinct(merchantId) FROM p GROUP BY cardId OVER infinite"
        ))
        for i, merchant in enumerate(("m1", "m2", "m1", "m3")):
            replies = _feed(
                reservoir, plan,
                _event(i, (i + 1) * 10 * MINUTES, merchant=merchant),
            )
        assert replies[handle.metric_id]["countDistinct(merchantId)"] == 3

    def test_delayed_window_lags(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 minute delayed by 1 minute"
        ))
        _feed(reservoir, plan, _event(0, 10_000))
        replies = _feed(reservoir, plan, _event(1, 30_000))
        # Both events are newer than now - delay: window still empty.
        assert replies[handle.metric_id]["count(*)"] == 0
        replies = _feed(reservoir, plan, _event(2, 80_000))
        # Now - 60s = 20s: event at 10s entered the delayed window.
        assert replies[handle.metric_id]["count(*)"] == 1

    def test_multiple_groupby_fields(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId, merchantId OVER sliding 5 minutes"
        ))
        _feed(reservoir, plan, _event(0, 1_000, card="c1", merchant="m1"))
        _feed(reservoir, plan, _event(1, 2_000, card="c1", merchant="m2"))
        replies = _feed(reservoir, plan, _event(2, 3_000, card="c1", merchant="m1"))
        assert replies[handle.metric_id]["count(*)"] == 2

    def test_reply_for_untouched_key_peeks(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p WHERE channel == 'ecom' "
            "GROUP BY cardId OVER sliding 5 minutes"
        ))
        # A filtered-out event still gets a (read-only) reply.
        replies = _feed(reservoir, plan, _event(0, 1_000, channel="pos"))
        assert replies[handle.metric_id]["count(*)"] == 0


class TestReadonlyAndRemoval:
    def test_process_event_readonly_does_not_mutate(self):
        reservoir, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        _feed(reservoir, plan, _event(0, 1_000))
        replies = plan.process_event_readonly(_event(99, 2_000))
        assert replies[handle.metric_id]["count(*)"] == 1
        replies = _feed(reservoir, plan, _event(1, 3_000))
        assert replies[handle.metric_id]["count(*)"] == 2

    def test_remove_metric_prunes_dag(self):
        _, plan = _setup()
        first = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 minute"
        ))
        plan.remove_metric(first.metric_id)
        assert plan.metric_count == 1
        # 5-minute tail iterator released, head still shared.
        assert plan.iterator_count == 2

    def test_remove_last_metric_empties_plan(self):
        _, plan = _setup()
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        plan.remove_metric(handle.metric_id)
        assert plan.node_count() == 0
        assert plan.iterator_count == 0

    def test_explicit_metric_ids(self):
        _, plan = _setup()
        handle = plan.add_metric(
            parse_query("SELECT count(*) FROM p GROUP BY cardId OVER infinite"),
            metric_id=42,
        )
        assert handle.metric_id == 42
        with pytest.raises(ValueError):
            plan.add_metric(
                parse_query("SELECT count(*) FROM p GROUP BY cardId OVER infinite"),
                metric_id=42,
            )


class TestBackfill:
    def test_backfilled_metric_matches_original(self):
        reservoir, plan = _setup()
        original = plan.add_metric(parse_query(
            "SELECT sum(amount) FROM p GROUP BY cardId OVER sliding 10 minutes"
        ))
        for i in range(30):
            _feed(reservoir, plan, _event(i, (i + 1) * 10_000, amount=float(i)))
        late = plan.add_metric(
            parse_query(
                "SELECT sum(amount) FROM p GROUP BY cardId OVER sliding 10 minutes"
            ),
            backfill=True,
        )
        replies = _feed(reservoir, plan, _event(99, 310_000, amount=1.0))
        assert replies[late.metric_id]["sum(amount)"] == pytest.approx(
            replies[original.metric_id]["sum(amount)"]
        )

    def test_backfill_respects_filter(self):
        reservoir, plan = _setup()
        for i in range(10):
            channel = "ecom" if i % 2 == 0 else "pos"
            _feed(reservoir, plan, _event(i, (i + 1) * 1_000, channel=channel))
        handle = plan.add_metric(
            parse_query(
                "SELECT count(*) FROM p WHERE channel == 'ecom' "
                "GROUP BY cardId OVER sliding 1 hour"
            ),
            backfill=True,
        )
        replies = _feed(reservoir, plan, _event(99, 11_000, channel="pos"))
        assert replies[handle.metric_id]["count(*)"] == 5

    def test_cold_metric_starts_empty(self):
        reservoir, plan = _setup()
        for i in range(10):
            _feed(reservoir, plan, _event(i, (i + 1) * 1_000))
        handle = plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 hour"
        ))
        replies = _feed(reservoir, plan, _event(99, 11_000))
        assert replies[handle.metric_id]["count(*)"] == 1

    def test_backfilled_window_expires_correctly(self):
        reservoir, plan = _setup()
        for i in range(5):
            _feed(reservoir, plan, _event(i, (i + 1) * 10_000, amount=10.0))
        handle = plan.add_metric(
            parse_query(
                "SELECT sum(amount) FROM p GROUP BY cardId OVER sliding 1 minute"
            ),
            backfill=True,
        )
        # All five backfilled events (10s..50s) expire by t = 111s.
        replies = _feed(reservoir, plan, _event(99, 111_000, amount=1.0))
        assert replies[handle.metric_id]["sum(amount)"] == pytest.approx(1.0)


class TestIteratorPositions:
    def test_positions_roundtrip(self):
        reservoir, plan = _setup()
        plan.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        for i in range(40):
            _feed(reservoir, plan, _event(i, (i + 1) * 1_000))
        positions = plan.iterator_positions()
        assert len(positions) == 2
        # Restore into a new plan over the same reservoir.
        other = TaskPlan(reservoir, MetricStateStore())
        other.add_metric(parse_query(
            "SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes"
        ))
        other.set_iterator_positions(positions)
        assert other.iterator_positions() == positions
