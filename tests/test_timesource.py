"""Unit tests for the time plane (``repro.common.timesource``).

Everything here runs in virtual or lightly-threaded time — the suite's
own wall-clock budget is part of what it asserts.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common.timesource import (
    MAX_TIME_SCALE,
    SYSTEM,
    Deadline,
    DeterministicTimeSource,
    ManualClock,
    SystemClock,
    SystemTimeSource,
    default_time_source,
    parse_time_scale,
    resolve_time_source,
    set_default_time_source,
)


class TestParseTimeScale:
    def test_unset_and_empty_mean_real_time(self):
        assert parse_time_scale(None) == 1.0
        assert parse_time_scale("") == 1.0
        assert parse_time_scale("   ") == 1.0

    def test_numeric_values(self):
        assert parse_time_scale("25") == 25.0
        assert parse_time_scale("0.5") == 0.5
        assert parse_time_scale(str(MAX_TIME_SCALE)) == MAX_TIME_SCALE

    @pytest.mark.parametrize("bad", ["fast", "0", "-3", "nan", "1e9"])
    def test_garbage_is_loud_not_silent(self, bad):
        with pytest.raises(ValueError):
            parse_time_scale(bad)


class TestSystemTimeSource:
    def test_scale_compresses_monotonic_and_sleep(self):
        ts = SystemTimeSource(scale=100.0)
        started_real = time.perf_counter()
        before = ts.monotonic()
        ts.sleep(0.5)  # 5ms real
        after = ts.monotonic()
        elapsed_real = time.perf_counter() - started_real
        assert after - before >= 0.5  # source time honored the request
        assert elapsed_real < 0.25  # but real time was compressed
        assert ts.real_delay(0.5) == pytest.approx(0.005)

    def test_wall_clock_is_never_scaled(self):
        scaled = SystemTimeSource(scale=100.0)
        plain = SystemTimeSource(scale=1.0)
        assert abs(scaled.wall_ms() - plain.wall_ms()) < 5_000

    def test_monotonic_ns_matches_monotonic(self):
        ts = SystemTimeSource(scale=7.0)
        lo = ts.monotonic()
        ns = ts.monotonic_ns()
        hi = ts.monotonic()
        assert int(lo * 1e9) <= ns <= int(hi * 1e9) + 1

    def test_rejects_bad_scale(self):
        for bad in (0.0, -1.0, MAX_TIME_SCALE + 1):
            with pytest.raises(ValueError):
                SystemTimeSource(scale=bad)


class TestDeadline:
    def test_expiry_and_remaining_on_virtual_time(self):
        ts = DeterministicTimeSource()
        deadline = ts.deadline(2.0)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(2.0)
        ts.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        ts.advance(0.5)
        assert deadline.expired()  # >= comparison: exactly-at counts
        assert deadline.remaining() == 0.0

    def test_none_timeout_never_expires(self):
        ts = DeterministicTimeSource()
        deadline = Deadline(ts, None)
        ts.advance(1e6)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")


class TestDeterministicSleep:
    def test_single_thread_sleep_advances_instead_of_blocking(self):
        ts = DeterministicTimeSource()
        started = time.perf_counter()
        ts.sleep(3600.0)  # an hour of virtual time
        assert ts.monotonic() == pytest.approx(3600.0)
        assert time.perf_counter() - started < 1.0

    def test_sleep_zero_yields_without_advancing(self):
        ts = DeterministicTimeSource(start=5.0)
        ts.sleep(0)
        ts.sleep(-1)
        assert ts.monotonic() == 5.0
        assert ts.wake_log == []  # a yield is not a wakeup

    def test_waiters_wake_in_deadline_order_not_start_order(self):
        ts = DeterministicTimeSource()
        # Register this thread as a runnable participant first: while it
        # never parks, automatic jumps are disabled, so no sleeper can
        # wake before all three have parked — the ordering is then a
        # pure function of the requested deadlines.
        ts.sleep(0)

        threads = [
            threading.Thread(
                target=ts.sleep, args=(seconds,), name=name, daemon=True
            )
            for name, seconds in [("late", 3.0), ("early", 1.0), ("mid", 2.0)]
        ]
        for thread in threads:
            thread.start()
        deadline = time.perf_counter() + 5.0
        while len(ts._waiters) < 3 and time.perf_counter() < deadline:
            time.sleep(0.001)
        ts.advance(3.0)
        for thread in threads:
            thread.join(timeout=10.0)
        assert ts.wake_log == ["early", "mid", "late"]
        assert ts.monotonic() == pytest.approx(3.0)

    def test_advance_steps_through_intermediate_deadlines(self):
        ts = DeterministicTimeSource()
        ts.sleep(0)  # register as runnable: no jump until we advance

        threads = [
            threading.Thread(target=ts.sleep, args=(s,), name=n, daemon=True)
            for n, s in [("b", 2.0), ("a", 1.0)]
        ]
        for thread in threads:
            thread.start()
        deadline = time.perf_counter() + 5.0
        while len(ts._waiters) < 2 and time.perf_counter() < deadline:
            time.sleep(0.001)
        ts.advance(10.0)
        for thread in threads:
            thread.join(timeout=10.0)
        # wake_log appends under the source lock at unpark time, so the
        # intermediate deadline (a at 1.0) must precede b at 2.0.
        assert ts.wake_log == ["a", "b"]
        assert ts.monotonic() == pytest.approx(10.0)

    def test_monotonic_ns_consistent_with_monotonic(self):
        ts = DeterministicTimeSource(start=1.5)
        assert ts.monotonic_ns() == 1_500_000_000
        ts.advance(0.25)
        assert ts.monotonic_ns() == 1_750_000_000
        assert ts.monotonic_ns() == int(round(ts.monotonic() * 1e9))

    def test_negative_advance_and_start_rejected(self):
        with pytest.raises(ValueError):
            DeterministicTimeSource(start=-1.0)
        with pytest.raises(ValueError):
            DeterministicTimeSource().advance(-0.1)

    def test_real_delay_advances_and_returns_zero(self):
        ts = DeterministicTimeSource()
        assert ts.real_delay(2.5) == 0.0
        assert ts.monotonic() == pytest.approx(2.5)


class TestWaitUntil:
    def test_immediate_truth_skips_sleeping(self):
        ts = DeterministicTimeSource()
        assert ts.wait_until(lambda: True, timeout=10.0)
        assert ts.monotonic() == 0.0

    def test_polls_until_predicate_flips(self):
        ts = DeterministicTimeSource()
        assert ts.wait_until(lambda: ts.monotonic() >= 0.1, timeout=5.0)
        assert 0.1 <= ts.monotonic() < 5.0

    def test_timeout_returns_false_after_final_recheck(self):
        ts = DeterministicTimeSource()
        calls = []
        assert not ts.wait_until(
            lambda: calls.append(1) and False, timeout=0.05, poll=0.01
        )
        assert ts.monotonic() == pytest.approx(0.05)
        assert len(calls) >= 2  # polled, then the one-last-check after expiry


class TestEventClockViews:
    def test_event_clock_tracks_virtual_monotonic(self):
        ts = DeterministicTimeSource()
        clock = ts.event_clock(start_ms=1_000)
        assert clock.now() == 1_000
        ts.advance_ms(250)
        assert clock.now() == 1_250
        assert clock.now_seconds() == pytest.approx(1.25)

    def test_event_clock_without_start_reads_wall(self):
        ts = DeterministicTimeSource(wall_start_ms=77_000)
        clock = ts.event_clock()
        assert isinstance(clock, SystemClock)
        assert clock.now() == 77_000
        ts.advance(1.0)
        assert clock.now() == 78_000

    def test_manual_clock_semantics_preserved(self):
        clock = ManualClock(start_ms=10)
        assert clock.advance(5) == 15
        clock.set(20)
        with pytest.raises(ValueError):
            clock.set(19)
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestDefaultResolution:
    def test_resolve_prefers_explicit(self):
        ts = DeterministicTimeSource()
        assert resolve_time_source(ts) is ts
        assert resolve_time_source(None) is default_time_source()

    def test_set_default_round_trips(self):
        ts = DeterministicTimeSource()
        previous = set_default_time_source(ts)
        try:
            assert default_time_source() is ts
        finally:
            set_default_time_source(previous)
        assert default_time_source() is previous

    def test_none_restores_system(self):
        previous = set_default_time_source(DeterministicTimeSource())
        try:
            set_default_time_source(None)
            assert default_time_source() is SYSTEM
        finally:
            set_default_time_source(previous)
