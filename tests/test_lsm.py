"""LSM store tests: memtable, WAL, SSTable, bloom, and the full DB."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageError
from repro.common.storage import MemoryStorage
from repro.lsm import BloomFilter, LsmConfig, LsmDb, MemTable, SSTable, TOMBSTONE, WriteAheadLog


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(500, 0.01)
        keys = [f"key-{i}".encode() for i in range(500)]
        for key in keys:
            bloom.add(key)
        assert all(bloom.might_contain(key) for key in keys)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter.for_capacity(1000, 0.01)
        for i in range(1000):
            bloom.add(f"in-{i}".encode())
        false_positives = sum(
            bloom.might_contain(f"out-{i}".encode()) for i in range(10_000)
        )
        assert false_positives < 500  # well under 5%

    def test_serde_roundtrip(self):
        bloom = BloomFilter.for_capacity(100)
        bloom.add(b"alpha")
        restored, _ = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored.might_contain(b"alpha")
        assert restored.num_bits == bloom.num_bits

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 1.5)


class TestMemTable:
    def test_put_get(self):
        table = MemTable()
        table.put(b"b", b"2")
        table.put(b"a", b"1")
        assert table.get(b"a") == b"1"
        assert table.get(b"missing") is None

    def test_overwrite(self):
        table = MemTable()
        table.put(b"k", b"old")
        table.put(b"k", b"new")
        assert table.get(b"k") == b"new"
        assert len(table) == 1

    def test_delete_leaves_tombstone(self):
        table = MemTable()
        table.put(b"k", b"v")
        table.delete(b"k")
        assert table.get(b"k") is TOMBSTONE

    def test_items_sorted(self):
        table = MemTable()
        for key in (b"c", b"a", b"b"):
            table.put(key, b"v")
        assert [k for k, _ in table.items()] == [b"a", b"b", b"c"]

    def test_scan_range(self):
        table = MemTable()
        for i in range(10):
            table.put(f"{i:02d}".encode(), b"v")
        keys = [k for k, _ in table.scan(b"03", b"07")]
        assert keys == [b"03", b"04", b"05", b"06"]

    def test_scan_open_ended(self):
        table = MemTable()
        for i in range(5):
            table.put(f"{i}".encode(), b"v")
        assert len(list(table.scan())) == 5
        assert len(list(table.scan(start=b"3"))) == 2

    def test_approximate_bytes_tracks_payload(self):
        table = MemTable()
        assert table.approximate_bytes == 0
        table.put(b"key", b"value")
        assert table.approximate_bytes == 8
        table.put(b"key", b"xx")
        assert table.approximate_bytes == 5

    @given(
        st.lists(
            st.tuples(
                st.binary(min_size=1, max_size=8),
                st.one_of(st.binary(max_size=8), st.none()),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50)
    def test_model_based(self, operations):
        table = MemTable()
        model: dict[bytes, object] = {}
        for key, value in operations:
            if value is None:
                table.delete(key)
                model[key] = TOMBSTONE
            else:
                table.put(key, value)
                model[key] = value
        assert dict(table.items()) == model
        for key in model:
            assert table.get(key) == model[key]


class TestWal:
    def test_replay_returns_appended_records(self):
        storage = MemoryStorage()
        wal = WriteAheadLog(storage, "WAL")
        wal.append_put(0, b"a", b"1")
        wal.append_delete(1, b"b")
        wal.append_put(0, b"c", b"3")
        records = list(wal.replay())
        assert records == [
            (0, 0, b"a", b"1"),
            (1, 1, b"b", None),
            (0, 0, b"c", b"3"),
        ]

    def test_torn_tail_is_dropped(self):
        storage = MemoryStorage()
        wal = WriteAheadLog(storage, "WAL")
        wal.append_put(0, b"a", b"1")
        wal.append_put(0, b"b", b"2")
        data = storage.read_all("WAL")
        storage.delete("WAL")
        storage.create("WAL")
        storage.append("WAL", data[:-3])  # tear the final record
        torn = WriteAheadLog(storage, "WAL")
        records = list(torn.replay())
        assert records == [(0, 0, b"a", b"1")]

    def test_corrupt_crc_stops_replay(self):
        storage = MemoryStorage()
        wal = WriteAheadLog(storage, "WAL")
        wal.append_put(0, b"a", b"1")
        data = bytearray(storage.read_all("WAL"))
        data[-1] ^= 0xFF
        storage.delete("WAL")
        storage.create("WAL")
        storage.append("WAL", bytes(data))
        assert list(WriteAheadLog(storage, "WAL").replay()) == []

    def test_reset_truncates(self):
        storage = MemoryStorage()
        wal = WriteAheadLog(storage, "WAL")
        wal.append_put(0, b"a", b"1")
        wal.reset()
        assert wal.size() == 0
        assert list(wal.replay()) == []


class TestSSTable:
    def _write(self, entries, storage=None):
        storage = storage or MemoryStorage()
        return SSTable.write(storage, "t.sst", entries), storage

    def test_point_lookup(self):
        table, _ = self._write([(f"k{i:03d}".encode(), f"v{i}".encode()) for i in range(100)])
        assert table.get(b"k042") == b"v42"
        assert table.get(b"k999") is None

    def test_tombstone_roundtrip(self):
        table, _ = self._write([(b"a", b"1"), (b"b", TOMBSTONE)])
        assert table.get(b"b") is TOMBSTONE

    def test_out_of_order_rejected(self):
        with pytest.raises(StorageError):
            self._write([(b"b", b"1"), (b"a", b"2")])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(StorageError):
            self._write([(b"a", b"1"), (b"a", b"2")])

    def test_entries_range_scan(self):
        table, _ = self._write([(f"{i:02d}".encode(), b"v") for i in range(20)])
        keys = [k for k, _ in table.entries(b"05", b"09")]
        assert keys == [b"05", b"06", b"07", b"08"]

    def test_open_reads_back_everything(self):
        entries = [(f"k{i:03d}".encode(), f"v{i}".encode()) for i in range(50)]
        _, storage = self._write(entries)
        reopened = SSTable.open(storage, "t.sst")
        assert reopened.count == 50
        assert reopened.min_key == b"k000"
        assert reopened.max_key == b"k049"
        assert list(reopened.entries()) == entries

    def test_might_contain_range_check(self):
        table, _ = self._write([(b"m", b"1")])
        assert not table.might_contain(b"a")
        assert not table.might_contain(b"z")

    def test_empty_table(self):
        table, _ = self._write([])
        assert table.count == 0
        assert table.get(b"x") is None
        assert list(table.entries()) == []

    def test_file_is_sealed(self):
        _, storage = self._write([(b"a", b"1")])
        assert storage.is_sealed("t.sst")


class TestLsmDb:
    def test_basic_crud(self):
        db = LsmDb()
        db.put(b"k", b"v")
        assert db.get(b"k") == b"v"
        db.delete(b"k")
        assert db.get(b"k") is None

    def test_read_through_levels(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=200, l0_compaction_threshold=3))
        for i in range(300):
            db.put(f"k{i % 40:03d}".encode(), f"v{i}".encode())
        assert db.stats.flushes > 0
        assert db.stats.compactions > 0
        # Latest version wins across memtable + levels.
        for i in range(40):
            expected_iteration = max(j for j in range(300) if j % 40 == i)
            assert db.get(f"k{i:03d}".encode()) == f"v{expected_iteration}".encode()

    def test_delete_shadows_older_levels(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=100))
        db.put(b"key", b"value")
        db.flush()
        db.delete(b"key")
        db.flush()
        assert db.get(b"key") is None
        assert dict(db.scan()) == {}

    def test_scan_merges_sources(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=80))
        expected = {}
        for i in range(60):
            key = f"{i % 20:02d}".encode()
            value = f"v{i}".encode()
            db.put(key, value)
            expected[key] = value
        assert dict(db.scan()) == expected
        assert [k for k, _ in db.scan()] == sorted(expected)

    def test_prefix_scan(self):
        db = LsmDb()
        db.put(b"user:1", b"a")
        db.put(b"user:2", b"b")
        db.put(b"card:1", b"c")
        assert dict(db.prefix_scan(b"user:")) == {b"user:1": b"a", b"user:2": b"b"}

    def test_column_families_isolated(self):
        db = LsmDb()
        db.create_column_family("aux")
        db.put(b"k", b"main")
        db.put(b"k", b"aux-value", cf="aux")
        assert db.get(b"k") == b"main"
        assert db.get(b"k", cf="aux") == b"aux-value"
        db.delete(b"k", cf="aux")
        assert db.get(b"k") == b"main"

    def test_unknown_cf_rejected(self):
        with pytest.raises(StorageError):
            LsmDb().get(b"k", cf="nope")

    def test_wal_recovery_after_crash(self):
        storage = MemoryStorage()
        db = LsmDb(storage=storage, config=LsmConfig(memtable_flush_bytes=10_000))
        db.put(b"a", b"1")
        db.put(b"b", b"2")
        db.delete(b"a")
        # "Crash": reopen from the same storage without flushing.
        recovered = LsmDb(storage=storage)
        assert recovered.get(b"a") is None
        assert recovered.get(b"b") == b"2"

    def test_checkpoint_restore(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=100))
        reference = {}
        for i in range(150):
            key = f"k{i % 30:03d}".encode()
            db.put(key, f"v{i}".encode())
            reference[key] = f"v{i}".encode()
        checkpoint = db.checkpoint()
        files = db.export_checkpoint(checkpoint)
        restored = LsmDb.import_checkpoint(checkpoint, files)
        assert dict(restored.scan()) == reference

    def test_checkpoint_pins_files_against_compaction(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=60, l0_compaction_threshold=2))
        for i in range(40):
            db.put(f"k{i:02d}".encode(), b"x" * 10)
        checkpoint = db.checkpoint()
        pinned = checkpoint.all_files()
        for i in range(200):
            db.put(f"k{i % 40:02d}".encode(), b"y" * 10)
        # Every checkpointed file must still be exportable.
        files = db.export_checkpoint(checkpoint)
        assert set(files) == pinned

    def test_release_checkpoint_garbage_collects(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=60, l0_compaction_threshold=2))
        for i in range(40):
            db.put(f"k{i:02d}".encode(), b"x" * 10)
        checkpoint = db.checkpoint()
        for i in range(200):
            db.put(f"k{i % 40:02d}".encode(), b"y" * 10)
        db.flush()
        before = len(db.storage.list())
        db.release_checkpoint(checkpoint)
        assert len(db.storage.list()) <= before

    def test_delta_export_excludes_known_files(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=100))
        for i in range(100):
            db.put(f"k{i:03d}".encode(), b"v")
        checkpoint = db.checkpoint()
        all_files = db.export_checkpoint(checkpoint)
        some = set(list(all_files)[:2])
        delta = db.export_checkpoint(checkpoint, exclude=some)
        assert set(delta) == set(all_files) - some

    def test_checkpoint_serde(self):
        db = LsmDb()
        db.put(b"k", b"v")
        checkpoint = db.checkpoint()
        from repro.lsm.db import Checkpoint

        restored = Checkpoint.from_bytes(checkpoint.to_bytes())
        assert restored.sequence == checkpoint.sequence
        assert restored.files == checkpoint.files

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=60),
                st.one_of(st.binary(min_size=1, max_size=6), st.none()),
            ),
            max_size=300,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_model_based_against_dict(self, operations):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=150, l0_compaction_threshold=2))
        model: dict[bytes, bytes] = {}
        for key_index, value in operations:
            key = f"key-{key_index:03d}".encode()
            if value is None:
                db.delete(key)
                model.pop(key, None)
            else:
                db.put(key, value)
                model[key] = value
        assert dict(db.scan()) == model
        for key_index in range(61):
            key = f"key-{key_index:03d}".encode()
            assert db.get(key) == model.get(key)

    def test_level_shape_after_compactions(self):
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=80, l0_compaction_threshold=2))
        for i in range(400):
            db.put(f"k{i % 50:03d}".encode(), f"value-{i}".encode())
        shape = db.level_shape()
        assert shape[0] < 2  # L0 keeps getting folded down
