"""Window specification semantics."""

import pytest

from repro.common.clock import MINUTES, SECONDS
from repro.windows import WindowKind, WindowSpec


class TestValidation:
    def test_sliding_needs_size(self):
        with pytest.raises(ValueError):
            WindowSpec(WindowKind.SLIDING, None)

    def test_infinite_takes_no_size(self):
        with pytest.raises(ValueError):
            WindowSpec(WindowKind.INFINITE, 1000)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(WindowKind.SLIDING, 1000, delay_ms=-1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            WindowSpec(WindowKind.TUMBLING, 0)


class TestSlidingBoundaries:
    def test_contains_arriving_event(self):
        spec = WindowSpec(WindowKind.SLIDING, 5 * MINUTES)
        assert spec.contains(event_ts=1000, eval_ts=1000)

    def test_figure1_semantics(self):
        # e1 at minute 0.5, e5 at minute 5.48 -> within 5 minutes: included.
        spec = WindowSpec(WindowKind.SLIDING, 5 * MINUTES)
        e1, e5 = 30 * SECONDS, 329 * SECONDS
        assert e5 - e1 < 5 * MINUTES
        assert spec.contains(e1, eval_ts=e5)

    def test_exact_boundary_excluded(self):
        spec = WindowSpec(WindowKind.SLIDING, 1000)
        assert not spec.contains(event_ts=0, eval_ts=1000)
        assert spec.contains(event_ts=1, eval_ts=1000)

    def test_limits(self):
        spec = WindowSpec(WindowKind.SLIDING, 1000)
        assert spec.head_limit(5000) == 5000
        assert spec.tail_limit(5000) == 4000


class TestDelayedWindows:
    def test_delay_shifts_both_bounds(self):
        spec = WindowSpec(WindowKind.SLIDING, 1000, delay_ms=500)
        assert spec.head_limit(5000) == 4500
        assert spec.tail_limit(5000) == 3500
        assert spec.contains(4000, eval_ts=5000)
        assert not spec.contains(4800, eval_ts=5000)  # too new: still delayed

    def test_delayed_infinite(self):
        spec = WindowSpec(WindowKind.INFINITE, None, delay_ms=1000)
        assert spec.head_limit(5000) == 4000
        assert spec.tail_limit(5000) is None
        assert spec.contains(0, eval_ts=5000)
        assert not spec.contains(4500, eval_ts=5000)


class TestTumblingBoundaries:
    def test_bucket_contents(self):
        spec = WindowSpec(WindowKind.TUMBLING, 1000)
        # Evaluation at 2500: bucket [2000, 2500].
        assert spec.contains(2000, eval_ts=2500)
        assert spec.contains(2500, eval_ts=2500)
        assert not spec.contains(1999, eval_ts=2500)

    def test_tail_limit_is_bucket_start_minus_one(self):
        spec = WindowSpec(WindowKind.TUMBLING, 1000)
        assert spec.tail_limit(2500) == 1999
        assert spec.tail_limit(2000) == 1999
        assert spec.tail_limit(2999) == 1999
        assert spec.tail_limit(3000) == 2999


class TestInfinite:
    def test_never_expires(self):
        spec = WindowSpec(WindowKind.INFINITE)
        assert spec.tail_limit(10**15) is None
        assert spec.contains(0, eval_ts=10**15)
        assert spec.tail_share_key() is None


class TestSharing:
    def test_heads_share_by_delay_across_sizes(self):
        one_min = WindowSpec(WindowKind.SLIDING, 1 * MINUTES)
        five_min = WindowSpec(WindowKind.SLIDING, 5 * MINUTES)
        assert one_min.head_share_key() == five_min.head_share_key()

    def test_heads_differ_by_delay(self):
        plain = WindowSpec(WindowKind.SLIDING, 1000)
        delayed = WindowSpec(WindowKind.SLIDING, 1000, delay_ms=1)
        assert plain.head_share_key() != delayed.head_share_key()

    def test_tails_share_only_exact_spec(self):
        a = WindowSpec(WindowKind.SLIDING, 1000)
        b = WindowSpec(WindowKind.SLIDING, 1000)
        c = WindowSpec(WindowKind.SLIDING, 2000)
        d = WindowSpec(WindowKind.TUMBLING, 1000)
        assert a.tail_share_key() == b.tail_share_key()
        assert a.tail_share_key() != c.tail_share_key()
        assert a.tail_share_key() != d.tail_share_key()

    def test_aligned_sliding_and_tumbling_share_head(self):
        sliding = WindowSpec(WindowKind.SLIDING, 1000)
        tumbling = WindowSpec(WindowKind.TUMBLING, 2000)
        assert sliding.head_share_key() == tumbling.head_share_key()


class TestDescribe:
    @pytest.mark.parametrize(
        "spec,text",
        [
            (WindowSpec(WindowKind.SLIDING, 5 * MINUTES), "sliding 5m"),
            (WindowSpec(WindowKind.TUMBLING, 1000), "tumbling 1s"),
            (WindowSpec(WindowKind.INFINITE), "infinite"),
            (
                WindowSpec(WindowKind.SLIDING, 1000, delay_ms=30 * SECONDS),
                "sliding 1s delayed by 30s",
            ),
        ],
    )
    def test_describe(self, spec, text):
        assert spec.describe() == text
