"""Baseline engine tests: mechanics and the accuracy gaps they exhibit."""

import pytest

from repro.baselines import (
    HoppingWindowEngine,
    LambdaArchitecture,
    PerEventScanEngine,
    TrueSlidingReference,
)
from repro.common.clock import MINUTES, SECONDS


class TestTrueSlidingReference:
    def test_window_semantics(self):
        reference = TrueSlidingReference(1000)
        reference.on_event("k", 100, 5.0)
        reference.on_event("k", 500, 3.0)
        assert reference.count("k", 500) == 2
        assert reference.sum("k", 500) == 8.0
        assert reference.count("k", 1100) == 1  # ts=100 expired at 1100
        assert reference.count("k", 1501) == 0

    def test_keys_isolated(self):
        reference = TrueSlidingReference(1000)
        reference.on_event("a", 100, 1.0)
        assert reference.count("b", 100) == 0

    def test_stored_events(self):
        reference = TrueSlidingReference(1000)
        for ts in (100, 200, 1500):
            reference.on_event("k", ts, 1.0)
        assert reference.stored_events() == 1  # first two expired


class TestHoppingEngine:
    def test_panes_per_event_ratio(self):
        engine = HoppingWindowEngine(60 * MINUTES, 5 * MINUTES)
        assert engine.panes_per_event == 12
        engine = HoppingWindowEngine(60 * MINUTES, 1 * SECONDS)
        assert engine.panes_per_event == 3600

    def test_hop_larger_than_window_rejected(self):
        with pytest.raises(ValueError):
            HoppingWindowEngine(1000, 2000)

    def test_event_updates_all_covering_panes(self):
        engine = HoppingWindowEngine(3000, 1000)
        engine.on_event("k", 2500, 1.0)
        assert engine.stats.pane_updates == 3

    def test_fired_result_quantized_to_hops(self):
        engine = HoppingWindowEngine(2000, 1000)
        engine.on_event("k", 500, 1.0)
        engine.on_event("k", 1500, 1.0)
        # At t=1500 only pane [-1000, 1000) has fired: one event.
        assert engine.count("k", 1500) == 1
        # At t=2100 the pane [0, 2000) fired with both events.
        assert engine.count("k", 2100) == 2
        # A true sliding window at 2600 holds only ts=1500; the fired
        # hopping result still reports the stale pane.
        truth = TrueSlidingReference(2000)
        truth.on_event("k", 500, 1.0)
        truth.on_event("k", 1500, 1.0)
        assert truth.count("k", 2600) == 1
        assert engine.count("k", 2600) != truth.count("k", 2600)

    def test_max_live_count_sees_open_panes(self):
        engine = HoppingWindowEngine(2000, 1000)
        engine.on_event("k", 100, 1.0)
        engine.on_event("k", 200, 1.0)
        assert engine.max_live_count("k") == 2

    def test_figure1_burst_invisible_to_any_pane(self):
        window, hop = 5 * MINUTES, 1 * MINUTES
        engine = HoppingWindowEngine(window, hop)
        base = 30 * SECONDS  # misaligned with the hop grid
        for offset in (0, 60, 120, 180, 299):  # 5 events in <5 minutes
            engine.on_event("k", base + offset * SECONDS, 1.0)
        assert engine.max_live_count("k") < 5

    def test_pane_expiry_bounds_memory(self):
        engine = HoppingWindowEngine(3000, 1000)
        for i in range(50):
            engine.on_event("k", i * 1000, 1.0)
        assert engine.active_pane_count() <= engine.panes_per_event + 1
        assert engine.stats.panes_expired > 0

    def test_active_key_count(self):
        engine = HoppingWindowEngine(3000, 1000)
        engine.on_event("a", 100, 1.0)
        engine.on_event("b", 150, 1.0)
        assert engine.active_key_count() == 2


class TestPerEventScan:
    def test_results_exact(self):
        engine = PerEventScanEngine(1000)
        truth = TrueSlidingReference(1000)
        for ts, value in ((100, 1.0), (600, 2.0), (1400, 3.0)):
            total, count = engine.on_event("k", ts, value)
            truth.on_event("k", ts, value)
            assert count == truth.count("k", ts)
            assert total == pytest.approx(truth.sum("k", ts))

    def test_scan_cost_grows_with_occupancy(self):
        engine = PerEventScanEngine(1_000_000)
        for i in range(100):
            engine.on_event("k", i, 1.0)
        assert engine.stats.events_scanned == sum(range(1, 101))

    def test_ttl_pruning_bounds_storage(self):
        engine = PerEventScanEngine(100, prune_factor=2)
        for i in range(1000):
            engine.on_event("k", i * 10, 1.0)
        assert engine.stats.stored_events < 500

    def test_query_methods(self):
        engine = PerEventScanEngine(1000)
        engine.on_event("k", 100, 5.0)
        assert engine.count("k", 150) == 1
        assert engine.sum("k", 150) == 5.0


class TestLambdaArchitecture:
    def test_exact_within_speed_layer(self):
        lam = LambdaArchitecture(10_000, batch_interval_ms=60_000)
        lam.on_event("k", 1000, 2.0)
        lam.on_event("k", 2000, 3.0)
        assert lam.count("k", 2000) == 2
        assert lam.sum("k", 2000) == 5.0

    def test_batch_staleness_causes_error(self):
        window, interval = 5_000, 10_000
        lam = LambdaArchitecture(window, interval)
        truth = TrueSlidingReference(window)
        lam.on_event("k", 9_000, 1.0)
        truth.on_event("k", 9_000, 1.0)
        # Cross a batch boundary; the batch layer now owns ts<10000 and
        # computed its window as of t=10000 (including ts=9000).
        lam.on_event("k", 11_000, 1.0)
        truth.on_event("k", 11_000, 1.0)
        # At 14.5s the true window holds only ts=11000; lambda still
        # reports the stale batch contribution for ts=9000 too.
        assert truth.count("k", 14_500) == 1
        assert lam.count("k", 14_500) == 2

    def test_batch_runs_counted(self):
        lam = LambdaArchitecture(5_000, 10_000)
        lam.on_event("k", 1_000, 1.0)
        lam.on_event("k", 25_000, 1.0)
        assert lam.stats.batch_runs >= 1

    def test_bad_params(self):
        with pytest.raises(ValueError):
            LambdaArchitecture(0, 100)
        with pytest.raises(ValueError):
            PerEventScanEngine(0)
        with pytest.raises(ValueError):
            TrueSlidingReference(0)
