"""Clock and duration parsing tests."""

import pytest

from repro.common.clock import (
    DAYS,
    HOURS,
    MINUTES,
    SECONDS,
    ManualClock,
    SystemClock,
    format_duration_ms,
    parse_duration_ms,
)


class TestManualClock:
    def test_starts_at_given_time(self):
        assert ManualClock(start_ms=42).now() == 42

    def test_advance_returns_new_time(self):
        clock = ManualClock()
        assert clock.advance(100) == 100
        assert clock.now() == 100

    def test_advance_accumulates(self):
        clock = ManualClock(10)
        clock.advance(5)
        clock.advance(5)
        assert clock.now() == 20

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            ManualClock(start_ms=-1)

    def test_negative_advance_rejected(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_set_jumps_forward(self):
        clock = ManualClock()
        clock.set(500)
        assert clock.now() == 500

    def test_set_backwards_rejected(self):
        clock = ManualClock(100)
        with pytest.raises(ValueError):
            clock.set(99)

    def test_now_seconds(self):
        assert ManualClock(1500).now_seconds() == 1.5


class TestSystemClock:
    def test_monotone_nonnegative(self):
        clock = SystemClock()
        first = clock.now()
        second = clock.now()
        assert first > 0
        assert second >= first


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("5 minutes", 5 * MINUTES),
            ("1 minute", 1 * MINUTES),
            ("30s", 30 * SECONDS),
            ("30 seconds", 30 * SECONDS),
            ("1 hour", 1 * HOURS),
            ("2h", 2 * HOURS),
            ("7 days", 7 * DAYS),
            ("1 week", 7 * DAYS),
            ("250ms", 250),
            ("1.5 seconds", 1500),
            ("0.5h", 30 * MINUTES),
        ],
    )
    def test_parses(self, text, expected):
        assert parse_duration_ms(text) == expected

    def test_case_insensitive(self):
        assert parse_duration_ms("5 MINUTES") == 5 * MINUTES

    @pytest.mark.parametrize("bad", ["", "minutes", "5 parsecs", "5", "-3s", "0s"])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_duration_ms(bad)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "ms,expected",
        [
            (5 * MINUTES, "5m"),
            (90 * SECONDS, "90s"),
            (1 * HOURS, "1h"),
            (3 * DAYS, "3d"),
            (1234, "1234ms"),
        ],
    )
    def test_formats(self, ms, expected):
        assert format_duration_ms(ms) == expected

    def test_roundtrip_through_parse(self):
        for ms in (250, 30 * SECONDS, 5 * MINUTES, 2 * HOURS, 7 * DAYS):
            assert parse_duration_ms(format_duration_ms(ms)) == ms
