"""Documentation gate in tier-1: links resolve, quickstarts run.

Thin wrapper over ``tools/check_docs.py`` (the same module the CI docs
job runs) so a broken relative link in README/docs/ROADMAP or a rotted
fenced quickstart snippet fails the ordinary test suite too.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", ROOT / "tools" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def doc_files() -> list[Path]:
    files = [ROOT / "README.md", ROOT / "ROADMAP.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return files


def test_doc_files_exist():
    paths = doc_files()
    assert (ROOT / "docs" / "ARCHITECTURE.md") in paths
    assert all(path.exists() for path in paths)


def test_markdown_links_resolve():
    failures = []
    for path in doc_files():
        failures.extend(check_docs.check_links(path))
    assert not failures, "\n".join(failures)


def test_fenced_quickstart_snippets_execute():
    failures = []
    for path in doc_files():
        failures.extend(check_docs.check_doctests(path))
    assert not failures, "\n".join(failures)


def test_at_least_one_executable_snippet_is_guarded():
    """The gate must actually gate: if every fenced snippet lost its
    doctest prompts, example rot would go unnoticed again."""
    executable = 0
    for path in doc_files():
        for _, source in check_docs.python_fences(path):
            if ">>>" in source:
                executable += 1
    assert executable >= 2
