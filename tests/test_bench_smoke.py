"""Smoke tests for the cheap experiment runners (fast configurations).

The latency-simulation figures (8, 9a, 9b, 10) are exercised by the
benchmark suite; here we cover the cheap, real-component experiments so
``pytest tests/`` alone exercises the harness code paths.
"""

from repro.bench.experiments import fig1_accuracy


class TestFig1Runner:
    def test_run_and_render(self):
        result = fig1_accuracy.run(fast=True)
        report = fig1_accuracy.render(result)
        assert "Figure 1" in report
        assert "railgun-sliding" in report
        failed = [desc for desc, ok in result["checks"] if not ok]
        assert not failed, failed

    def test_rates_are_probabilities(self):
        result = fig1_accuracy.run(fast=True)
        for section in ("general", "figure1"):
            for rate in result[section].values():
                assert 0.0 <= rate <= 1.0
