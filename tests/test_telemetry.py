"""The unified telemetry plane (repro.telemetry).

Four claims, each proved here:

- the registry records *exact* values under ``DeterministicTimeSource``
  (stage timings are virtual-clock deltas, not wall-clock noise);
- snapshots merge losslessly — counters sum, same-process snapshots
  dedup by ``seq``, histogram percentiles are computed over the union
  of buckets, never averaged;
- the wire telemetry tail is strictly additive: a frame without a
  trace encodes byte-identically to the pre-telemetry format, and an
  old frame (no tail) decodes with ``trace``/``stats`` of ``None``;
- spans and snapshots actually cross process boundaries — over the
  serde-framed pipe *and* the shared-memory ring — and surface in the
  one merged dict every facade's ``telemetry()`` returns.

The companion observation-only proof (byte-identical replies with
telemetry on and off) lives in tests/test_batch_equivalence.py.
"""

from __future__ import annotations

import re

import pytest

from repro.common.timesource import DeterministicTimeSource
from repro.events.event import Event
from repro.messaging.log import TopicPartition
from repro.shard import columnar, wire
from repro.telemetry import (
    METRICS,
    MetricsRegistry,
    decode_bundle,
    decode_snapshot,
    encode_bundle,
    encode_snapshot,
    merge_snapshots,
    to_prometheus,
)


def make_registry(enabled: bool = True):
    ts = DeterministicTimeSource()
    return MetricsRegistry("t", time_source=ts, enabled=enabled), ts


class TestRegistryDeterministic:
    def test_counters_values_labels_and_sum(self):
        reg, _ = make_registry()
        reg.counter_add("engine_events_in_total", 3)
        reg.counter_add("engine_events_in_total")
        reg.counter_add("router_events_routed_total", 5, label="fe-0")
        reg.counter_add("router_events_routed_total", 7, label="fe-1")
        assert reg.counter_value("engine_events_in_total") == 4
        assert reg.counter_value("router_events_routed_total", "fe-0") == 5
        assert reg.counter_sum("router_events_routed_total") == 12
        assert reg.counter_labels("router_events_routed_total") == {
            "fe-0": 5, "fe-1": 7,
        }

    def test_gauge_keeps_last_write(self):
        reg, _ = make_registry()
        reg.gauge_set("supervisor_outstanding_batches", 4)
        reg.gauge_set("supervisor_outstanding_batches", 1)
        assert reg.snapshot()["gauges"] == {"supervisor_outstanding_batches": 1}

    def test_time_stage_records_exact_virtual_delta(self):
        reg, ts = make_registry()
        with reg.time_stage("engine_batch_ms"):
            ts.advance(0.005)
        hist = reg.snapshot()["histograms"]["engine_batch_ms"]
        assert hist["count"] == 1
        assert hist["sum_ms"] == pytest.approx(5.0)
        assert hist["max_ms"] == pytest.approx(5.0)

    def test_observe_since_pairs_with_now(self):
        reg, ts = make_registry()
        started = reg.now()
        ts.advance(0.25)
        reg.observe_since("engine_collect_ms", started)
        hist = reg.snapshot()["histograms"]["engine_collect_ms"]
        assert hist["count"] == 1
        assert hist["sum_ms"] == pytest.approx(250.0)

    def test_negative_samples_clamp_to_zero(self):
        # Cross-process monotonic deltas can go fractionally negative.
        reg, _ = make_registry()
        reg.observe_ms("worker_queue_wait_ms", -3.0)
        hist = reg.snapshot()["histograms"]["worker_queue_wait_ms"]
        assert hist["count"] == 1
        assert hist["min_ms"] == 0.0
        assert hist["sum_ms"] == 0.0

    def test_disabled_registry_keeps_counters_drops_histograms(self):
        # Counters back stats() compat views, so they stay on; the
        # measurement plane (histograms, time_stage) goes quiet.
        reg, ts = make_registry(enabled=False)
        reg.counter_add("engine_events_in_total", 2)
        reg.observe_ms("engine_batch_ms", 1.0)
        with reg.time_stage("engine_batch_ms"):
            ts.advance(0.01)
        reg.record_hops((("worker_queue_wait_ms", 1.0),))
        snap = reg.snapshot()
        assert snap["counters"] == {"engine_events_in_total": 2}
        assert snap["histograms"] == {}

    def test_record_hops_drops_names_outside_the_catalog(self):
        reg, _ = make_registry()
        reg.record_hops((
            ("worker_queue_wait_ms", 2.0),
            ("totally_made_up_ms", 9.0),
            ("engine_events_in_total", 1.0),  # counter, not a histogram
        ))
        assert set(reg.snapshot()["histograms"]) == {"worker_queue_wait_ms"}


class TestSnapshotsAndMerge:
    def test_snapshot_roundtrips_through_wire_encoding(self):
        reg, ts = make_registry()
        reg.counter_add("worker_records_total", 11)
        with reg.time_stage("worker_process_batch_ms"):
            ts.advance(0.002)
        snap = reg.snapshot()
        assert decode_snapshot(encode_snapshot(snap)) == snap

    def test_bundle_roundtrips_several_snapshots(self):
        a, _ = make_registry()
        b, _ = make_registry()
        a.counter_add("frontend_events_ingested_total", 1)
        b.counter_add("worker_records_total", 2)
        parts = [encode_snapshot(a.snapshot()), encode_snapshot(b.snapshot())]
        decoded = decode_bundle(encode_bundle(parts))
        assert [d["counters"] for d in decoded] == [
            {"frontend_events_ingested_total": 1},
            {"worker_records_total": 2},
        ]

    def test_merge_dedups_same_process_by_seq(self):
        # The same worker snapshot can arrive via several frontends;
        # only the freshest copy counts, so nothing double-counts.
        reg, _ = make_registry()
        reg.counter_add("worker_records_total", 5)
        stale = reg.snapshot()
        reg.counter_add("worker_records_total", 5)
        fresh = reg.snapshot()
        merged = merge_snapshots([stale, fresh, stale])
        assert merged["counters"]["worker_records_total"] == 10
        assert merged["processes"] == ["t"]

    def test_merge_sums_counters_across_processes(self):
        a = MetricsRegistry("worker:a", enabled=True)
        b = MetricsRegistry("worker:b", enabled=True)
        a.counter_add("worker_records_total", 3)
        b.counter_add("worker_records_total", 4)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["worker_records_total"] == 7
        assert merged["processes"] == ["worker:a", "worker:b"]

    def test_merged_percentiles_come_from_the_union_of_buckets(self):
        # 10 fast samples on one process, 10 slow on another: the
        # merged p50/p99 must straddle both populations (bucket merge),
        # not average two per-process percentiles.
        a = MetricsRegistry("worker:a", enabled=True)
        b = MetricsRegistry("worker:b", enabled=True)
        for _ in range(10):
            a.observe_ms("worker_process_batch_ms", 1.0)
            b.observe_ms("worker_process_batch_ms", 100.0)
        hist = merge_snapshots([a.snapshot(), b.snapshot()])[
            "histograms"]["worker_process_batch_ms"]
        assert hist["count"] == 20
        assert hist["sum_ms"] == pytest.approx(1010.0)
        assert hist["p50_ms"] == pytest.approx(1.0, rel=0.05)
        assert hist["p99_ms"] == pytest.approx(100.0, rel=0.05)
        assert hist["min_ms"] == pytest.approx(1.0, rel=0.05)
        assert hist["max_ms"] == pytest.approx(100.0, rel=0.05)

    def test_merged_schema_is_stable(self):
        reg, _ = make_registry()
        merged = merge_snapshots([reg.snapshot()])
        assert set(merged) == {
            "schema", "processes", "counters", "gauges", "histograms",
        }

    def test_to_prometheus_exposes_help_types_and_quantiles(self):
        reg, ts = make_registry()
        reg.counter_add("engine_events_in_total", 3)
        reg.counter_add("router_events_routed_total", 2, label="fe-0")
        with reg.time_stage("engine_batch_ms"):
            ts.advance(0.004)
        text = to_prometheus(merge_snapshots([reg.snapshot()]))
        assert "# TYPE engine_events_in_total counter" in text
        assert "engine_events_in_total 3" in text
        assert 'router_events_routed_total{label="fe-0"} 2' in text
        assert "# TYPE engine_batch_ms summary" in text
        assert "engine_batch_ms_count 1" in text
        assert 'engine_batch_ms{quantile="0.99"}' in text

    def test_catalog_names_follow_the_convention(self):
        # <subsystem>_<noun>_<unit> snake_case: counters end _total,
        # histograms end _ms (tools/check_telemetry.py enforces that
        # call sites stay inside this catalog).
        for name, (kind, unit, stage, help_) in METRICS.items():
            assert re.fullmatch(r"[a-z][a-z0-9_]*", name), name
            if kind == "counter":
                assert name.endswith("_total"), name
            if kind == "histogram":
                assert name.endswith("_ms"), name
                assert unit == "ms", name
            assert help_, name


class TestWireTelemetryTail:
    TP = TopicPartition("tx-p", 1)
    TRACE = ("span-7", (("engine_dispatch_ms", 1.5), ("worker_queue_wait_ms", 0.25)))

    def frames(self):
        records = [(4, Event("e1", 1000, {"cardId": "c1", "amount": 2.0}))]
        return [
            wire.WorkBatch(self.TP, 0, records),
            wire.BatchDone(self.TP, 5, 1, [(4, {0: {"sum": 2.0}})]),
            wire.IngestBatch("tx", [(9, records[0][1], (("h", 1),))]),
            wire.ReplyBatch([(9, "tx-p", {0: {"sum": 2.0}})],
                            watermarks=((self.TP, 5),),
                            processed=(("w0", 1, 1),)),
        ]

    def test_traceless_frames_stay_byte_identical(self):
        # The tail is strictly appended: a frame with no telemetry
        # encodes to exactly the pre-telemetry bytes (old decoders keep
        # working), and the traced encoding extends it without touching
        # the original payload.
        for frame in self.frames():
            plain = wire.encode(frame)
            frame.trace = self.TRACE
            traced = wire.encode(frame)
            assert traced[:len(plain)] == plain, type(frame).__name__
            assert len(traced) > len(plain), type(frame).__name__

    def test_old_frames_decode_with_none_telemetry(self):
        for frame in self.frames():
            decoded = wire.decode(wire.encode(frame))
            assert decoded.trace is None, type(frame).__name__
            if hasattr(decoded, "stats"):
                assert decoded.stats is None, type(frame).__name__

    def test_trace_and_stats_roundtrip(self):
        for frame in self.frames():
            frame.trace = self.TRACE
            if hasattr(frame, "stats"):
                frame.stats = b'{"process":"worker:w0"}'
            decoded = wire.decode(wire.encode(frame))
            assert decoded.trace == self.TRACE, type(frame).__name__
            if hasattr(frame, "stats"):
                assert decoded.stats == b'{"process":"worker:w0"}'

    def test_columnar_frames_carry_the_same_tail(self):
        # The shm ring ships the columnar encodings; they follow the
        # identical append-only tail contract.
        work, done = self.frames()[:2]
        for frame in (work, done):
            plain = columnar.encode(frame)
            frame.trace = self.TRACE
            if hasattr(frame, "stats"):
                frame.stats = b"{}"
            traced = columnar.encode(frame)
            assert traced[:len(plain)] == plain
            decoded = columnar.decode(traced)
            assert decoded.trace == self.TRACE
            assert columnar.decode(plain).trace is None

    def test_stats_request_reply_roundtrip(self):
        req = wire.decode(wire.encode(wire.StatsRequest(17)))
        assert req == wire.StatsRequest(17)
        reply = wire.decode(wire.encode(wire.StatsReply(17, b'{"schema":1}')))
        assert reply.request_id == 17
        assert bytes(reply.payload) == b'{"schema":1}'


def ingest_forty(cluster) -> int:
    cluster.create_stream(
        "tx", ["cardId"], partitions=2,
        schema={"cardId": "string", "amount": "float"},
    )
    cluster.create_metric(
        "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
        "OVER sliding 5 minutes"
    )
    events = [
        Event(f"b{i}", 1000 + i // 2, {"cardId": f"c{i % 3}", "amount": float(i)})
        for i in range(40)
    ]
    replies = cluster.send_batch("tx", events)
    assert len(replies) == len(events)
    return len(events)


class TestClusterTelemetry:
    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_worker_spans_and_snapshots_cross_the_wire(
        self, transport, monkeypatch
    ):
        from repro.shard.parallel import ParallelCluster

        monkeypatch.setenv("RAILGUN_TELEMETRY", "1")
        with ParallelCluster(workers=2, transport=transport) as cluster:
            count = ingest_forty(cluster)
            merged = cluster.telemetry()
            stats = cluster.supervisor.stats()
        assert set(merged) == {
            "schema", "processes", "counters", "gauges", "histograms",
        }
        # Worker processes surface by name: their snapshots rode the
        # BatchDone frames home.
        assert any(p.startswith("worker:") for p in merged["processes"])
        counters = merged["counters"]
        assert counters["engine_events_in_total"] == count
        assert counters["engine_replies_out_total"] == count
        histograms = merged["histograms"]
        # The trace span's hop timings landed in the coordinator-side
        # registry (queue wait is measured from the WorkBatch's send
        # stamp, across the process boundary).
        assert histograms["worker_queue_wait_ms"]["count"] > 0
        assert histograms["worker_process_batch_ms"]["count"] > 0
        assert histograms["engine_batch_ms"]["count"] > 0
        # The legacy stats() view reads the same registry.
        assert sum(w["processed"] for w in stats.values()) == count
        for entry in stats.values():
            assert set(entry) == {
                "processed", "replies_sent", "restarts",
                "checkpoint_acks", "late_checkpoint_acks",
            }

    def test_router_frontends_ship_bundles(self, monkeypatch):
        from repro.engine.cluster import create_cluster

        monkeypatch.setenv("RAILGUN_TELEMETRY", "1")
        with create_cluster("process", workers=2, frontends=2) as cluster:
            count = ingest_forty(cluster)
            merged = cluster.telemetry()
            stats = cluster.stats()
        assert any(p.startswith("frontend:") for p in merged["processes"])
        assert any(p.startswith("worker:") for p in merged["processes"])
        counters = merged["counters"]
        assert counters["engine_events_in_total"] == count
        assert counters["engine_replies_out_total"] == count
        assert merged["histograms"]["frontend_ingest_ms"]["count"] > 0
        # Legacy router stats() is a view over the same counters.
        routed = sum(
            fe["events_routed"] for fe in stats["frontends"].values()
        )
        assert routed == count

    def test_single_facade_merges_one_process(self, monkeypatch):
        from repro.engine.cluster import create_cluster

        monkeypatch.setenv("RAILGUN_TELEMETRY", "1")
        cluster = create_cluster("single", nodes=2, processor_units=2)
        count = ingest_forty(cluster)
        merged = cluster.telemetry()
        assert merged["processes"] == ["engine"]
        assert merged["counters"]["engine_events_in_total"] == count
        assert merged["counters"]["engine_replies_out_total"] == count
        assert merged["histograms"]["engine_batch_ms"]["count"] >= 1

    def test_telemetry_disabled_still_counts_but_never_times(
        self, monkeypatch
    ):
        from repro.engine.cluster import create_cluster

        monkeypatch.setenv("RAILGUN_TELEMETRY", "0")
        cluster = create_cluster("single", nodes=2, processor_units=2)
        count = ingest_forty(cluster)
        merged = cluster.telemetry()
        assert merged["counters"]["engine_events_in_total"] == count
        assert merged["histograms"] == {}


class TestFrontDoorStats:
    def test_client_stats_returns_the_merged_cluster_snapshot(
        self, monkeypatch
    ):
        from repro.engine.cluster import create_cluster
        from repro.server.client import RailgunClient

        monkeypatch.setenv("RAILGUN_TELEMETRY", "1")
        served = create_cluster(
            "single", nodes=2, processor_units=2, serve="tcp://127.0.0.1:0"
        )
        try:
            host, port = served.server.address
            with RailgunClient(host, port) as client:
                client.create_stream(
                    "tx", ["cardId"], partitions=2,
                    schema={"cardId": "string", "amount": "float"},
                )
                client.create_metric(
                    "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                    "OVER sliding 5 minutes"
                )
                events = [
                    Event(f"b{i}", 1000 + i,
                          {"cardId": f"c{i % 3}", "amount": float(i)})
                    for i in range(8)
                ]
                client.send_batch("tx", events)
                merged = client.stats()
            legacy = served.server.stats()
        finally:
            served.close()
        assert set(merged) >= {
            "schema", "processes", "counters", "gauges", "histograms",
        }
        # The server folds its own registry into the cluster's merge.
        assert "server" in merged["processes"]
        assert "engine" in merged["processes"]
        counters = merged["counters"]
        assert counters["engine_events_in_total"] == 8
        assert counters["server_stats_requests_total"] == 1
        assert counters["server_frames_in_total"] > 0
        assert merged["histograms"]["server_request_ms"]["count"] >= 1
        assert merged["gauges"]["server_connections_open"] >= 0
        # And the legacy stats() view reads the same registry (it can
        # only have moved forward: the client's Goodbye frame lands
        # after the snapshot was taken).
        assert legacy["server"]["frames_in"] >= counters["server_frames_in_total"]
