"""Chaos harness tests: generator determinism + pinned regression corpus.

Two layers:

- **Determinism contracts** — the whole harness hinges on "same seed,
  same everything": scenario generation must be a pure function of the
  seed, and a rerun of the same (seed, topology) pair must produce the
  same verdict. These are cheap and run every time.
- **Pinned corpus** — every seed that ever exposed a real bug gets a
  named test here, so the bug's exact traffic shape and fault schedule
  replay forever. The corpus grows append-only; a fixed smoke set keeps
  the tier-1 cost bounded while the 25-fresh-seed sweep lives in the
  ``chaos`` CI job.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import FAULT_KINDS, TOPOLOGIES, generate_scenario, run_seed
from repro.chaos.__main__ import main as chaos_main


class TestScenarioDeterminism:
    def test_same_seed_same_scenario(self):
        first = generate_scenario(1234)
        second = generate_scenario(1234)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert first.batches == second.batches  # Event __eq__ covers payloads

    def test_different_seeds_differ(self):
        scenarios = [generate_scenario(seed) for seed in range(6)]
        described = {s.describe() for s in scenarios}
        assert len(described) == len(scenarios)

    def test_traffic_shapes_all_appear_across_seeds(self):
        """The generator's messy-traffic vocabulary is live: across a
        seed range we see duplicates, ties, out-of-order arrivals, and
        at least one of every fault kind."""
        saw_dup = saw_tie = saw_ooo = False
        kinds: set[str] = set()
        for seed in range(40):
            scenario = generate_scenario(seed)
            kinds.update(f.kind for f in scenario.faults)
            seen_ids: set[str] = set()
            last_ts = 0
            for _stream, events in scenario.batches:
                for event in events:
                    if event.event_id in seen_ids:
                        saw_dup = True
                    seen_ids.add(event.event_id)
                    if event.timestamp < last_ts:
                        saw_ooo = True
                    last_ts = max(last_ts, event.timestamp)
                timestamps = [e.timestamp for e in events]
                if len(timestamps) != len(set(timestamps)):
                    saw_tie = True
        assert saw_dup and saw_tie and saw_ooo
        assert kinds == set(FAULT_KINDS)

    def test_fault_schedule_is_sorted_and_in_range(self):
        for seed in range(20):
            scenario = generate_scenario(seed)
            indices = [f.at_batch for f in scenario.faults]
            assert indices == sorted(indices)
            assert all(0 <= i < len(scenario.batches) for i in indices)

    def test_rebalance_and_mid_batch_kinds_are_scheduled(self):
        """The PR-9 fault vocabulary (pool grow/shrink, kill-mid-batch)
        is generated within the first forty seeds, with every fault's
        fields inside the bounds the runner relies on: ``at_batch``
        indexes a real batch, ``target`` is a small non-negative int the
        runner takes modulo the live pool, and ``kind`` is never outside
        ``FAULT_KINDS``."""
        seen: set[str] = set()
        for seed in range(40):
            scenario = generate_scenario(seed)
            for fault in scenario.faults:
                assert fault.kind in FAULT_KINDS
                assert 0 <= fault.at_batch < len(scenario.batches)
                assert 0 <= fault.target < 4
                seen.add(fault.kind)
        assert {"add_worker", "remove_worker", "crash_mid_batch"} <= seen


class TestRunnerContracts:
    def test_unknown_topology_raises(self):
        with pytest.raises(ValueError, match="unknown topology"):
            run_seed(0, "mainframe")

    def test_replay_command_names_the_seed(self):
        result = run_seed(7, "single", max_events=60)
        assert "--seed 7" in result.replay_command
        assert "--topology single" in result.replay_command
        assert result.ok, result.detail

    def test_same_seed_same_verdict_and_reply_count(self):
        first = run_seed(11, "process", max_events=120)
        second = run_seed(11, "process", max_events=120)
        assert first.ok and second.ok, (first.detail, second.detail)
        assert first.replies == second.replies
        assert first.scenario == second.scenario

    def test_cli_exit_codes(self, capsys):
        assert chaos_main(["--seed", "3", "--topology", "single",
                           "--max-events", "60"]) == 0
        out = capsys.readouterr().out
        assert "ok topology=single" in out
        assert "1 run(s) clean" in out


class TestChaosSmoke:
    """A bounded always-on slice of the chaos space: one faulty seed per
    process topology, small scenarios so tier-1 stays fast. The broad
    sweep (25 fresh seeds, full-size scenarios, every topology) runs in
    the ``chaos`` CI job."""

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_seed_zero_everywhere(self, topology):
        # Seed 0 at this scenario size schedules a worker crash
        # mid-stream; the rebalance kinds get their own smoke below.
        result = run_seed(0, topology, max_events=200)
        assert result.ok, f"{result.detail}\nreplay: {result.replay_command}"

    def test_rebalance_faults_hold_the_invariant(self):
        # Seed 4 at this size grows the pool twice around a worker
        # crash — checkpoint shipping to fresh workers under traffic.
        result = run_seed(4, "process", max_events=200)
        assert result.ok, f"{result.detail}\nreplay: {result.replay_command}"
        assert any(f.startswith("add_worker") for f in result.faults_applied)

    def test_mid_batch_kill_holds_the_invariant(self):
        # Seed 11 SIGKILLs a worker from a side thread while send_batch
        # is in flight, then forces a checkpoint: the recovery replay
        # must keep replies byte-identical to the single reference.
        result = run_seed(11, "process", max_events=200)
        assert result.ok, f"{result.detail}\nreplay: {result.replay_command}"
        assert any(
            f.startswith("crash_mid_batch") for f in result.faults_applied
        )


class TestPinnedCorpus:
    """Seeds that exposed real bugs, one named test each — append-only.

    No seed has survived verification as a bug-finder yet (seeds 0-2
    and the 100-124 sweep run clean on every topology); when one does,
    pin it like::

        def test_seed_NNNN_description_of_the_bug(self):
            result = run_seed(NNNN, "process-2f")
            assert result.ok, result.detail
    """

    def test_corpus_placeholder_keeps_class_importable(self):
        assert callable(run_seed)

    def test_seed_10_mid_stream_ddl_races_the_data_plane(self):
        """Seed 10 on the sharded-frontend topology caught a real bug
        during PR 9 development: ``create_metric`` mid-stream broadcast
        the metric on the supervisor control pipes while the next
        batch rode the frontends' data sockets — two unordered
        channels — so a worker could process the following events
        before applying the metric and reply without its results
        (reply[46] lost ``count(*)`` for the batch-2 mid-stream
        metric). Fixed by ``ClusterRouter._sync_workers``: reply-shape
        DDL round-trips the control pipe before returning."""
        result = run_seed(10, "process-2f", max_events=200)
        assert result.ok, f"{result.detail}\nreplay: {result.replay_command}"
