"""Aggregator tests: each verified against brute force over a window."""

import math
import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.aggregates import (
    AvgAggregator,
    CountAggregator,
    CountDistinctAggregator,
    LastAggregator,
    MaxAggregator,
    MemoryAuxStore,
    MinAggregator,
    PrevAggregator,
    StdDevAggregator,
    SumAggregator,
    aggregator_requires_numeric,
    create_aggregator,
)
from repro.common.errors import QueryError
from repro.events.event import Event


def _event(i, ts=None):
    return Event(f"e{i}", ts if ts is not None else i, {})


def _sliding_replay(aggregator, values, window):
    """Feed values through a size-`window` sliding window; yield results."""
    for i, value in enumerate(values):
        if i >= window:
            aggregator.evict(values[i - window], _event(i - window))
        aggregator.add(value, _event(i))
        yield aggregator.result()


class TestCount:
    def test_counts_non_null(self):
        agg = CountAggregator()
        agg.add(1, _event(0))
        agg.add(None, _event(1))
        agg.add("x", _event(2))
        assert agg.result() == 2

    def test_evict(self):
        agg = CountAggregator()
        agg.add(1, _event(0))
        agg.evict(1, _event(0))
        assert agg.result() == 0

    def test_star_semantics_with_sentinel(self):
        agg = CountAggregator()
        for i in range(5):
            agg.add(True, _event(i))  # plan feeds True for count(*)
        assert agg.result() == 5


class TestSumAvg:
    def test_sum_windowed(self):
        values = [random.Random(1).uniform(-10, 10) for _ in range(50)]
        agg = SumAggregator()
        for i, result in enumerate(_sliding_replay(agg, values, 10)):
            expected = sum(values[max(0, i - 9): i + 1])
            assert result == pytest.approx(expected)

    def test_avg_windowed(self):
        values = list(range(30))
        agg = AvgAggregator()
        for i, result in enumerate(_sliding_replay(agg, values, 5)):
            window = values[max(0, i - 4): i + 1]
            assert result == pytest.approx(sum(window) / len(window))

    def test_avg_empty_is_none(self):
        agg = AvgAggregator()
        assert agg.result() is None
        agg.add(1.0, _event(0))
        agg.evict(1.0, _event(0))
        assert agg.result() is None

    def test_nulls_ignored(self):
        agg = AvgAggregator()
        agg.add(2.0, _event(0))
        agg.add(None, _event(1))
        assert agg.result() == 2.0


class TestMinMax:
    @pytest.mark.parametrize("cls,func", [(MaxAggregator, max), (MinAggregator, min)])
    def test_windowed_exact(self, cls, func):
        rng = random.Random(5)
        values = [rng.randrange(100) for _ in range(200)]
        agg = cls()
        for i, result in enumerate(_sliding_replay(agg, values, 16)):
            window = values[max(0, i - 15): i + 1]
            assert result == func(window)

    def test_empty_is_none(self):
        agg = MaxAggregator()
        assert agg.result() is None

    def test_deque_stays_small_on_monotone_input(self):
        agg = MaxAggregator()
        for i in range(100):
            agg.add(i, _event(i))
        assert agg.candidate_count() == 1  # increasing input: only newest

    def test_out_of_order_add_exact(self):
        agg = MaxAggregator()
        agg.add(5, Event("a", 100, {}))
        agg.add(3, Event("b", 300, {}))
        # Late event between them with a dominating value.
        agg.add(9, Event("late", 200, {}))
        assert agg.result() == 9
        agg.evict(5, Event("a", 100, {}))
        assert agg.result() == 9
        agg.evict(9, Event("late", 200, {}))
        assert agg.result() == 3

    def test_out_of_order_dominated_insert_skipped(self):
        agg = MaxAggregator()
        agg.add(5, Event("a", 100, {}))
        agg.add(7, Event("b", 300, {}))  # dominates and pops a
        agg.add(6, Event("late", 200, {}))  # dominated by b (later, larger)
        assert agg.candidate_count() == 1
        assert agg.result() == 7
        agg.evict(5, Event("a", 100, {}))  # not a candidate: no-op
        agg.evict(6, Event("late", 200, {}))  # not a candidate: no-op
        assert agg.result() == 7

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_property_windowed_max(self, values):
        agg = MaxAggregator()
        for i, result in enumerate(_sliding_replay(agg, values, 8)):
            assert result == max(values[max(0, i - 7): i + 1])

    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=120))
    @settings(max_examples=40)
    def test_property_windowed_min(self, values):
        agg = MinAggregator()
        for i, result in enumerate(_sliding_replay(agg, values, 8)):
            assert result == min(values[max(0, i - 7): i + 1])


class TestStdDev:
    def test_windowed_matches_statistics(self):
        rng = random.Random(2)
        values = [rng.uniform(0, 100) for _ in range(100)]
        agg = StdDevAggregator()
        for i, result in enumerate(_sliding_replay(agg, values, 12)):
            window = values[max(0, i - 11): i + 1]
            if len(window) < 2:
                assert result is None
            else:
                assert result == pytest.approx(statistics.stdev(window), rel=1e-6)

    def test_variance(self):
        agg = StdDevAggregator()
        for value in (2.0, 4.0, 6.0):
            agg.add(value, _event(0))
        assert agg.variance() == pytest.approx(statistics.variance([2, 4, 6]))

    def test_under_two_samples_none(self):
        agg = StdDevAggregator()
        assert agg.result() is None
        agg.add(1.0, _event(0))
        assert agg.result() is None

    def test_reset_on_empty(self):
        agg = StdDevAggregator()
        agg.add(5.0, _event(0))
        agg.evict(5.0, _event(0))
        agg.add(1.0, _event(1))
        agg.add(3.0, _event(2))
        assert agg.result() == pytest.approx(statistics.stdev([1.0, 3.0]))

    def test_numerical_stability_large_offset(self):
        agg = StdDevAggregator()
        base = 1e9
        values = [base + v for v in (1.0, 2.0, 3.0, 4.0)]
        for i, value in enumerate(values):
            agg.add(value, _event(i))
        agg.evict(values[0], _event(0))
        assert agg.result() == pytest.approx(statistics.stdev(values[1:]), rel=1e-3)


class TestLastPrev:
    def test_tracks_two_newest(self):
        last, prev = LastAggregator(), PrevAggregator()
        for i, value in enumerate(("a", "b", "c")):
            for agg in (last, prev):
                agg.add(value, _event(i, ts=i * 10))
        assert last.result() == "c"
        assert prev.result() == "b"

    def test_eviction_of_older_events_is_noop(self):
        last = LastAggregator()
        for i in range(5):
            last.add(i, _event(i, ts=i * 10))
        last.evict(0, _event(0, ts=0))
        assert last.result() == 4

    def test_evicting_prev_clears_it(self):
        prev = PrevAggregator()
        prev.add("a", _event(0, ts=0))
        prev.add("b", _event(1, ts=10))
        prev.evict("a", _event(0, ts=0))
        assert prev.result() is None

    def test_evicting_last_empties_window(self):
        last = LastAggregator()
        last.add("a", _event(0, ts=0))
        last.evict("a", _event(0, ts=0))
        assert last.result() is None

    def test_late_event_between_last_and_prev(self):
        last, prev = LastAggregator(), PrevAggregator()
        for agg in (last, prev):
            agg.add("old", _event(0, ts=0))
            agg.add("new", _event(2, ts=100))
            agg.add("mid", _event(1, ts=50))  # late
        assert last.result() == "new"
        assert prev.result() == "mid"


class TestCountDistinct:
    def test_windowed_exact(self):
        rng = random.Random(3)
        values = [f"v{rng.randrange(6)}" for _ in range(120)]
        agg = CountDistinctAggregator()
        for i, result in enumerate(_sliding_replay(agg, values, 20)):
            window = values[max(0, i - 19): i + 1]
            assert result == len(set(window))

    def test_nulls_ignored(self):
        agg = CountDistinctAggregator()
        agg.add(None, _event(0))
        assert agg.result() == 0

    def test_aux_store_binding(self):
        agg = CountDistinctAggregator()
        aux = MemoryAuxStore()
        agg.bind_aux(aux)
        agg.add("x", _event(0))
        agg.add("x", _event(1))
        assert aux.count_keys() == 1
        agg.evict("x", _event(0))
        assert agg.result() == 1
        agg.evict("x", _event(1))
        assert agg.result() == 0
        assert aux.count_keys() == 0

    def test_mixed_value_types_distinct(self):
        agg = CountDistinctAggregator()
        agg.add(1, _event(0))
        agg.add("1", _event(1))
        agg.add(1.0, _event(2))
        assert agg.result() == 3


class TestStateSerde:
    @pytest.mark.parametrize(
        "name", ["count", "sum", "avg", "stdDev", "max", "min", "last", "prev", "countDistinct"]
    )
    def test_roundtrip_preserves_result(self, name):
        agg = create_aggregator(name)
        rng = random.Random(11)
        for i in range(20):
            agg.add(rng.uniform(0, 10), _event(i, ts=i * 7))
        clone = create_aggregator(name)
        if clone.needs_aux:
            # countDistinct shares its aux store across (de)serialization.
            aux = MemoryAuxStore()
            fresh = create_aggregator(name)
            fresh.bind_aux(aux)
            for i in range(20):
                fresh.add(i % 4, _event(i, ts=i))
            clone.bind_aux(aux)
            clone.state_from_bytes(fresh.state_to_bytes())
            assert clone.result() == fresh.result()
            return
        clone.state_from_bytes(agg.state_to_bytes())
        assert clone.result() == pytest.approx(agg.result())


class TestRegistry:
    def test_all_names_constructible(self):
        for name in ("count", "SUM", "Avg", "stddev", "countdistinct"):
            assert create_aggregator(name) is not None

    def test_unknown_rejected(self):
        with pytest.raises(QueryError):
            create_aggregator("median")

    def test_numeric_classification(self):
        assert aggregator_requires_numeric("sum")
        assert aggregator_requires_numeric("stdDev")
        assert not aggregator_requires_numeric("count")
        assert not aggregator_requires_numeric("last")

    def test_aux_store_negative_guard(self):
        aux = MemoryAuxStore()
        with pytest.raises(ValueError):
            aux.increment(b"k", -1)
