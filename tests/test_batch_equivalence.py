"""Batch vs per-event equivalence.

The batched ingestion fast paths (``Frontend.send_batch``,
``EventReservoir.append_batch``, ``TaskProcessor.process_batch``,
``Aggregator.update_batch``) must be observably identical to the
per-event paths: same replies, same aggregate outputs, same chunk
layouts (byte-for-byte storage files and checkpoint metadata), same
iterator positions — including mid-batch chunk rolls, schema-change
rolls, duplicates, replays and out-of-order arrivals.
"""

from __future__ import annotations

import random

import pytest

from repro.aggregates.base import MemoryAuxStore
from repro.aggregates.registry import AGGREGATOR_NAMES, create_aggregator
from repro.engine.catalog import MetricDef, StreamDef
from repro.engine.cluster import RailgunCluster
from repro.engine.task import TaskProcessor
from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.messaging.log import TopicPartition
from repro.reservoir.reservoir import (
    EventReservoir,
    OutOfOrderPolicy,
    ReservoirConfig,
)

FIELDS = [
    SchemaField("cardId", FieldType.STRING),
    SchemaField("amount", FieldType.FLOAT),
]


def make_registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.register(Schema(list(FIELDS)))
    return registry


def clean_events(count: int, start_ts: int = 1) -> list[Event]:
    return [
        Event(
            f"e{i}", start_ts + i, {"cardId": f"c{i % 7}", "amount": float(i % 13)}
        )
        for i in range(count)
    ]


def messy_events(count: int, seed: int) -> list[Event]:
    """In-order runs spiked with duplicates, ties and late arrivals."""
    rng = random.Random(seed)
    events = []
    ts = 0
    for i in range(count):
        ts += rng.choice([0, 1, 2, 5, 40])
        event_ts = max(0, ts - rng.choice([0, 0, 0, 0, 3, 500]))
        if i and rng.random() < 0.03:
            event_id = f"e{rng.randrange(i)}"  # duplicate of an earlier id
        else:
            event_id = f"e{i}"
        events.append(
            Event(event_id, event_ts,
                  {"cardId": f"c{i % 5}", "amount": float(i % 11)})
        )
    return events


def assert_reservoirs_identical(a: EventReservoir, b: EventReservoir) -> None:
    """Byte-identical persisted layout, metadata and counters."""
    assert a.checkpoint_metadata() == b.checkpoint_metadata()
    assert sorted(a.storage.list()) == sorted(b.storage.list())
    for name in a.storage.list():
        assert a.storage.read_all(name) == b.storage.read_all(name), name
        assert a.storage.is_sealed(name) == b.storage.is_sealed(name), name
    assert vars(a.stats) == vars(b.stats)


def append_in_slices(reservoir: EventReservoir, events, seed: int):
    """Drive append_batch with randomly-sized slices; returns all results."""
    rng = random.Random(seed)
    results = []
    index = 0
    while index < len(events):
        size = rng.randrange(1, 128)
        results.extend(reservoir.append_batch(events[index:index + size]))
        index += size
    return results


class TestReservoirEquivalence:
    def config(self, **overrides) -> ReservoirConfig:
        defaults = dict(chunk_max_events=32, file_max_chunks=4)
        defaults.update(overrides)
        return ReservoirConfig(**defaults)

    def run_both(self, events, seed=1, **config_overrides):
        per_event = EventReservoir(make_registry(), config=self.config(**config_overrides))
        batched = EventReservoir(make_registry(), config=self.config(**config_overrides))
        results_a = [per_event.append(event) for event in events]
        results_b = append_in_slices(batched, events, seed)
        assert results_a == results_b
        assert_reservoirs_identical(per_event, batched)
        return per_event, batched

    def test_clean_in_order_stream(self):
        self.run_both(clean_events(3000))

    def test_mid_batch_chunk_roll_and_file_seal(self):
        # 3000 events / 32-event chunks / 4-chunk files: every batch
        # rolls chunks and seals segment files mid-run.
        per_event, _ = self.run_both(clean_events(3000))
        assert per_event.stats.chunks_closed > 50
        assert per_event.stats.files_sealed > 10

    def test_messy_stream_rewrite_policy(self):
        self.run_both(messy_events(4000, seed=3))

    def test_messy_stream_discard_policy(self):
        self.run_both(
            messy_events(4000, seed=4), ooo_policy=OutOfOrderPolicy.DISCARD
        )

    def test_transition_grace_period(self):
        self.run_both(messy_events(4000, seed=5), transition_grace_ms=64)

    def test_schema_change_rolls_open_chunk(self):
        events_v1 = clean_events(50)
        events_v2 = [
            Event(f"n{i}", 1000 + i,
                  {"cardId": "c", "amount": 1.0, "country": "PT"})
            for i in range(50)
        ]
        evolved = Schema(list(FIELDS) + [SchemaField("country", FieldType.STRING)])

        per_event = EventReservoir(make_registry(), config=self.config())
        batched = EventReservoir(make_registry(), config=self.config())
        results_a = [per_event.append(event) for event in events_v1]
        results_b = batched.append_batch(events_v1)
        per_event.registry.register(evolved)
        batched.registry.register(evolved)
        results_a += [per_event.append(event) for event in events_v2]
        results_b += batched.append_batch(events_v2)
        assert results_a == results_b
        assert_reservoirs_identical(per_event, batched)

    def test_iterator_emissions_and_positions(self):
        events = clean_events(500)
        per_event = EventReservoir(make_registry(), config=self.config())
        batched = EventReservoir(make_registry(), config=self.config())
        cursor_a = per_event.new_iterator()
        cursor_b = batched.new_iterator()
        emitted_a, emitted_b = [], []
        for i in range(0, len(events), 100):
            chunk = events[i:i + 100]
            for event in chunk:
                per_event.append(event)
                emitted_a.extend(cursor_a.advance_upto(event.timestamp))
            batched.append_batch(chunk)
            for event in chunk:
                emitted_b.extend(cursor_b.advance_upto(event.timestamp))
        assert emitted_a == emitted_b == events
        assert cursor_a.position == cursor_b.position

    def test_horizon_ahead_of_frontier_rewrites(self):
        # Tie groups wider than a chunk: rewritten events seal chunks
        # whose last_ts runs AHEAD of max_seen_ts, so later fresh events
        # can sit below the closed horizon and must be rewritten on the
        # batched path exactly as append() rewrites them.
        events = [
            Event(f"h{i}", 5 + i // 6, {"cardId": "c0", "amount": 1.0})
            for i in range(200)
        ]
        per_event, _ = self.run_both(
            events, chunk_max_events=4, file_max_chunks=4
        )
        assert per_event.stats.ooo_rewritten > 0

    def test_empty_batch_is_noop(self):
        reservoir = EventReservoir(make_registry(), config=self.config())
        assert reservoir.append_batch([]) == []
        assert reservoir.total_events == 0


def aggregator_pairs(count: int, seed: int, with_strings: bool):
    """(value, event) pairs with Nones and mixed magnitudes."""
    rng = random.Random(seed)
    pairs = []
    for i in range(count):
        if rng.random() < 0.15:
            value = None
        elif with_strings:
            value = f"v{rng.randrange(9)}"
        else:
            value = rng.choice([rng.uniform(-1e6, 1e6), rng.randrange(1000), 0.5])
        pairs.append((value, Event(f"a{i}", i + 1, {"amount": 0.0})))
    return pairs


class TestAggregatorEquivalence:
    @pytest.mark.parametrize("name", AGGREGATOR_NAMES)
    def test_update_batch_matches_per_event(self, name):
        with_strings = name in ("count", "last", "prev", "countDistinct")
        pairs = aggregator_pairs(600, seed=hash(name) % 1000, with_strings=with_strings)
        enters = pairs
        exits = pairs[:250]  # every evicted pair was previously added

        loop = create_aggregator(name.lower())
        batch = create_aggregator(name.lower())
        for aggregator in (loop, batch):
            if aggregator.needs_aux:
                aggregator.bind_aux(MemoryAuxStore())

        for value, event in enters:
            loop.add(value, event)
        for value, event in exits:
            loop.evict(value, event)
        batch.update_batch(enters, ())
        batch.update_batch((), exits)
        assert loop.state_to_bytes() == batch.state_to_bytes()
        assert loop.result() == batch.result()

    @pytest.mark.parametrize("name", ["sum", "avg", "count", "max", "min"])
    def test_interleaved_folds_bit_identical(self, name):
        """exits-then-enters per call, in call order — float-exact."""
        pairs = aggregator_pairs(400, seed=11, with_strings=False)
        loop = create_aggregator(name)
        batch = create_aggregator(name)
        window: list = []
        position = 0
        while position < len(pairs):
            enters = pairs[position:position + 37]
            exits = window[:13]
            window = window[13:] + enters
            for value, event in exits:
                loop.evict(value, event)
            for value, event in enters:
                loop.add(value, event)
            batch.update_batch(enters, exits)
            assert loop.state_to_bytes() == batch.state_to_bytes()
            position += 37

    def test_minmax_late_arrivals(self):
        rng = random.Random(23)
        entries = [
            (float(rng.randrange(100)), Event(f"m{i}", rng.randrange(1, 50), {}))
            for i in range(200)
        ]
        loop = create_aggregator("max")
        batch = create_aggregator("max")
        for value, event in entries:
            loop.add(value, event)
        batch.update_batch(entries, ())
        assert loop.state_to_bytes() == batch.state_to_bytes()


def make_task_processor(chunk_max=32, **reservoir_overrides) -> TaskProcessor:
    stream = StreamDef(
        "tx", tuple((f.name, f.field_type.value) for f in FIELDS), ("cardId",), 1
    )
    processor = TaskProcessor(
        TopicPartition("tx.cardId", 0),
        stream,
        reservoir_config=ReservoirConfig(
            chunk_max_events=chunk_max, file_max_chunks=4, **reservoir_overrides
        ),
    )
    processor.add_metric(
        MetricDef(
            0,
            "SELECT sum(amount), count(*), avg(amount) FROM tx "
            "GROUP BY cardId OVER sliding 1 minutes",
            "tx", "tx.cardId", False,
        )
    )
    processor.add_metric(
        MetricDef(
            1,
            "SELECT max(amount), min(amount) FROM tx OVER sliding 30 seconds",
            "tx", "tx.cardId", False,
        )
    )
    return processor


def assert_task_processors_identical(a: TaskProcessor, b: TaskProcessor) -> None:
    assert a.next_offset == b.next_offset
    assert a.messages_processed == b.messages_processed
    assert a.replays_skipped == b.replays_skipped
    assert a.plan.iterator_positions() == b.plan.iterator_positions()
    assert_reservoirs_identical(a.reservoir, b.reservoir)


class TestTaskProcessorEquivalence:
    def run_both(self, records, seed=1, chunk_max=32, **reservoir_overrides):
        per_event = make_task_processor(chunk_max, **reservoir_overrides)
        batched = make_task_processor(chunk_max, **reservoir_overrides)
        replies_a = [per_event.process(offset, event) for offset, event in records]
        rng = random.Random(seed)
        replies_b = []
        index = 0
        while index < len(records):
            size = rng.randrange(1, 80)
            replies_b.extend(batched.process_batch(records[index:index + size]))
            index += size
        assert replies_a == replies_b
        assert_task_processors_identical(per_event, batched)
        return per_event, batched

    def test_clean_stream_with_chunk_rolls(self):
        records = list(enumerate(clean_events(2000)))
        per_event, _ = self.run_both(records, chunk_max=16)
        assert per_event.reservoir.stats.chunks_closed > 100

    def test_messy_stream_with_replays(self):
        records = list(enumerate(messy_events(2000, seed=7)))
        # Replays: repeat earlier offsets mid-stream (recovery overlap).
        records.insert(500, records[490])
        records.insert(1200, records[1100])
        self.run_both(records, seed=8)

    def test_timestamp_ties_batch_in_runs(self):
        # Tie semantics: member k's reply window holds members 0..k and
        # excludes k+1.. — replies must match the per-event interleaving
        # even though whole tie groups now ride the batched fast path.
        events = [
            Event(f"t{i}", 10 + i // 3, {"cardId": f"c{i % 2}", "amount": 1.0})
            for i in range(300)
        ]
        self.run_both(list(enumerate(events)))

    def test_timestamp_ties_stay_on_fast_path(self):
        # The point of the tie batching: an all-ties stream must not
        # fall back to per-event reservoir probing on every message.
        events = [
            Event(f"t{i}", 10 + i // 4, {"cardId": "c0", "amount": 1.0})
            for i in range(200)
        ]
        processor = make_task_processor()
        processor.process_batch(list(enumerate(events)))
        # Per-event fallback would route every tied message through
        # Reservoir.append; the batched path hands tie groups to
        # append_batch which resolves in-run ties internally.
        assert processor.reservoir.stats.appended == 200

    def test_timestamp_ties_on_sealed_chunk_boundary_rewrite(self):
        # A tie landing exactly where the previous chunk sealed follows
        # the out-of-order rewrite policy on both paths (chunk_max=4 with
        # grace 0 seals mid-tie-group constantly).
        events = [
            Event(f"t{i}", 5 + i // 6, {"cardId": "c0", "amount": float(i % 5)})
            for i in range(400)
        ]
        per_event, _ = self.run_both(list(enumerate(events)), chunk_max=4)
        assert per_event.reservoir.stats.ooo_rewritten > 0

    def test_timestamp_ties_on_sealed_chunk_boundary_discard(self):
        events = [
            Event(f"t{i}", 5 + i // 6, {"cardId": "c0", "amount": float(i % 5)})
            for i in range(400)
        ]
        per_event, _ = self.run_both(
            list(enumerate(events)), chunk_max=4,
            ooo_policy=OutOfOrderPolicy.DISCARD,
        )
        assert per_event.reservoir.stats.ooo_discarded > 0

    def test_timestamp_ties_with_grace_period(self):
        events = [
            Event(f"t{i}", 5 + i // 5, {"cardId": f"c{i % 3}", "amount": 2.0})
            for i in range(400)
        ]
        self.run_both(
            list(enumerate(events)), chunk_max=8, transition_grace_ms=16
        )

    def test_messy_stream_with_ties_and_replays(self):
        records = list(enumerate(messy_events(3000, seed=29)))
        records.insert(700, records[690])
        self.run_both(records, seed=30)

    def test_schema_evolution_mid_stream(self):
        per_event = make_task_processor()
        batched = make_task_processor()
        first = list(enumerate(clean_events(100)))
        evolved = StreamDef(
            "tx",
            tuple((f.name, f.field_type.value) for f in FIELDS)
            + (("country", "string"),),
            ("cardId",), 1,
        )
        second = [
            (100 + i,
             Event(f"s{i}", 2000 + i,
                   {"cardId": "c1", "amount": 2.0, "country": "PT"}))
            for i in range(100)
        ]
        replies_a = [per_event.process(o, e) for o, e in first]
        replies_b = batched.process_batch(first)
        per_event.evolve_schema(evolved)
        batched.evolve_schema(evolved)
        replies_a += [per_event.process(o, e) for o, e in second]
        replies_b += batched.process_batch(second)
        assert replies_a == replies_b
        assert_task_processors_identical(per_event, batched)


class TestClusterSendBatchEquivalence:
    def build_cluster(self) -> RailgunCluster:
        cluster = RailgunCluster(nodes=2, processor_units=2)
        cluster.create_stream(
            "tx", ["cardId"], partitions=2,
            schema={"cardId": "string", "amount": "float"},
        )
        cluster.create_metric(
            "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
            "OVER sliding 5 minutes"
        )
        cluster.run_until_quiet()
        return cluster

    def test_batch_replies_match_per_event_replies(self):
        events = [
            Event(f"b{i}", 1000 + i, {"cardId": f"c{i % 3}", "amount": float(i)})
            for i in range(30)
        ]
        one_by_one = self.build_cluster()
        batched = self.build_cluster()
        replies_a = [one_by_one.send("tx", event=event) for event in events]
        replies_b = batched.send_batch("tx", events, node_id="node-0")
        assert [r.results for r in replies_a] == [r.results for r in replies_b]
        assert [r.event for r in replies_a] == [r.event for r in replies_b]

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_process_mode_matches_per_event_replies(self, transport):
        # The process-parallel engine is held to the same bar as the
        # batched single-process path: byte-identical reply values and
        # aggregate stats, with ties, duplicates and all — over the
        # serde-framed pipe and the shared-memory ring transport alike.
        from repro.shard.parallel import ParallelCluster

        events = [
            Event(f"b{i}", 1000 + i // 2, {"cardId": f"c{i % 3}", "amount": float(i)})
            for i in range(40)
        ]
        events.append(events[7])  # duplicate id: replies read-only
        one_by_one = self.build_cluster()
        replies_a = [one_by_one.send("tx", event=event) for event in events]
        with ParallelCluster(workers=2, transport=transport) as process_mode:
            process_mode.create_stream(
                "tx", ["cardId"], partitions=2,
                schema={"cardId": "string", "amount": "float"},
            )
            process_mode.create_metric(
                "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                "OVER sliding 5 minutes"
            )
            replies_b = process_mode.send_batch("tx", events)
            processed = process_mode.total_messages_processed()
        assert [r.results for r in replies_a] == [r.results for r in replies_b]
        assert [r.event for r in replies_a] == [r.event for r in replies_b]
        assert processed == len(events) == one_by_one.total_messages_processed()

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_sharded_frontend_mode_matches_per_event_replies(self, transport):
        # Acceptance bar for the sharded-frontend topology: replies from
        # create_cluster("process", frontends=2) are byte-identical to
        # create_cluster("single"), including ties and duplicate ids —
        # per-partition log order equals client order restricted to the
        # partition, whichever frontend owns it.
        from repro.engine.cluster import create_cluster

        events = [
            Event(f"b{i}", 1000 + i // 2, {"cardId": f"c{i % 3}", "amount": float(i)})
            for i in range(40)
        ]
        events.append(events[7])  # duplicate id: replies read-only
        single = create_cluster("single", nodes=2, processor_units=2)
        single.create_stream(
            "tx", ["cardId"], partitions=2,
            schema={"cardId": "string", "amount": "float"},
        )
        single.create_metric(
            "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
            "OVER sliding 5 minutes"
        )
        single.run_until_quiet()
        replies_a = [single.send("tx", event=event) for event in events]
        with create_cluster(
            "process", workers=2, frontends=2, transport=transport
        ) as sharded:
            sharded.create_stream(
                "tx", ["cardId"], partitions=2,
                schema={"cardId": "string", "amount": "float"},
            )
            sharded.create_metric(
                "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                "OVER sliding 5 minutes"
            )
            replies_b = sharded.send_batch("tx", events)
            processed = sharded.total_messages_processed()
        assert [r.results for r in replies_a] == [r.results for r in replies_b]
        assert [r.event for r in replies_a] == [r.event for r in replies_b]
        assert processed == len(events) == single.total_messages_processed()

    def test_tcp_front_door_matches_per_event_replies(self):
        # The front door is held to the same bar as every other plane:
        # replies fetched over TCP through the asyncio server (framed
        # wire serde, admission control, reply fan-out and all) are
        # byte-identical to create_cluster("single") driving the same
        # events — including ties and a duplicate id.
        from repro.engine.cluster import create_cluster
        from repro.server.client import RailgunClient

        events = [
            Event(f"b{i}", 1000 + i // 2, {"cardId": f"c{i % 3}", "amount": float(i)})
            for i in range(40)
        ]
        events.append(events[7])  # duplicate id: replies read-only
        single = create_cluster("single", nodes=2, processor_units=2)
        single.create_stream(
            "tx", ["cardId"], partitions=2,
            schema={"cardId": "string", "amount": "float"},
        )
        single.create_metric(
            "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
            "OVER sliding 5 minutes"
        )
        single.run_until_quiet()
        replies_a = [single.send("tx", event=event) for event in events]
        served = create_cluster(
            "single", nodes=2, processor_units=2, serve="tcp://127.0.0.1:0"
        )
        try:
            host, port = served.server.address
            with RailgunClient(host, port) as client:
                client.create_stream(
                    "tx", ["cardId"], partitions=2,
                    schema={"cardId": "string", "amount": "float"},
                )
                client.create_metric(
                    "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                    "OVER sliding 5 minutes"
                )
                replies_b = client.send_batch("tx", events)
        finally:
            served.close()
        assert [r.results for r in replies_a] == [r.results for r in replies_b]
        assert [r.event for r in replies_a] == [r.event for r in replies_b]

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_durable_sharded_frontend_mode_matches_per_event_replies(
        self, tmp_path, transport
    ):
        # The durability acceptance bar: the sharded topology over a
        # disk-backed bus (frontends host durable segment logs, the
        # supervisor persists its checkpoint store) must still produce
        # byte-identical replies to create_cluster("single") — the
        # codec, the segment framing and the consistent-cut sync are
        # invisible to reply values.
        from repro.engine.cluster import create_cluster

        events = [
            Event(f"b{i}", 1000 + i // 2, {"cardId": f"c{i % 3}", "amount": float(i)})
            for i in range(40)
        ]
        events.append(events[7])  # duplicate id: replies read-only
        single = create_cluster("single", nodes=2, processor_units=2)
        single.create_stream(
            "tx", ["cardId"], partitions=2,
            schema={"cardId": "string", "amount": "float"},
        )
        single.create_metric(
            "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
            "OVER sliding 5 minutes"
        )
        single.run_until_quiet()
        replies_a = [single.send("tx", event=event) for event in events]
        with create_cluster(
            "process", workers=2, frontends=2,
            durable_dir=str(tmp_path / "cluster"),
            transport=transport,
        ) as durable:
            durable.create_stream(
                "tx", ["cardId"], partitions=2,
                schema={"cardId": "string", "amount": "float"},
            )
            durable.create_metric(
                "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                "OVER sliding 5 minutes"
            )
            replies_b = durable.send_batch("tx", events)
            processed = durable.total_messages_processed()
        assert [r.results for r in replies_a] == [r.results for r in replies_b]
        assert [r.event for r in replies_a] == [r.event for r in replies_b]
        assert processed == len(events) == single.total_messages_processed()

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_telemetry_toggle_never_changes_replies(self, transport, monkeypatch):
        # Telemetry is observation-only: the same event stream through
        # the process-parallel engine with $RAILGUN_TELEMETRY=0 and =1
        # (traces, snapshot piggybacks and all) yields byte-identical
        # reply values. The env var is resolved at registry
        # construction and inherited by worker processes, so each
        # cluster is built fresh under its toggle.
        from repro.shard.parallel import ParallelCluster

        events = [
            Event(f"b{i}", 1000 + i // 2, {"cardId": f"c{i % 3}", "amount": float(i)})
            for i in range(40)
        ]
        events.append(events[7])  # duplicate id: replies read-only
        replies = {}
        for toggle in ("0", "1"):
            monkeypatch.setenv("RAILGUN_TELEMETRY", toggle)
            with ParallelCluster(workers=2, transport=transport) as cluster:
                cluster.create_stream(
                    "tx", ["cardId"], partitions=2,
                    schema={"cardId": "string", "amount": "float"},
                )
                cluster.create_metric(
                    "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
                    "OVER sliding 5 minutes"
                )
                replies[toggle] = cluster.send_batch("tx", events)
                if toggle == "0":
                    assert cluster.telemetry()["histograms"] == {}
                else:
                    assert cluster.telemetry()["histograms"]
        off, on = replies["0"], replies["1"]
        assert [r.results for r in off] == [r.results for r in on]
        assert [r.event for r in off] == [r.event for r in on]
