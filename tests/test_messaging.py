"""Messaging layer tests: bus, producer/consumer, groups, rebalance."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.clock import ManualClock
from repro.common.errors import MessagingError
from repro.messaging import (
    Consumer,
    GroupCoordinator,
    MessageBus,
    Producer,
    TopicPartition,
    range_assignor,
    round_robin_assignor,
    sticky_assignor,
)


@pytest.fixture()
def world():
    clock = ManualClock()
    bus = MessageBus(brokers=3)
    bus.create_topic("t", partitions=4)
    coordinator = GroupCoordinator(bus, session_timeout_ms=5_000)
    return clock, bus, coordinator


class TestBus:
    def test_keyed_routing_is_sticky(self, world):
        _, bus, _ = world
        partitions = {bus.publish("t", "key-A", i, 0)[0] for i in range(20)}
        assert len(partitions) == 1

    def test_unkeyed_routing_round_robins(self, world):
        _, bus, _ = world
        partitions = {bus.publish("t", None, i, 0)[0] for i in range(8)}
        assert len(partitions) == 4

    def test_offsets_monotonic_per_partition(self, world):
        _, bus, _ = world
        tp, first = bus.publish("t", "k", "a", 0)
        _, second = bus.publish("t", "k", "b", 0)
        assert second == first + 1
        messages = bus.read(tp, first, 10)
        assert [m.value for m in messages] == ["a", "b"]

    def test_topic_growth_allowed_shrink_rejected(self, world):
        _, bus, _ = world
        bus.create_topic("t", partitions=6)
        assert bus.partitions_for("t") == 6
        with pytest.raises(MessagingError):
            bus.create_topic("t", partitions=2)

    def test_replication_capped_by_brokers(self, world):
        _, bus, _ = world
        with pytest.raises(MessagingError):
            bus.create_topic("big", partitions=1, replication=4)

    def test_unknown_topic(self, world):
        _, bus, _ = world
        with pytest.raises(MessagingError):
            bus.publish("nope", "k", 1, 0)

    def test_committed_offsets_per_group(self, world):
        _, bus, _ = world
        tp = TopicPartition("t", 0)
        bus.commit_offset("g1", tp, 5)
        assert bus.committed_offset("g1", tp) == 5
        assert bus.committed_offset("g2", tp) == 0

    def test_leaders_spread_over_brokers(self, world):
        _, bus, _ = world
        bus.create_topic("many", partitions=12)
        leaders = {bus.leader_of(tp) for tp in bus.topic_partitions("many")}
        assert len(leaders) > 1


class TestConsumerFlow:
    def test_poll_reads_assigned_partitions(self, world):
        clock, bus, coordinator = world
        producer = Producer(bus, clock)
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        for i in range(40):
            producer.send("t", f"k{i}", i)
        values = []
        while True:
            records = consumer.poll(16)
            if not records:
                break
            values.extend(r.value for r in records)
        assert sorted(values) == list(range(40))

    def test_seek_rewinds(self, world):
        clock, bus, coordinator = world
        producer = Producer(bus, clock)
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        tp, _ = producer.send("t", "k", "v")
        consumer.poll(10)
        consumer.seek(tp, 0)
        assert consumer.poll(10)[0].value == "v"

    def test_commit_and_lag(self, world):
        clock, bus, coordinator = world
        producer = Producer(bus, clock)
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        for i in range(10):
            producer.send("t", "k", i)
        assert consumer.lag() == 10
        consumer.poll(100)
        assert consumer.lag() == 0
        consumer.commit()
        # All messages went to key "k"'s partition; its committed offset
        # (group-scoped) must have advanced.
        assert any(
            bus.committed_offset("g", tp) > 0 for tp in consumer.assignment()
        )

    def test_double_subscribe_rejected(self, world):
        clock, bus, coordinator = world
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        with pytest.raises(MessagingError):
            consumer.subscribe(["t"])

    def test_close_leaves_group(self, world):
        clock, bus, coordinator = world
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        consumer.close()
        assert coordinator.members_of("g") == []


class TestGroupSemantics:
    def test_exactly_one_owner_per_partition(self, world):
        clock, bus, coordinator = world
        consumers = [Consumer(bus, coordinator, "g", f"m{i}", clock) for i in range(3)]
        for consumer in consumers:
            consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        owned = [tp for consumer in consumers for tp in consumer.assignment()]
        assert sorted(owned, key=str) == sorted(bus.topic_partitions("t"), key=str)
        assert len(owned) == len(set(owned))

    def test_more_members_than_partitions(self, world):
        clock, bus, coordinator = world
        consumers = [Consumer(bus, coordinator, "g", f"m{i}", clock) for i in range(6)]
        for consumer in consumers:
            consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        empty = [c for c in consumers if not c.assignment()]
        assert len(empty) == 2  # 4 partitions, 6 members

    def test_heartbeat_expiry_triggers_rebalance(self, world):
        clock, bus, coordinator = world
        alive = Consumer(bus, coordinator, "g", "alive", clock)
        dead = Consumer(bus, coordinator, "g", "dead", clock)
        alive.subscribe(["t"])
        dead.subscribe(["t"])
        coordinator.tick(clock.now())
        assert len(alive.assignment()) == 2
        clock.advance(6_000)
        alive.heartbeat()
        coordinator.tick(clock.now())
        assert len(alive.assignment()) == 4
        assert not dead.is_member()

    def test_generation_increments_on_rebalance(self, world):
        clock, bus, coordinator = world
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        first = coordinator.generation_of("g")
        other = Consumer(bus, coordinator, "g", "m2", clock)
        other.subscribe(["t"])
        coordinator.tick(clock.now())
        assert coordinator.generation_of("g") > first

    def test_fenced_consumer_polls_nothing(self, world):
        clock, bus, coordinator = world
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        clock.advance(10_000)
        coordinator.tick(clock.now())  # expired
        assert consumer.poll(10) == []

    def test_rejoin_after_expiry(self, world):
        clock, bus, coordinator = world
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        clock.advance(10_000)
        coordinator.tick(clock.now())
        consumer.rejoin(["t"])
        coordinator.tick(clock.now())
        assert len(consumer.assignment()) == 4

    def test_update_subscription(self, world):
        clock, bus, coordinator = world
        bus.create_topic("t2", partitions=2)
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"])
        coordinator.tick(clock.now())
        consumer.update_subscription(["t", "t2"])
        coordinator.tick(clock.now())
        topics = {tp.topic for tp in consumer.assignment()}
        assert topics == {"t", "t2"}

    def test_duplicate_join_rejected(self, world):
        clock, bus, coordinator = world
        coordinator.join("g", "m1", ["t"], clock.now())
        with pytest.raises(MessagingError):
            coordinator.join("g", "m1", ["t"], clock.now())

    def test_rebalance_listener_callbacks(self, world):
        clock, bus, coordinator = world

        class Listener:
            def __init__(self):
                self.revoked, self.assigned = [], []

            def on_partitions_revoked(self, partitions):
                self.revoked.extend(partitions)

            def on_partitions_assigned(self, partitions):
                self.assigned.extend(partitions)

        listener = Listener()
        consumer = Consumer(bus, coordinator, "g", "m1", clock)
        consumer.subscribe(["t"], listener=listener)
        coordinator.tick(clock.now())
        assert len(listener.assigned) == 4
        other = Consumer(bus, coordinator, "g", "m2", clock)
        other.subscribe(["t"])
        coordinator.tick(clock.now())
        assert len(listener.revoked) == 2


def _subscriptions(members, topics=("t",)):
    return {m: set(topics) for m in members}


class TestAssignors:
    def _partitions(self, count, topic="t"):
        return [TopicPartition(topic, i) for i in range(count)]

    @pytest.mark.parametrize(
        "assignor", [range_assignor, round_robin_assignor, sticky_assignor]
    )
    def test_complete_and_disjoint(self, assignor):
        partitions = self._partitions(7)
        assignment = assignor(_subscriptions(["a", "b", "c"]), partitions, {})
        owned = [tp for tps in assignment.values() for tp in tps]
        assert sorted(owned, key=str) == sorted(partitions, key=str)

    @pytest.mark.parametrize(
        "assignor", [range_assignor, round_robin_assignor, sticky_assignor]
    )
    def test_balanced(self, assignor):
        partitions = self._partitions(9)
        assignment = assignor(_subscriptions(["a", "b", "c"]), partitions, {})
        sizes = sorted(len(tps) for tps in assignment.values())
        assert sizes == [3, 3, 3]

    def test_sticky_preserves_ownership(self):
        partitions = self._partitions(6)
        first = sticky_assignor(_subscriptions(["a", "b", "c"]), partitions, {})
        second = sticky_assignor(_subscriptions(["a", "b", "c"]), partitions, first)
        assert first == second

    def test_sticky_moves_minimum_on_member_loss(self):
        partitions = self._partitions(6)
        first = sticky_assignor(_subscriptions(["a", "b", "c"]), partitions, {})
        survivors = _subscriptions(["a", "b"])
        second = sticky_assignor(survivors, partitions, first)
        for member in ("a", "b"):
            assert first[member] <= second[member]

    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50)
    def test_sticky_properties(self, partition_count, member_count):
        partitions = self._partitions(partition_count)
        members = [f"m{i}" for i in range(member_count)]
        assignment = sticky_assignor(_subscriptions(members), partitions, {})
        owned = [tp for tps in assignment.values() for tp in tps]
        assert len(owned) == partition_count
        assert len(set(owned)) == partition_count
        sizes = [len(tps) for tps in assignment.values()]
        assert max(sizes) - min(sizes) <= 1

    def test_set_assignment_rejects_duplicates(self, world):
        clock, bus, coordinator = world
        coordinator.join("g", "m1", ["t"], clock.now())
        coordinator.join("g", "m2", ["t"], clock.now())
        tp = TopicPartition("t", 0)
        with pytest.raises(MessagingError):
            coordinator.set_assignment("g", {"m1": {tp}, "m2": {tp}})

    def test_set_assignment_rejects_unknown_member(self, world):
        clock, bus, coordinator = world
        coordinator.join("g", "m1", ["t"], clock.now())
        with pytest.raises(MessagingError):
            coordinator.set_assignment("g", {"ghost": {TopicPartition("t", 0)}})
