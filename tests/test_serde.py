"""Binary serde primitives: round trips and corruption handling."""

import pytest
from hypothesis import given, strategies as st

from repro.common import serde
from repro.common.errors import SerdeError


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_roundtrip(self, value):
        buf = bytearray()
        serde.write_varint(buf, value)
        decoded, offset = serde.read_varint(bytes(buf), 0)
        assert decoded == value
        assert offset == len(buf)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        buf = bytearray()
        serde.write_varint(buf, value)
        assert serde.read_varint(bytes(buf), 0)[0] == value

    def test_small_values_encode_in_one_byte(self):
        buf = bytearray()
        serde.write_varint(buf, 100)
        assert len(buf) == 1

    def test_negative_rejected(self):
        with pytest.raises(SerdeError):
            serde.write_varint(bytearray(), -1)

    def test_truncated_raises(self):
        buf = bytearray()
        serde.write_varint(buf, 2**40)
        with pytest.raises(SerdeError):
            serde.read_varint(bytes(buf[:-1]), 0)

    def test_overlong_raises(self):
        with pytest.raises(SerdeError):
            serde.read_varint(b"\xff" * 11, 0)


class TestSignedVarint:
    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        buf = bytearray()
        serde.write_signed_varint(buf, value)
        assert serde.read_signed_varint(bytes(buf), 0)[0] == value

    def test_zigzag_mapping(self):
        assert serde.zigzag_encode(0) == 0
        assert serde.zigzag_encode(-1) == 1
        assert serde.zigzag_encode(1) == 2
        assert serde.zigzag_encode(-2) == 3

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_zigzag_inverse(self, value):
        assert serde.zigzag_decode(serde.zigzag_encode(value)) == value


class TestBytesAndStrings:
    @given(st.binary(max_size=200))
    def test_bytes_roundtrip(self, payload):
        buf = bytearray()
        serde.write_bytes(buf, payload)
        decoded, offset = serde.read_bytes(bytes(buf), 0)
        assert decoded == payload
        assert offset == len(buf)

    @given(st.text(max_size=100))
    def test_str_roundtrip(self, text):
        buf = bytearray()
        serde.write_str(buf, text)
        assert serde.read_str(bytes(buf), 0)[0] == text

    def test_truncated_bytes_raise(self):
        buf = bytearray()
        serde.write_bytes(buf, b"hello world")
        with pytest.raises(SerdeError):
            serde.read_bytes(bytes(buf[:-3]), 0)


class TestFixedWidth:
    @given(st.floats(allow_nan=False))
    def test_f64_roundtrip(self, value):
        buf = bytearray()
        serde.write_f64(buf, value)
        assert serde.read_f64(bytes(buf), 0)[0] == value

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_u32_roundtrip(self, value):
        buf = bytearray()
        serde.write_u32(buf, value)
        assert serde.read_u32(bytes(buf), 0)[0] == value

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_u64_roundtrip(self, value):
        buf = bytearray()
        serde.write_u64(buf, value)
        assert serde.read_u64(bytes(buf), 0)[0] == value

    def test_truncated_f64(self):
        with pytest.raises(SerdeError):
            serde.read_f64(b"\x00" * 7, 0)


_scalar_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**60), max_value=2**60),
    st.floats(allow_nan=False),
    st.text(max_size=60),
    st.binary(max_size=60),
)


class TestTaggedValues:
    @given(_scalar_values)
    def test_roundtrip_property(self, value):
        buf = bytearray()
        serde.write_value(buf, value)
        decoded, offset = serde.read_value(bytes(buf), 0)
        assert decoded == value
        assert type(decoded) is type(value)
        assert offset == len(buf)

    def test_bool_is_not_int(self):
        buf = bytearray()
        serde.write_value(buf, True)
        decoded, _ = serde.read_value(bytes(buf), 0)
        assert decoded is True

    def test_unsupported_type_rejected(self):
        with pytest.raises(SerdeError):
            serde.write_value(bytearray(), object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(SerdeError):
            serde.read_value(b"\x99", 0)

    def test_sequence_of_values(self):
        buf = bytearray()
        values = [None, 1, "two", 3.0, False, b"four"]
        for value in values:
            serde.write_value(buf, value)
        offset = 0
        decoded = []
        for _ in values:
            value, offset = serde.read_value(bytes(buf), offset)
            decoded.append(value)
        assert decoded == values


class TestCrc:
    def test_crc_detects_change(self):
        data = b"some payload"
        crc = serde.crc32_of(data)
        assert serde.crc32_of(b"some payloae") != crc

    def test_crc_stable(self):
        assert serde.crc32_of(b"x") == serde.crc32_of(b"x")
