"""Durable-bus recovery across the cluster topologies.

The acceptance bar for the durable segmented log bus:

- ``create_cluster("process", ..., durable_dir=...)`` keeps replies
  byte-identical (asserted in ``tests/test_batch_equivalence.py``);
- a **coordinator restart** (a fresh ``ParallelCluster`` over the same
  directory) recovers catalogue, logs and checkpoint store from disk
  with **bounded replay** — strictly fewer events than the log holds;
- segments wholly below every stored checkpoint offset are
  **verifiably deleted** from disk;
- a **frontend kill mid-append** (sharded topology) recovers by
  reopening the on-disk log: the journal acts as a write-ahead buffer,
  pruned once the frontend reports its durable cut, and every reply
  still completes correctly.
"""

from __future__ import annotations

import os

from repro.common.timesource import default_time_source
from repro.engine.cluster import create_cluster
from repro.engine.processor import ACTIVE_GROUP
from repro.events.event import Event
from repro.messaging.durable import DurableBus
from repro.shard import wire

STREAM_KW = dict(partitions=2, schema={"cardId": "string", "amount": "float"})
METRIC = (
    "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
    "OVER sliding 500 minutes"
)


def make_events(count, prefix="e", start_ts=1000):
    return [
        Event(f"{prefix}{i}", start_ts + i, {"cardId": f"c{i % 3}", "amount": float(i)})
        for i in range(count)
    ]


def event_task_lengths(bus):
    return {
        tp: bus.end_offset(tp)
        for topic in ("tx.cardId",)
        for tp in bus.topic_partitions(topic)
    }


class TestCoordinatorRestart:
    def test_reopen_recovers_with_bounded_replay(self, tmp_path):
        durable = str(tmp_path / "cluster")
        events = make_events(120)
        with create_cluster(
            "process", workers=2, durable_dir=durable, checkpoint_every=None
        ) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            metric = cluster.create_metric(METRIC)
            first = cluster.send_batch("tx", events[:100])
            cluster.checkpoint_now()
            # A tail past the checkpoint: the reopen must replay exactly it.
            cluster.send_batch("tx", events[100:])
            log_lengths = event_task_lengths(cluster.bus)
            checkpoint_offsets = dict(cluster.supervisor.checkpoints.offsets())
        total_logged = sum(log_lengths.values())
        assert total_logged == len(events)

        with create_cluster(
            "process", workers=2, durable_dir=durable, checkpoint_every=None
        ) as reopened:
            # Catalogue came back from the operations log — no DDL re-run.
            assert "tx" in reopened.catalog.streams
            assert reopened.catalog.metrics[metric].query_text == METRIC
            reopened.run_until_quiet()
            replayed = reopened.total_messages_processed()
            expected_tail = sum(
                log_lengths[tp] - checkpoint_offsets.get(tp, 0)
                for tp in log_lengths
            )
            # Bounded replay: exactly the uncheckpointed tail, strictly
            # fewer events than the log holds.
            assert replayed == expected_tail
            assert replayed < total_logged
            # Continuity: new events fold into the recovered state.
            reply = reopened.send(
                "tx", {"cardId": "c0", "amount": 1.0}, timestamp=5000
            )
            per_key = sum(1 for e in events if e.get("cardId") == "c0")
            assert reply.value(metric, "count(*)") == per_key + 1
            assert reply.value(metric, "sum(amount)") == (
                sum(e.get("amount") for e in events if e.get("cardId") == "c0")
                + 1.0
            )
            del first

    def test_watermarks_survive_restart(self, tmp_path):
        """Replies already delivered are suppressed through the reopen:
        the replayed tail must not re-answer them (no pending fan-in
        exists, but the committed watermark keeps workers silent too)."""
        durable = str(tmp_path / "cluster")
        with create_cluster(
            "process", workers=1, durable_dir=durable, checkpoint_every=None
        ) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            cluster.send_batch("tx", make_events(40))
            watermarks = dict(cluster._watermarks)
        with create_cluster(
            "process", workers=1, durable_dir=durable, checkpoint_every=None
        ) as reopened:
            for tp, offset in watermarks.items():
                assert reopened.bus.committed_offset(ACTIVE_GROUP, tp) == offset
                assert reopened._watermarks.get(tp, 0) == offset

    def test_checkpoint_store_persists_and_reloads(self, tmp_path):
        durable = str(tmp_path / "cluster")
        with create_cluster(
            "process", workers=2, durable_dir=durable, checkpoint_every=None
        ) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            cluster.send_batch("tx", make_events(60))
            offsets = cluster.checkpoint_now()
        ckpt_dir = os.path.join(durable, "checkpoints")
        names = [n for n in os.listdir(ckpt_dir) if n.endswith(".ckpt")]
        assert len(names) == len([o for o in offsets.values()])
        with create_cluster(
            "process", workers=2, durable_dir=durable, checkpoint_every=None
        ) as reopened:
            store = reopened.supervisor.checkpoints
            assert store.loaded == len(names)
            for tp, offset in offsets.items():
                assert store.offset(tp) == offset


class TestCheckpointTruncation:
    def test_segments_below_checkpoint_are_deleted(self, tmp_path):
        durable = str(tmp_path / "cluster")
        with create_cluster(
            "process", workers=2, durable_dir=durable, checkpoint_every=None
        ) as cluster:
            cluster.bus.config.segment_bytes = 2048  # observable rolls
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            for start in range(0, 900, 300):
                cluster.send_batch(
                    "tx", make_events(300, prefix=f"b{start}-", start_ts=start)
                )
            before = cluster.bus.disk_bytes()
            offsets = cluster.checkpoint_now()
            after = cluster.bus.disk_bytes()
            assert after < before
            spans = cluster.bus.segment_spans()
            for tp, offset in offsets.items():
                task_spans = spans[tp]
                # Something below the checkpoint was deleted...
                assert task_spans[0][0] > 0, (tp, task_spans)
                # ...and nothing at or above it: every surviving
                # completed segment reaches past the stored offset.
                assert all(end > offset for _, end in task_spans[:-1]), (
                    tp, offset, task_spans,
                )

    def test_periodic_cadence_truncates_without_explicit_checkpoint(self, tmp_path):
        durable = str(tmp_path / "cluster")
        with create_cluster(
            "process", workers=2, durable_dir=durable, checkpoint_every=128
        ) as cluster:
            cluster.bus.config.segment_bytes = 2048
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            for start in range(0, 600, 200):
                cluster.send_batch(
                    "tx", make_events(200, prefix=f"c{start}-", start_ts=start)
                )
            starts: list[int] = []

            def heads_truncated():
                cluster.run_until_quiet()
                spans = cluster.bus.segment_spans()
                starts[:] = [
                    spans[tp][0][0]
                    for tp in cluster.bus.topic_partitions("tx.cardId")
                ]
                return all(start > 0 for start in starts)

            default_time_source().wait_until(heads_truncated, timeout=30.0, poll=0.0)
            assert all(start > 0 for start in starts), starts


class TestShardedFrontendDurability:
    def build(self, durable, **kwargs):
        cluster = create_cluster(
            "process", workers=2, frontends=2, durable_dir=durable, **kwargs
        )
        cluster.create_stream("tx", ["cardId"], **STREAM_KW)
        cluster.create_metric(METRIC)
        return cluster

    def expected_results(self, events):
        single = create_cluster("single", nodes=1, processor_units=2)
        single.create_stream("tx", ["cardId"], **STREAM_KW)
        single.create_metric(METRIC)
        single.run_until_quiet()
        return [single.send("tx", event=e).results for e in events]

    def test_journal_is_pruned_once_frames_are_durable(self, tmp_path):
        events = make_events(60)
        with self.build(str(tmp_path / "router")) as cluster:
            cluster.send_batch("tx", events)
            for _ in range(200):
                cluster.pump()
                if all(
                    handle.durable_seq > 0
                    for handle in cluster._frontends.values()
                ):
                    break
            for handle in cluster._frontends.values():
                # WAL contract: every fsynced ingest frame left the
                # journal; only control frames (and any not-yet-reported
                # tail) remain.
                assert handle.durable_seq > 0
                ingest_left = [s for s, _ in handle.journal if s >= 0]
                assert all(s >= handle.durable_seq for s in ingest_left)
                assert handle.ingest_seq > len(ingest_left)

    def test_frontend_kill_recovers_by_reopening_log(self, tmp_path):
        events = make_events(80)
        expected = self.expected_results(events)
        with self.build(str(tmp_path / "router")) as cluster:
            replies = cluster.send_batch("tx", events[:50])
            victim = cluster.frontend_ids()[0]
            assert cluster._frontends[victim].durable_seq > 0
            cluster.kill_frontend(victim)
            replies += cluster.send_batch("tx", events[50:])
            assert cluster._frontends[victim].restarts == 1
        assert [r.results for r in replies] == expected

    def test_kill_mid_append_replays_write_ahead_journal(self, tmp_path):
        """Crash a frontend *between append and fsync*: the unsynced
        ingest frames replay from the router's journal into the
        reopened log, and every reply still completes.

        Replies settled before the crash and sent after it are
        byte-identical; the crash-window requests follow the documented
        in-flight contract — they complete (at-least-once) with
        read-only replies computed against post-recovery state, so
        their running counts are at least the crash-free values.
        """
        events = make_events(90)
        expected = self.expected_results(events)
        with self.build(str(tmp_path / "router")) as cluster:
            replies = cluster.send_batch("tx", events[:30])
            victim = cluster.frontend_ids()[0]
            handle = cluster._frontends[victim]
            synced_before = handle.durable_seq
            assert synced_before > 0
            # Ship a run of ingest frames and the crash order in one
            # socket write burst: the frontend appends them and dies at
            # the Crash before its durable sync runs.
            correlations = cluster._route_and_ship("tx", events[30:60])
            handle.conn.send_bytes(wire.encode(wire.Crash()))
            default_time_source().wait_until(
                lambda: (cluster.pump(), not cluster.pending)[1],
                timeout=30.0,
                poll=0.0,
            )
            assert not cluster.pending, "mid-append crash lost replies"
            window = [cluster.completed.pop(c) for c in correlations]
            assert handle.restarts == 1
            tail = cluster.send_batch("tx", events[60:])
        assert [r.results for r in replies] == expected[:30]
        assert [r.results for r in tail] == expected[60:]
        for got, want in zip(window, expected[30:60]):
            assert set(got.results) == set(want)
            for metric_id, values in want.items():
                assert got.results[metric_id]["count(*)"] >= values["count(*)"]

    def test_truncation_reaches_frontend_logs(self, tmp_path):
        durable = str(tmp_path / "router")
        with self.build(
            durable, checkpoint_every=64, durable_segment_bytes=2048
        ) as cluster:
            for start in range(0, 600, 200):
                cluster.send_batch(
                    "tx", make_events(200, prefix=f"f{start}-", start_ts=start)
                )
            def logs_truncated():
                cluster.run_until_quiet()
                cluster.drain()
                return self._frontend_logs_truncated(durable)

            assert default_time_source().wait_until(
                logs_truncated, timeout=30.0, poll=0.0
            )

    @staticmethod
    def _frontend_logs_truncated(durable):
        """True when every *owned* (non-empty) frontend log dropped its
        head segments. Each frontend's bus also hosts empty logs for the
        partitions it does not own — those never truncate and don't
        count."""
        starts = []
        frontends_root = os.path.join(durable, "frontends")
        for frontend_id in os.listdir(frontends_root):
            root = os.path.join(frontends_root, frontend_id)
            for entry in os.listdir(root):
                if not entry.startswith("tx.cardId-"):
                    continue
                log_dir = os.path.join(root, entry)
                segments = [
                    name
                    for name in os.listdir(log_dir)
                    if name.endswith(".log")
                ]
                if not any(
                    os.path.getsize(os.path.join(log_dir, name))
                    for name in segments
                ):
                    continue  # unowned partition: empty placeholder log
                starts.append(min(int(name[4:-4]) for name in segments))
        return bool(starts) and all(start > 0 for start in starts)


class TestSingleModeDurable:
    def test_logs_survive_and_truncate(self, tmp_path):
        durable = str(tmp_path / "single")
        cluster = create_cluster(
            "single", nodes=1, processor_units=1, durable_dir=durable
        )
        cluster.bus.config.segment_bytes = 1024
        cluster.create_stream("tx", ["cardId"], **STREAM_KW)
        metric = cluster.create_metric(METRIC)
        replies = cluster.send_batch("tx", make_events(300))
        assert replies[-1].value(metric, "count(*)") == 100
        cluster.truncate_logs_below_committed()
        cluster.close()
        # The logs (events + operations) are on disk and reopenable.
        bus = DurableBus(os.path.join(durable))
        assert bus.recovered
        ops = bus.topic_partitions("__operations")[0]
        assert bus.end_offset(ops) == 2  # create_stream + create_metric
        for tp in bus.topic_partitions("tx.cardId"):
            spans = bus.segment_spans()[tp]
            assert spans[0][0] > 0  # committed prefix truncated
            assert bus.end_offset(tp) > 0
