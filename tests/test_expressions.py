"""Filter expression language tests."""

import pytest

from repro.common.errors import ExpressionError, QueryError
from repro.events.event import Event
from repro.query.expressions import parse_expression


EVENT = Event(
    "e1",
    0,
    {"amount": 30.0, "channel": "ecom", "count": 3, "flag": True, "name": "bob"},
)


def _eval(text, event=EVENT):
    return parse_expression(text).evaluate(event)


class TestLiterals:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("42", 42),
            ("3.5", 3.5),
            ("'hello'", "hello"),
            ('"double"', "double"),
            ("true", True),
            ("false", False),
            ("null", None),
            ("TRUE", True),
        ],
    )
    def test_literal(self, text, expected):
        assert _eval(text) == expected

    def test_escaped_string(self):
        assert _eval(r"'it\'s'") == "it's"


class TestFieldAccess:
    def test_present_field(self):
        assert _eval("amount") == 30.0

    def test_absent_field_is_null(self):
        assert _eval("missing") is None

    def test_referenced_fields(self):
        expr = parse_expression("amount > 5 && channel == 'x' || other < 2")
        assert expr.referenced_fields() == {"amount", "channel", "other"}


class TestArithmetic:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2", 3),
            ("10 - 4", 6),
            ("3 * 4", 12),
            ("10 / 4", 2.5),
            ("10 % 3", 1),
            ("-amount", -30.0),
            ("2 + 3 * 4", 14),
            ("(2 + 3) * 4", 20),
            ("'a' + 'b'", "ab"),
        ],
    )
    def test_arithmetic(self, text, expected):
        assert _eval(text) == expected

    def test_division_by_zero_is_null(self):
        assert _eval("1 / 0") is None
        assert _eval("1 % 0") is None

    def test_null_propagates(self):
        assert _eval("missing + 1") is None
        assert _eval("missing * 2") is None
        assert _eval("-missing") is None

    def test_type_mismatch_is_null(self):
        assert _eval("'a' + 1") is None
        assert _eval("'a' * 2") is None


class TestComparisons:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("amount > 10", True),
            ("amount >= 30", True),
            ("amount < 10", False),
            ("amount <= 30", True),
            ("amount == 30", True),
            ("amount != 30", False),
            ("channel == 'ecom'", True),
            ("'a' < 'b'", True),
        ],
    )
    def test_comparison(self, text, expected):
        assert _eval(text) is expected

    def test_null_comparisons_false(self):
        assert _eval("missing > 5") is False
        assert _eval("missing < 5") is False
        assert _eval("5 > missing") is False

    def test_mixed_type_comparison_false(self):
        assert _eval("'a' > 5") is False

    def test_null_equality(self):
        assert _eval("missing == null") is True
        assert _eval("amount != null") is True


class TestLogical:
    def test_and_or(self):
        assert _eval("amount > 10 && channel == 'ecom'") is True
        assert _eval("amount > 100 || flag") is True
        assert _eval("amount > 100 && flag") is False

    def test_not(self):
        assert _eval("!flag") is False
        assert _eval("!(amount > 100)") is True

    def test_not_null_is_null(self):
        assert _eval("!missing") is None

    def test_short_circuit_and(self):
        # Right side would be null; && short-circuits on falsy left.
        assert _eval("false && missing > 1") is False

    def test_precedence_or_lower_than_and(self):
        assert _eval("true || false && false") is True


class TestTernary:
    def test_ternary(self):
        assert _eval("amount > 10 ? 'big' : 'small'") == "big"
        assert _eval("amount > 100 ? 'big' : 'small'") == "small"

    def test_nested_ternary(self):
        assert _eval("amount > 100 ? 1 : amount > 10 ? 2 : 3") == 2


class TestMatches:
    def test_only_true_passes(self):
        assert parse_expression("amount > 10").matches(EVENT)
        assert not parse_expression("missing").matches(EVENT)  # null
        assert not parse_expression("amount").matches(EVENT)  # 30.0, not True
        assert parse_expression("flag").matches(EVENT)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "1 +", "(1 + 2", "a ? b", "&& 1", "1 @ 2", "'unterminated"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(QueryError):
            parse_expression(bad)

    def test_trailing_input_rejected(self):
        with pytest.raises(ExpressionError):
            parse_expression("1 + 2 extra junk tokens")
