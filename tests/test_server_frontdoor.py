"""Front-door contract tests: the asyncio ingest server over real TCP.

The properties pinned here are the ones multi-client operation lives
on:

- **Per-key ordering with racing clients**: each client's events for a
  key are observed in that client's send order, and the cluster
  serializes all clients' events per key (the reply counts for a key
  form exactly ``{1..N}``).
- **Explicit shedding**: an over-quota batch is answered with
  ``ServerBusy`` naming every shed correlation — the ledger proves
  nothing was silently dropped — and the client can retry to
  completion.
- **Failure isolation**: a client that stops reading stalls only its
  own connection; other tenants' traffic flows.
- **Reconnect**: window state lives in the cluster, not the
  connection — a new connection resumes exactly where the old one
  left off.
- **Clean teardown**: a stopped server refuses new connections, fails
  in-flight requests with an error (not a hang), and leaves no server
  threads behind.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.common.errors import EngineError
from repro.common.timesource import default_time_source
from repro.engine.cluster import RailgunCluster, create_cluster
from repro.events.event import Event
from repro.server.admission import AdmissionController, TenantQuota
from repro.server.client import AsyncRailgunClient, RailgunClient, ServerBusyError
from repro.server.server import parse_url, serve_cluster
from repro.shard import wire
from repro.shard.router import ClusterRouter

STREAM_KW = dict(partitions=4, schema={"cardId": "string", "amount": "float"})
METRIC = "SELECT count(*) FROM tx GROUP BY cardId OVER sliding 5 minutes"


def make_single() -> RailgunCluster:
    cluster = RailgunCluster(nodes=1, processor_units=2)
    cluster.create_stream("tx", ["cardId"], **STREAM_KW)
    cluster.create_metric(METRIC)
    cluster.run_until_quiet()
    return cluster


def count_of(reply) -> int:
    (groups,) = reply.results.values()
    return groups["count(*)"]


def server_threads() -> list[str]:
    return [
        t.name
        for t in threading.enumerate()
        if t.name.startswith("railgun-server")
    ]


class TestParseUrl:
    def test_accepts_tcp_host_port(self):
        assert parse_url("tcp://127.0.0.1:8091") == ("127.0.0.1", 8091)
        assert parse_url("tcp://0.0.0.0:0") == ("0.0.0.0", 0)

    @pytest.mark.parametrize(
        "url", ["http://x:1", "tcp://:1", "tcp://host", "tcp://host:x"]
    )
    def test_rejects_malformed_urls(self, url):
        with pytest.raises(EngineError):
            parse_url(url)


class TestHandshake:
    def test_bad_token_is_refused(self):
        cluster = make_single()
        handle = serve_cluster(cluster, tokens={"acme": "s3cret"})
        host, port = handle.address
        try:
            with pytest.raises(EngineError, match="bad tenant or token"):
                RailgunClient(host, port, tenant="acme", token="wrong")
            with pytest.raises(EngineError, match="bad tenant or token"):
                RailgunClient(host, port, tenant="stranger")
            with RailgunClient(host, port, tenant="acme", token="s3cret") as ok:
                assert ok.session
        finally:
            handle.stop()
            cluster.close()

    def test_connection_cap_is_refused_not_queued(self):
        cluster = make_single()
        admission = AdmissionController(
            default_quota=TenantQuota(max_connections=1)
        )
        handle = serve_cluster(cluster, admission=admission)
        host, port = handle.address
        try:
            with RailgunClient(host, port) as first:
                assert first.session
                with pytest.raises(EngineError, match="tenant-connections"):
                    RailgunClient(host, port)
            # The slot frees on disconnect.
            with RailgunClient(host, port) as again:
                assert again.session
        finally:
            handle.stop()
            cluster.close()

    def test_hello_ack_carries_budget(self):
        cluster = make_single()
        handle = serve_cluster(cluster)
        host, port = handle.address
        try:
            with RailgunClient(host, port) as client:
                quota = handle.server.admission.quota_for("default")
                assert client.budget.p50_ms == quota.budget.p50_ms
                assert client.budget.p99_ms == quota.budget.p99_ms
        finally:
            handle.stop()
            cluster.close()


class TestConcurrentOrdering:
    def test_racing_clients_keep_per_key_order(self):
        # 4 async clients hammer the same 3 keys through a sharded
        # router backend. Per client+key the observed counts must be
        # strictly increasing (its own sends processed in order); per
        # key the union across clients must be exactly {1..N} (the
        # cluster serialized every racing event, dropping none and
        # double-counting none).
        cluster = ClusterRouter(workers=2, frontends=2)
        cluster.create_stream("tx", ["cardId"], **STREAM_KW)
        cluster.create_metric(METRIC)
        handle = serve_cluster(cluster)
        host, port = handle.address
        keys = ["k0", "k1", "k2"]
        per_client = 30

        async def one_client(n):
            async with AsyncRailgunClient(host, port, tenant=f"t{n}") as client:
                events = [
                    {"cardId": keys[i % len(keys)], "amount": float(i)}
                    for i in range(per_client)
                ]
                replies = await client.send_batch("tx", events, timestamp=1_000)
                return [
                    (keys[i % len(keys)], count_of(reply))
                    for i, reply in enumerate(replies)
                ]

        async def main():
            return await asyncio.gather(*(one_client(n) for n in range(4)))

        try:
            observations = asyncio.run(main())
        finally:
            handle.stop()
            cluster.close()

        for per_key_counts in observations:
            seen: dict[str, int] = {}
            for key, count in per_key_counts:
                assert count > seen.get(key, 0), "client's own order violated"
                seen[key] = count
        for key in keys:
            counts = sorted(
                count
                for client_obs in observations
                for observed_key, count in client_obs
                if observed_key == key
            )
            total = 4 * per_client // len(keys)
            assert counts == list(range(1, total + 1))


class TestQuotaShedding:
    def build(self):
        cluster = make_single()
        # Refill slow enough (100/s) that a scheduler hiccup between
        # two back-to-back batches cannot quietly refill the bucket
        # and admit what the test expects to see shed.
        admission = AdmissionController(
            default_quota=TenantQuota(events_per_sec=100.0, burst=30)
        )
        handle = serve_cluster(cluster, admission=admission)
        return cluster, handle

    def test_over_quota_raises_server_busy_never_drops(self):
        cluster, handle = self.build()
        host, port = handle.address
        try:
            with RailgunClient(host, port) as client:
                batch = [
                    {"cardId": "c0", "amount": 1.0} for _ in range(20)
                ]
                assert len(client.send_batch("tx", batch, timestamp=1_000)) == 20
                with pytest.raises(ServerBusyError) as excinfo:
                    client.send_batch("tx", batch, timestamp=1_000)
                assert excinfo.value.reason == "tenant-rate"
                assert excinfo.value.retry_after_ms >= 1
                assert len(excinfo.value.correlations) == 20
            tenant = handle.stats()["admission"]["tenants"]["default"]
            # The ledger accounts for every event attempted: nothing
            # vanished without either a reply or a ServerBusy.
            assert tenant["admitted_events"] == 20
            assert tenant["shed_events"] == 20
            assert handle.stats()["server"]["busy_frames"] == 1
        finally:
            handle.stop()
            cluster.close()

    def test_busy_retries_complete_the_batch(self):
        cluster, handle = self.build()
        host, port = handle.address
        try:
            with RailgunClient(host, port) as client:
                batch = [
                    {"cardId": "c0", "amount": 1.0} for _ in range(20)
                ]
                client.send_batch("tx", batch, timestamp=1_000)
                # Shed once, then admitted after honoring retry_after_ms
                # (the bucket refills at 100/s: ~100ms for 10 tokens).
                replies = client.send_batch(
                    "tx", batch, timestamp=1_000, busy_retries=10
                )
                assert len(replies) == 20
                assert count_of(replies[-1]) == 40
            tenant = handle.stats()["admission"]["tenants"]["default"]
            assert tenant["admitted_events"] == 40
            assert tenant["shed_events"] >= 20
        finally:
            handle.stop()
            cluster.close()


class TestSlowReader:
    def test_stalled_reader_does_not_block_other_tenants(self):
        cluster = make_single()
        handle = serve_cluster(cluster)
        host, port = handle.address
        try:
            # A raw socket that completes the handshake, ships a batch,
            # then never reads another byte.
            stalled = socket.create_connection((host, port))
            stalled.sendall(_frame(wire.encode(wire.Hello("sloth", ""))))
            _read_frame_sync(stalled)  # HelloAck
            events = [
                (i, Event(f"sloth-{i}", 1_000, {"cardId": "s", "amount": 1.0}), ())
                for i in range(50)
            ]
            stalled.sendall(_frame(wire.encode(wire.IngestBatch("tx", events))))
            # A well-behaved tenant on its own connection is unaffected.
            with RailgunClient(host, port, tenant="prompt") as client:
                replies = client.send_batch(
                    "tx",
                    [{"cardId": "p", "amount": 1.0} for _ in range(30)],
                    timestamp=1_000,
                )
                assert [count_of(r) for r in replies] == list(range(1, 31))
            default_time_source().wait_until(
                lambda: handle.stats()["admission"]["in_flight"] == 0,
                timeout=5.0,
                poll=0.01,
            )
            # The sloth's events completed server-side (its replies sit
            # in kernel buffers); the admission ledger is clean.
            assert handle.stats()["admission"]["in_flight"] == 0
            stalled.close()
        finally:
            handle.stop()
            cluster.close()


class TestReconnect:
    def test_new_connection_resumes_window_state(self):
        cluster = make_single()
        handle = serve_cluster(cluster)
        host, port = handle.address
        try:
            with RailgunClient(host, port) as first:
                replies = first.send_batch(
                    "tx",
                    [{"cardId": "r", "amount": 1.0} for _ in range(5)],
                    timestamp=1_000,
                )
                assert count_of(replies[-1]) == 5
            with RailgunClient(host, port) as second:
                replies = second.send_batch(
                    "tx",
                    [{"cardId": "r", "amount": 1.0} for _ in range(5)],
                    timestamp=1_010,
                )
                # The window picked up where the first connection left
                # off: counts 6..10, not 1..5.
                assert [count_of(r) for r in replies] == [6, 7, 8, 9, 10]
            # The server notices the client's close asynchronously; wait
            # for the ledger to drain instead of racing its reader task.
            default_time_source().wait_until(
                lambda: handle.stats()["admission"]["connections"] == 0,
                timeout=5.0,
                poll=0.01,
            )
            assert handle.stats()["admission"]["connections"] == 0
        finally:
            handle.stop()
            cluster.close()


class TestShutdown:
    def test_stop_refuses_new_connections_and_leaves_no_threads(self):
        cluster = make_single()
        handle = serve_cluster(cluster)
        host, port = handle.address
        with RailgunClient(host, port) as client:
            client.send("tx", {"cardId": "x", "amount": 1.0}, timestamp=1_000)
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0)
        assert server_threads() == []
        handle.stop()  # idempotent
        cluster.close()

    def test_abrupt_stop_fails_inflight_sends_without_hanging(self):
        cluster = make_single()
        handle = serve_cluster(cluster)
        host, port = handle.address
        client = RailgunClient(host, port)
        stopped = threading.Event()

        def kill_soon():
            default_time_source().sleep(0.05)
            handle.stop(drain=False)
            stopped.set()

        threading.Thread(target=kill_soon, daemon=True).start()
        try:
            for _ in range(200):
                client.send(
                    "tx", {"cardId": "x", "amount": 1.0}, timestamp=1_000
                )
        except EngineError:
            pass  # in-flight send failed loudly — the required outcome
        assert stopped.wait(timeout=10.0)
        client.close()
        assert server_threads() == []
        cluster.close()

    def test_served_cluster_close_stops_the_server(self):
        cluster = create_cluster("single", serve="tcp://127.0.0.1:0")
        host, port = cluster.server.address
        cluster.close()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2.0)
        assert server_threads() == []


class TestRouterServiceHooks:
    def test_close_with_replies_outstanding_drains_first(self):
        # Pin: close() must answer every submitted batch before tearing
        # the processes down — a front door stopping mid-traffic must
        # not strand its clients' correlations.
        cluster = ClusterRouter(workers=2, frontends=2)
        cluster.create_stream("tx", ["cardId"], **STREAM_KW)
        cluster.create_metric(METRIC)
        replies: dict[int, object] = {}
        events = [
            Event(f"d{i}", 1_000 + i, {"cardId": f"c{i % 3}", "amount": 1.0})
            for i in range(40)
        ]
        cluster.submit_batch("tx", events, lambda i, r: replies.__setitem__(i, r))
        # No service_step() calls: everything is still queued or in
        # flight when close() begins.
        cluster.close()
        assert sorted(replies) == list(range(40))
        assert all(r.results for r in replies.values())
        cluster.close()  # idempotent

    def test_submit_call_runs_ddl_on_service_thread(self):
        cluster = ClusterRouter(workers=2, frontends=2)
        done: list[object] = []
        cluster.submit_call(
            lambda: cluster.create_stream("tx", ["cardId"], **STREAM_KW),
            lambda result, error: done.append((result, error)),
        )
        default_time_source().wait_until(
            lambda: (cluster.service_step(), done)[1],
            timeout=10.0,
            poll=0.0,
        )
        assert done and done[0][1] is None
        cluster.close()


def _frame(payload: bytes) -> bytes:
    return struct.pack(">I", len(payload)) + payload


def _read_frame_sync(sock: socket.socket) -> bytes:
    header = b""
    while len(header) < 4:
        header += sock.recv(4 - len(header))
    (length,) = struct.unpack(">I", header)
    body = b""
    while len(body) < length:
        body += sock.recv(length - len(body))
    return body
