"""Task processor tests: processing, replay, checkpoint/restore."""

import pytest

from repro.engine.catalog import MetricDef, StreamDef, topic_name
from repro.engine.task import TaskProcessor
from repro.events.event import Event
from repro.messaging.log import TopicPartition

STREAM = StreamDef(
    "payments",
    (("cardId", "string"), ("amount", "float")),
    ("cardId",),
    partitions=2,
)
TP = TopicPartition(topic_name("payments", "cardId"), 0)
METRIC = MetricDef(
    0,
    "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes",
    "payments",
    topic_name("payments", "cardId"),
)


def _event(i, ts=None, card="c1", amount=1.0):
    return Event(f"e{i}", ts if ts is not None else (i + 1) * 1_000,
                 {"cardId": card, "amount": amount})


def _processor():
    processor = TaskProcessor(TP, STREAM)
    processor.add_metric(METRIC)
    return processor


class TestProcessing:
    def test_processes_in_offset_order(self):
        processor = _processor()
        for i in range(5):
            replies = processor.process(i, _event(i))
        assert replies[0]["count(*)"] == 5
        assert processor.next_offset == 5

    def test_replay_skips_mutation_but_replies(self):
        processor = _processor()
        processor.process(0, _event(0))
        processor.process(1, _event(1))
        replayed = processor.process(0, _event(0))
        assert replayed is not None
        assert replayed[0]["count(*)"] == 2  # state unchanged
        assert processor.replays_skipped == 1

    def test_duplicate_event_id_not_double_counted(self):
        processor = _processor()
        processor.process(0, _event(0))
        replies = processor.process(1, _event(0))  # same event id, new offset
        assert replies[0]["count(*)"] == 1

    def test_add_metric_idempotent(self):
        processor = _processor()
        processor.add_metric(METRIC)
        assert processor.metric_ids() == (0,)

    def test_remove_metric(self):
        processor = _processor()
        processor.remove_metric(0)
        assert processor.metric_ids() == ()
        replies = processor.process(0, _event(0))
        assert replies == {}

    def test_schema_evolution(self):
        processor = _processor()
        processor.process(0, _event(0))
        evolved = StreamDef(
            "payments",
            (("cardId", "string"), ("amount", "float"), ("extra", "int")),
            ("cardId",),
            2,
        )
        processor.evolve_schema(evolved)
        replies = processor.process(
            1, Event("new", 2_000, {"cardId": "c1", "amount": 1.0, "extra": 7})
        )
        assert replies[0]["count(*)"] == 2


class TestCheckpointRestore:
    def test_restore_continues_identically(self):
        original = _processor()
        twin = _processor()
        for i in range(30):
            original.process(i, _event(i))
            twin.process(i, _event(i))
        checkpoint = original.checkpoint()
        restored = TaskProcessor.restore(checkpoint, STREAM, [METRIC])
        assert restored.next_offset == 30
        for i in range(30, 45):
            expected = twin.process(i, _event(i))
            got = restored.process(i, _event(i))
            assert got == expected

    def test_restore_preserves_window_expiry(self):
        original = _processor()
        offset = 0
        for i in range(10):
            original.process(offset, _event(i, ts=(i + 1) * 10_000))
            offset += 1
        checkpoint = original.checkpoint()
        restored = TaskProcessor.restore(checkpoint, STREAM, [METRIC])
        # 6 minutes later everything has expired.
        replies = restored.process(offset, _event(99, ts=460_000))
        assert replies[0]["count(*)"] == 1

    def test_checkpoint_data_bytes_delta(self):
        from repro.reservoir.reservoir import ReservoirConfig

        processor = TaskProcessor(
            TP, STREAM, reservoir_config=ReservoirConfig(chunk_max_events=8)
        )
        processor.add_metric(METRIC)
        for i in range(50):
            processor.process(i, _event(i))
        checkpoint = processor.checkpoint()
        full = checkpoint.data_bytes()
        delta = checkpoint.data_bytes(exclude_files=set(checkpoint.reservoir_files))
        assert 0 < delta < full

    def test_restore_with_local_files_delta(self):
        processor = _processor()
        for i in range(50):
            processor.process(i, _event(i))
        checkpoint = processor.checkpoint()
        # Receiver already has all sealed reservoir files.
        local = {
            name: data
            for name, data in checkpoint.reservoir_files.items()
            if name in checkpoint.reservoir_sealed
        }
        checkpoint.reservoir_files = {
            name: data
            for name, data in checkpoint.reservoir_files.items()
            if name not in checkpoint.reservoir_sealed
        }
        restored = TaskProcessor.restore(
            checkpoint, STREAM, [METRIC], local_files=local
        )
        replies = restored.process(50, _event(50))
        assert replies[0]["count(*)"] >= 1

    def test_restore_missing_files_raises(self):
        from repro.common.errors import CheckpointError

        processor = TaskProcessor(TP, STREAM)
        processor.add_metric(METRIC)
        # Force at least one sealed file.
        from repro.reservoir.reservoir import ReservoirConfig

        small = TaskProcessor(
            TP, STREAM,
            reservoir_config=ReservoirConfig(chunk_max_events=2, file_max_chunks=1),
        )
        small.add_metric(METRIC)
        for i in range(10):
            small.process(i, _event(i))
        checkpoint = small.checkpoint()
        checkpoint.reservoir_files = {}
        with pytest.raises(CheckpointError):
            TaskProcessor.restore(checkpoint, STREAM, [METRIC])

    def test_restored_metrics_use_catalog_ids(self):
        processor = _processor()
        processor.process(0, _event(0))
        checkpoint = processor.checkpoint()
        second_metric = MetricDef(
            7,
            "SELECT max(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes",
            "payments",
            topic_name("payments", "cardId"),
        )
        restored = TaskProcessor.restore(
            checkpoint, STREAM, [METRIC, second_metric]
        )
        replies = restored.process(1, _event(1, amount=9.0))
        assert replies[0]["count(*)"] == 2
        assert replies[7]["max(amount)"] == 9.0
