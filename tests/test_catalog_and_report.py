"""Catalog (DDL log) and bench-report rendering tests."""

import pytest

from repro.bench.report import ascii_chart, check_expectations, format_percentile_table, format_table
from repro.common.errors import EngineError, QueryError
from repro.engine.catalog import (
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    GLOBAL_PARTITIONER,
    MetricDef,
    StreamDef,
    topic_name,
)
from repro.query import parse_query


def _stream():
    return StreamDef(
        "payments",
        (("cardId", "string"), ("merchantId", "string"), ("amount", "float")),
        ("cardId",),
        partitions=4,
    )


class TestCatalog:
    def test_create_stream(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        assert "payments" in catalog.streams
        assert catalog.streams["payments"].topics() == ["payments.cardId"]

    def test_create_stream_idempotent(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        catalog.apply(CreateStreamOp(_stream()))
        assert len(catalog.streams) == 1

    def test_metric_lifecycle(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        metric = MetricDef(0, "SELECT count(*) FROM payments GROUP BY cardId OVER infinite",
                           "payments", "payments.cardId")
        catalog.apply(CreateMetricOp(metric))
        assert catalog.metrics_for_topic("payments.cardId") == [metric]
        assert catalog.next_metric_id == 1
        catalog.apply(DeleteMetricOp(0))
        assert catalog.metrics == {}

    def test_evolve_schema_appends(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        catalog.apply(EvolveSchemaOp("payments", (("extra", "int"),)))
        fields = [name for name, _ in catalog.streams["payments"].fields]
        assert fields[-1] == "extra"

    def test_add_partitioner(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        catalog.apply(AddPartitionerOp("payments", "merchantId"))
        assert "payments.merchantId" in catalog.streams["payments"].topics()
        # idempotent
        catalog.apply(AddPartitionerOp("payments", "merchantId"))
        assert len(catalog.streams["payments"].partitioners) == 2

    def test_unknown_op_rejected(self):
        with pytest.raises(EngineError):
            Catalog().apply("not an op")

    def test_route_metric_picks_subset_partitioner(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        query = parse_query(
            "SELECT count(*) FROM payments GROUP BY cardId, merchantId OVER infinite"
        )
        assert catalog.route_metric(query) == "payments.cardId"

    def test_route_metric_no_matching_partitioner(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        query = parse_query(
            "SELECT count(*) FROM payments GROUP BY merchantId OVER infinite"
        )
        with pytest.raises(QueryError):
            catalog.route_metric(query)

    def test_route_global_metric(self):
        catalog = Catalog()
        stream = StreamDef(
            "s", (("a", "int"),), ("a", GLOBAL_PARTITIONER), partitions=4
        )
        catalog.apply(CreateStreamOp(stream))
        query = parse_query("SELECT count(*) FROM s OVER infinite")
        assert catalog.route_metric(query) == topic_name("s", GLOBAL_PARTITIONER)

    def test_stream_of_topic(self):
        catalog = Catalog()
        catalog.apply(CreateStreamOp(_stream()))
        assert catalog.stream_of_topic("payments.cardId").name == "payments"
        assert catalog.stream_of_topic("__operations") is None

    def test_ops_replay_converges(self):
        # Two catalogs applying the same op sequence agree.
        ops = [
            CreateStreamOp(_stream()),
            CreateMetricOp(MetricDef(0, "SELECT count(*) FROM payments GROUP BY cardId OVER infinite",
                                     "payments", "payments.cardId")),
            EvolveSchemaOp("payments", (("x", "int"),)),
            DeleteMetricOp(0),
        ]
        a, b = Catalog(), Catalog()
        for op in ops:
            a.apply(op)
            b.apply(op)
        assert a.streams == b.streams
        assert a.metrics == b.metrics


class TestReportRendering:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 123456.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "123,456" in text

    def test_percentile_table(self):
        text = format_percentile_table(
            {"railgun": {50.0: 1.0, 99.9: 100.0}}, [50.0, 99.9]
        )
        assert "p50" in text
        assert "p99.9" in text
        assert "railgun" in text

    def test_ascii_chart_renders_series(self):
        chart = ascii_chart(
            {"a": [1.0, 10.0, 100.0], "b": [2.0, 20.0, 200.0]},
            ["x1", "x2", "x3"],
        )
        assert "A" in chart or "R" in chart
        assert "log scale" in chart

    def test_ascii_chart_handles_empty(self):
        assert ascii_chart({"a": []}, []) == "(no data)"

    def test_ascii_chart_skips_invalid_points(self):
        chart = ascii_chart({"a": [1.0, float("nan"), None, 5.0]}, ["1", "2", "3", "4"])
        assert "log scale" in chart

    def test_check_expectations_format(self):
        lines = check_expectations([("good", True), ("bad", False)])
        assert lines[0].startswith("  [PASS]")
        assert lines[1].startswith("  [FAIL]")
