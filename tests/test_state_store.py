"""Metric state store tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.events.event import Event
from repro.state import MetricStateStore
from repro.state.store import decode_group_key, encode_group_key


def _event(i):
    return Event(f"e{i}", i, {})


class TestGroupKeys:
    @given(
        st.lists(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**40), max_value=2**40),
                st.floats(allow_nan=False),
                st.text(max_size=30),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip(self, values):
        encoded = encode_group_key(values)
        assert decode_group_key(encoded) == tuple(values)

    def test_distinct_keys_distinct_bytes(self):
        assert encode_group_key(("a", "b")) != encode_group_key(("ab",))
        assert encode_group_key((1,)) != encode_group_key(("1",))

    def test_empty_key(self):
        assert decode_group_key(encode_group_key(())) == ()


class TestApplyAndPeek:
    def test_apply_accumulates(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        result = store.apply(0, 0, "sum", key, [(5.0, _event(0))], [])
        assert result == 5.0
        result = store.apply(0, 0, "sum", key, [(3.0, _event(1))], [(5.0, _event(0))])
        assert result == 3.0

    def test_peek_does_not_mutate(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "count", key, [(True, _event(0))], [])
        assert store.peek(0, 0, "count", key) == 1
        assert store.peek(0, 0, "count", key) == 1

    def test_namespaces_isolated(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "count", key, [(True, _event(0))], [])
        store.apply(1, 0, "count", key, [(True, _event(1))], [(True, _event(0))])
        assert store.peek(0, 0, "count", key) == 1
        assert store.peek(1, 0, "count", key) == 0

    def test_agg_index_isolated(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "sum", key, [(1.0, _event(0))], [])
        store.apply(0, 1, "count", key, [(True, _event(0))], [])
        assert store.peek(0, 0, "sum", key) == 1.0
        assert store.peek(0, 1, "count", key) == 1

    def test_access_counters(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "sum", key, [(1.0, _event(0))], [])
        assert store.key_reads == 1
        assert store.key_writes == 1


class TestCountDistinctColumnFamily:
    def test_distinct_counters_in_aux_cf(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "countDistinct", key, [("x", _event(0)), ("y", _event(1))], [])
        assert store.peek(0, 0, "countDistinct", key) == 2
        store.apply(0, 0, "countDistinct", key, [], [("x", _event(0))])
        assert store.peek(0, 0, "countDistinct", key) == 1

    def test_distinct_isolated_per_entity(self):
        store = MetricStateStore()
        a = encode_group_key(("a",))
        b = encode_group_key(("b",))
        store.apply(0, 0, "countDistinct", a, [("x", _event(0))], [])
        store.apply(0, 0, "countDistinct", b, [("x", _event(1))], [])
        store.apply(0, 0, "countDistinct", a, [], [("x", _event(0))])
        assert store.peek(0, 0, "countDistinct", a) == 0
        assert store.peek(0, 0, "countDistinct", b) == 1


class TestCheckpointRestore:
    def test_restore_preserves_all_state(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "sum", key, [(5.0, _event(0))], [])
        store.apply(0, 1, "countDistinct", key, [("m1", _event(0))], [])
        checkpoint = store.checkpoint()
        files = store.export_checkpoint(checkpoint)
        restored = MetricStateStore.restore(checkpoint, files)
        assert restored.peek(0, 0, "sum", key) == 5.0
        assert restored.peek(0, 1, "countDistinct", key) == 1

    def test_restored_store_continues(self):
        store = MetricStateStore()
        key = encode_group_key(("c1",))
        store.apply(0, 0, "count", key, [(True, _event(0))], [])
        checkpoint = store.checkpoint()
        restored = MetricStateStore.restore(
            checkpoint, store.export_checkpoint(checkpoint)
        )
        result = restored.apply(0, 0, "count", key, [(True, _event(1))], [])
        assert result == 2
