"""Event reservoir tests: append path, iterators, OOO, checkpointing."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.storage import MemoryStorage
from repro.events import Event, FieldType, Schema, SchemaField, SchemaRegistry
from repro.reservoir import (
    AppendResult,
    EventReservoir,
    OutOfOrderPolicy,
    ReservoirConfig,
)
from repro.reservoir.reservoir import AppendStatus


def _registry():
    registry = SchemaRegistry()
    registry.register(Schema([SchemaField("v", FieldType.INT)]))
    return registry


def _reservoir(**kwargs):
    defaults = dict(chunk_max_events=8, file_max_chunks=4, cache_capacity=4)
    defaults.update(kwargs)
    return EventReservoir(_registry(), config=ReservoirConfig(**defaults))


def _event(i, ts=None):
    return Event(f"e{i}", ts if ts is not None else i * 100, {"v": i})


class TestAppendPath:
    def test_append_stores(self):
        reservoir = _reservoir()
        result = reservoir.append(_event(0))
        assert result.status is AppendStatus.APPENDED
        assert result.stored
        assert reservoir.total_events == 1

    def test_chunks_close_at_size(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(9):
            reservoir.append(_event(i))
        assert reservoir.stats.chunks_closed == 2
        assert reservoir.total_events == 9

    def test_files_seal_at_chunk_count(self):
        reservoir = _reservoir(chunk_max_events=2, file_max_chunks=2)
        for i in range(12):
            reservoir.append(_event(i))
        assert reservoir.stats.files_sealed >= 2
        sealed = [n for n in reservoir.storage.list() if reservoir.storage.is_sealed(n)]
        assert len(sealed) == reservoir.stats.files_sealed

    def test_dedup_in_memory_window(self):
        reservoir = _reservoir(chunk_max_events=100)
        reservoir.append(_event(0))
        duplicate = reservoir.append(_event(0))
        assert duplicate.status is AppendStatus.DUPLICATE
        assert reservoir.stats.duplicates == 1
        assert reservoir.total_events == 1

    def test_dedup_forgets_persisted_chunks(self):
        # Matches the paper: dedup only covers chunks still in memory.
        reservoir = _reservoir(chunk_max_events=2)
        reservoir.append(_event(0))
        reservoir.append(_event(1))  # closes the chunk
        result = reservoir.append(Event("e0", 500, {"v": 0}))
        assert result.status is not AppendStatus.DUPLICATE

    def test_schema_validation_applies(self):
        from repro.common.errors import SchemaError

        reservoir = _reservoir()
        with pytest.raises(SchemaError):
            reservoir.append(Event("bad", 1, {"unknown": 1}))

    def test_max_seen_ts(self):
        reservoir = _reservoir()
        reservoir.append(_event(0, ts=50))
        reservoir.append(_event(1, ts=20))
        assert reservoir.max_seen_ts == 50


class TestOutOfOrder:
    def test_discard_policy(self):
        reservoir = _reservoir(chunk_max_events=2, ooo_policy=OutOfOrderPolicy.DISCARD)
        for i in range(4):
            reservoir.append(_event(i))
        late = reservoir.append(Event("late", 0, {"v": 99}))
        assert late.status is AppendStatus.DISCARDED
        assert not late.stored
        assert reservoir.stats.ooo_discarded == 1

    def test_rewrite_policy(self):
        reservoir = _reservoir(chunk_max_events=2, ooo_policy=OutOfOrderPolicy.REWRITE)
        for i in range(4):
            reservoir.append(_event(i))
        late = reservoir.append(Event("late", 0, {"v": 99}))
        assert late.status is AppendStatus.REWRITTEN
        assert late.stored
        horizon = reservoir.index.get(len(reservoir.index) - 1).last_ts
        assert late.event.timestamp > horizon

    def test_late_within_open_chunk_inserted(self):
        reservoir = _reservoir(chunk_max_events=100)
        reservoir.append(_event(0, ts=100))
        reservoir.append(_event(1, ts=300))
        late = reservoir.append(Event("late", 200, {"v": 9}))
        assert late.status is AppendStatus.APPENDED
        assert reservoir.stats.ooo_inserts == 1
        events = reservoir.read_range(-1, 1000)
        assert [e.timestamp for e in events] == [100, 200, 300]

    def test_transition_grace_accepts_late_events(self):
        reservoir = _reservoir(chunk_max_events=2, transition_grace_ms=1_000)
        reservoir.append(_event(0, ts=100))
        reservoir.append(_event(1, ts=200))  # chunk -> transition
        late = reservoir.append(Event("late", 150, {"v": 9}))
        assert late.status is AppendStatus.APPENDED
        assert late.event.timestamp == 150  # not rewritten
        assert reservoir.memory_chunk_count == 2  # transition + open

    def test_transition_expires_after_grace(self):
        reservoir = _reservoir(chunk_max_events=2, transition_grace_ms=1_000)
        reservoir.append(_event(0, ts=100))
        reservoir.append(_event(1, ts=200))
        reservoir.append(_event(2, ts=1_500))  # beyond grace from close
        assert reservoir.stats.chunks_closed == 1
        assert reservoir.memory_chunk_count == 1

    def test_rewrite_when_no_memory_events(self):
        reservoir = _reservoir(chunk_max_events=2)
        reservoir.append(_event(0, ts=100))
        reservoir.append(_event(1, ts=200))  # persists; open chunk empty
        late = reservoir.append(Event("late", 50, {"v": 9}))
        assert late.status is AppendStatus.REWRITTEN
        assert late.event.timestamp == 201


class TestIterators:
    def test_head_tail_window_contents(self):
        reservoir = _reservoir(chunk_max_events=4)
        head = reservoir.new_iterator(0, "head")
        tail = reservoir.new_iterator(500, "tail")
        window = []
        for i in range(30):
            event = _event(i)
            reservoir.append(event)
            window.extend(head.advance_upto(event.timestamp))
            for expired in tail.advance_upto(event.timestamp - 500):
                window.remove(expired)
            expected = [
                e for e in (_event(j) for j in range(i + 1))
                if e.timestamp > event.timestamp - 500
            ]
            assert [e.event_id for e in window] == [e.event_id for e in expected]

    def test_iterator_emits_each_event_once(self):
        reservoir = _reservoir(chunk_max_events=4)
        iterator = reservoir.new_iterator()
        seen = []
        for i in range(20):
            reservoir.append(_event(i))
            seen.extend(iterator.advance_upto(10_000))
        assert [e.event_id for e in seen] == [f"e{i}" for i in range(20)]

    def test_missed_queue_for_late_inserts(self):
        reservoir = _reservoir(chunk_max_events=100)
        iterator = reservoir.new_iterator()
        reservoir.append(_event(0, ts=100))
        reservoir.append(_event(1, ts=300))
        assert len(iterator.advance_upto(300)) == 2
        # Late insert behind the cursor -> missed queue.
        reservoir.append(Event("late", 200, {"v": 9}))
        batch = iterator.advance_upto(300)
        assert [e.event_id for e in batch] == ["late"]

    def test_iterator_positions_stable_across_chunk_close(self):
        reservoir = _reservoir(chunk_max_events=4)
        iterator = reservoir.new_iterator()
        for i in range(4):
            reservoir.append(_event(i))
        first = iterator.advance_upto(10_000)
        for i in range(4, 8):
            reservoir.append(_event(i))
        second = iterator.advance_upto(10_000)
        assert len(first) + len(second) == 8

    def test_release_iterator(self):
        reservoir = _reservoir()
        iterator = reservoir.new_iterator()
        assert reservoir.iterator_count == 1
        reservoir.release_iterator(iterator)
        assert reservoir.iterator_count == 0
        reservoir.release_iterator(iterator)  # idempotent

    def test_new_iterator_at_history(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(20):
            reservoir.append(_event(i))
        iterator = reservoir.new_iterator_at(950)
        batch = iterator.advance_upto(10_000)
        assert [e.timestamp for e in batch] == [i * 100 for i in range(10, 20)]

    def test_prefetch_hides_demand_misses(self):
        reservoir = _reservoir(chunk_max_events=4, cache_capacity=3)
        tail = reservoir.new_iterator(2_000, "tail")
        for i in range(100):
            event = _event(i)
            reservoir.append(event)
            tail.advance_upto(event.timestamp - 2_000)
        # Sequential tails should be served by cache + prefetch.
        assert reservoir.cache.stats.demand_misses <= 2

    @given(st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_property_every_stored_event_emitted_once(self, raw_timestamps):
        reservoir = _reservoir(chunk_max_events=5, transition_grace_ms=300)
        iterator = reservoir.new_iterator()
        stored_ids = []
        emitted = []
        for index, ts in enumerate(raw_timestamps):
            result = reservoir.append(Event(f"e{index}", ts, {"v": index}))
            if result.stored:
                stored_ids.append(f"e{index}")
            emitted.extend(iterator.advance_upto(10**9))
        emitted.extend(iterator.advance_upto(10**9))
        assert sorted(e.event_id for e in emitted) == sorted(stored_ids)


class TestRandomReads:
    def test_read_range_bounds(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(20):
            reservoir.append(_event(i))
        events = reservoir.read_range(450, 900)
        assert [e.timestamp for e in events] == [500, 600, 700, 800, 900]

    def test_read_range_exclusive_start(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(10):
            reservoir.append(_event(i))
        assert [e.timestamp for e in reservoir.read_range(500, 700)] == [600, 700]

    def test_read_range_empty(self):
        reservoir = _reservoir()
        assert reservoir.read_range(0, 100) == []

    def test_position_after(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(20):
            reservoir.append(_event(i))
        chunk_id, index = reservoir.position_after(550)
        events = reservoir.chunk_events_for_iterator(chunk_id)
        assert events[index].timestamp == 600

    def test_position_after_everything(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(5):
            reservoir.append(_event(i))
        chunk_id, index = reservoir.position_after(10_000)
        events = reservoir.chunk_events_for_iterator(chunk_id)
        assert index == len(events)


class TestCheckpointRestore:
    def _roundtrip(self, reservoir):
        metadata = reservoir.checkpoint_metadata()
        storage = MemoryStorage()
        for name in reservoir.storage.list():
            storage.create(name)
            storage.append(name, reservoir.storage.read_all(name))
            if reservoir.storage.is_sealed(name):
                storage.seal(name)
        return EventReservoir.restore(metadata, storage, reservoir.config)

    def test_restore_preserves_events(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(23):
            reservoir.append(_event(i))
        restored = self._roundtrip(reservoir)
        assert restored.total_events == reservoir.total_events
        original = [e.event_id for e in reservoir.read_range(-1, 10**9)]
        recovered = [e.event_id for e in restored.read_range(-1, 10**9)]
        assert original == recovered

    def test_restore_preserves_dedup(self):
        reservoir = _reservoir(chunk_max_events=100)
        reservoir.append(_event(0))
        restored = self._roundtrip(reservoir)
        assert restored.append(_event(0)).status is AppendStatus.DUPLICATE

    def test_restore_preserves_transitions(self):
        reservoir = _reservoir(chunk_max_events=2, transition_grace_ms=10_000)
        for i in range(5):
            reservoir.append(_event(i))
        assert reservoir.memory_chunk_count > 1
        restored = self._roundtrip(reservoir)
        assert restored.memory_chunk_count == reservoir.memory_chunk_count
        assert restored.total_events == reservoir.total_events

    def test_restore_continues_appending(self):
        reservoir = _reservoir(chunk_max_events=4)
        for i in range(10):
            reservoir.append(_event(i))
        restored = self._roundtrip(reservoir)
        result = restored.append(_event(10))
        assert result.status is AppendStatus.APPENDED
        assert restored.total_events == 11


class TestSchemaEvolutionInReservoir:
    def test_old_chunks_readable_after_evolution(self):
        registry = SchemaRegistry()
        registry.register(Schema([SchemaField("v", FieldType.INT)]))
        reservoir = EventReservoir(
            registry, config=ReservoirConfig(chunk_max_events=2)
        )
        reservoir.append(Event("a", 1, {"v": 1}))
        reservoir.append(Event("b", 2, {"v": 2}))  # persisted with schema 0
        registry.register(
            Schema([SchemaField("v", FieldType.INT), SchemaField("w", FieldType.STRING)])
        )
        reservoir.append(Event("c", 3, {"v": 3, "w": "new"}))
        events = reservoir.read_range(-1, 100)
        assert [e.event_id for e in events] == ["a", "b", "c"]
        assert events[2]["w"] == "new"

    def test_open_chunk_rolls_on_schema_change(self):
        registry = SchemaRegistry()
        registry.register(Schema([SchemaField("v", FieldType.INT)]))
        reservoir = EventReservoir(
            registry, config=ReservoirConfig(chunk_max_events=100)
        )
        reservoir.append(Event("a", 1, {"v": 1}))
        registry.register(
            Schema([SchemaField("v", FieldType.INT), SchemaField("w", FieldType.STRING)])
        )
        reservoir.append(Event("b", 2, {"v": 2, "w": "x"}))
        # The first chunk had to close so each chunk has one schema.
        assert reservoir.stats.chunks_closed == 1
