"""Replay & backfill: after-the-fact metrics, as-of reads, consistent cuts.

The engine's determinism basis — replaying ``[0, k)`` yields exactly
what a from-genesis processor holds at ``k`` — is what makes an
after-the-fact metric well-defined at all. The property pinned here is
its observable form: a metric *backfilled* mid-stream (materialized by
replaying the partition log behind the live writer, then spliced into
the live tasks at their exact consumption offsets while ingest keeps
running) is indistinguishable from the same metric defined before the
first event — on every topology and transport, over messy traffic
(duplicates, timestamp ties, late arrivals).

Also covered: the as-of read path (checkpoint seed keeps the replay
strictly below full-log cost), the reader-cursor retention pins that
keep checkpoint truncation from deleting unreplayed segments, and the
consistent-cut export/import migration of a durable deployment.
"""

from __future__ import annotations

import random

import pytest

from repro.common.errors import EngineError
from repro.engine.cluster import create_cluster
from repro.events.event import Event
from repro.messaging.cursor import LogCursor
from repro.messaging.durable import DurableBus
from repro.messaging.log import TopicPartition
from repro.query.parser import parse_query
from repro.replay import ReplayError, export_cut, import_cut

QUERY = (
    "SELECT avg(amount), count(*) FROM tx GROUP BY c "
    "OVER sliding 5 minutes"
)
SCHEMA = {"c": "string", "amount": "float"}


def messy_events(count: int, seed: int) -> list[Event]:
    """Deterministic messy traffic: duplicates, ties, late arrivals."""
    rng = random.Random(seed)
    events = []
    ts = 1_000
    for i in range(count):
        ts += rng.choice([0, 0, 50, 100, 400])
        event_ts = max(1, ts - rng.choice([0, 0, 0, 700]))
        if i and rng.random() < 0.05:
            event_id = f"e{rng.randrange(i)}"  # duplicate of an earlier id
        else:
            event_id = f"e{i}"
        events.append(
            Event(event_id, event_ts,
                  {"c": f"c{i % 5}", "amount": float(i % 11)})
        )
    return events


def ordered_events(count: int) -> list[Event]:
    """Strictly increasing timestamps (prefix == as-of semantics)."""
    return [
        Event(f"e{i}", 1_000 + i * 100,
              {"c": f"c{i % 4}", "amount": float(i % 7)})
        for i in range(count)
    ]


def make_cluster(topology: str, transport: str | None, durable_dir=None):
    if topology == "single":
        return create_cluster("single", durable_dir=durable_dir)
    kwargs = dict(workers=2, durable_dir=durable_dir)
    if transport is not None:
        kwargs["transport"] = transport
    if topology == "process-2f":
        kwargs["frontends"] = 2
    return create_cluster("process", **kwargs)


def settle_backfill(cluster, metric_id: int, max_rounds: int = 2_000) -> str:
    """Pump until the backfill splices everywhere (bounded)."""
    for _ in range(max_rounds):
        if cluster.backfill_status(metric_id) == "complete":
            break
        cluster.pump()
    cluster.run_until_quiet()
    return cluster.backfill_status(metric_id)


class TestBackfillEquivalence:
    """The acceptance property, across the full topology × transport
    matrix: reference cluster defines the metric at offset 0; target
    cluster defines it mid-stream via ``backfill_metric`` while ingest
    continues — the materialized values must be identical."""

    MATRIX = [
        ("single", None),
        ("process", "socket"),
        ("process", "shm"),
        ("process-2f", "socket"),
        ("process-2f", "shm"),
    ]

    @pytest.mark.parametrize(
        "topology,transport", MATRIX,
        ids=[f"{t}-{x or 'inproc'}" for t, x in MATRIX],
    )
    def test_backfilled_equals_defined_at_genesis(
        self, topology, transport, tmp_path
    ):
        events = messy_events(120, seed=7)
        split = 60
        durable = topology != "single"
        ref = make_cluster(
            topology, transport,
            durable_dir=str(tmp_path / "ref") if durable else None,
        )
        target = make_cluster(
            topology, transport,
            durable_dir=str(tmp_path / "target") if durable else None,
        )
        try:
            for cluster in (ref, target):
                cluster.create_stream(
                    "tx", ["c"], partitions=2, schema=SCHEMA
                )
            ref_id = ref.create_metric(QUERY)
            ref.send_batch("tx", events[:split])
            target.send_batch("tx", events[:split])
            target_id = target.backfill_metric(QUERY)
            # Ingest never pauses: the second half flows while the
            # replay races the live writer from behind.
            ref.send_batch("tx", events[split:])
            target.send_batch("tx", events[split:])
            ref.run_until_quiet()
            status = settle_backfill(target, target_id)
            assert status == "complete", status
            want = ref.metric_values(ref_id)
            got = target.metric_values(target_id)
            assert want, "reference produced no values"
            assert got == want
        finally:
            ref.close()
            target.close()

    def test_status_lifecycle_and_unknown_id(self, tmp_path):
        cluster = make_cluster(
            "process", "socket", durable_dir=str(tmp_path / "d")
        )
        try:
            cluster.create_stream("tx", ["c"], partitions=2, schema=SCHEMA)
            cluster.send_batch("tx", ordered_events(40))
            metric_id = cluster.backfill_metric(QUERY)
            assert settle_backfill(cluster, metric_id) == "complete"
            assert cluster.backfill_status(metric_id + 999) == "unknown"
        finally:
            cluster.close()


class TestAsOf:
    def test_replay_is_bounded_by_checkpoint_seed(self, tmp_path):
        """A mid-stream checkpoint makes the as-of replay strictly
        cheaper than reprocessing the whole log."""
        cluster = make_cluster(
            "process", "socket", durable_dir=str(tmp_path / "d")
        )
        try:
            cluster.create_stream("tx", ["c"], partitions=2, schema=SCHEMA)
            metric_id = cluster.create_metric(QUERY)
            events = ordered_events(150)
            cluster.send_batch("tx", events[:100])
            cluster.run_until_quiet()
            cluster.checkpoint_now()
            cluster.send_batch("tx", events[100:])
            cluster.run_until_quiet()
            result = cluster.query_as_of(metric_id, events[129].timestamp)
            assert result.values
            assert result.seeded >= 1
            assert 0 < result.replayed < result.log_records
        finally:
            cluster.close()

    def test_as_of_matches_a_cluster_stopped_at_that_instant(self):
        """Time travel is exact: the as-of view at event k's timestamp
        equals a live cluster that only ever ingested events[:k+1]."""
        events = ordered_events(80)
        stop = 49
        full = make_cluster("single", None)
        prefix = make_cluster("single", None)
        try:
            for cluster in (full, prefix):
                cluster.create_stream(
                    "tx", ["c"], partitions=2, schema=SCHEMA
                )
            full_id = full.create_metric(QUERY)
            prefix_id = prefix.create_metric(QUERY)
            full.send_batch("tx", events)
            prefix.send_batch("tx", events[: stop + 1])
            full.run_until_quiet()
            prefix.run_until_quiet()
            result = full.query_as_of(full_id, events[stop].timestamp)
            assert result.values == prefix.metric_values(prefix_id)
            assert result.values
        finally:
            full.close()
            prefix.close()

    def test_as_of_parses_but_is_rejected_as_ddl(self):
        query = parse_query(f"{QUERY} AS OF 123456")
        assert query.as_of == 123456
        assert "AS OF 123456" in query.describe()
        cluster = make_cluster("single", None)
        try:
            cluster.create_stream("tx", ["c"], partitions=2, schema=SCHEMA)
            with pytest.raises(EngineError, match="AS OF"):
                cluster.create_metric(f"{QUERY} AS OF 123456")
        finally:
            cluster.close()


class TestCursorRetentionPinning:
    """The reader-cursor / retention-pin contract on a durable log:
    while a backfill cursor is behind, checkpoint truncation clamps to
    its position; as it reads, reclamation resumes behind it; closing
    releases everything."""

    def _bus(self, tmp_path) -> tuple[DurableBus, TopicPartition]:
        bus = DurableBus(str(tmp_path / "bus"), segment_bytes=512)
        bus.create_topic("t", partitions=1)
        tp = TopicPartition("t", 0)
        for i in range(400):
            bus.log(tp).append(key=None, value=f"v{i}" * 8, timestamp=i)
        bus.flush()
        return bus, tp

    def test_open_cursor_pins_unreplayed_segments(self, tmp_path):
        bus, tp = self._bus(tmp_path)
        try:
            log = bus.log(tp)
            with LogCursor(bus, tp, 0) as cursor:
                log.truncate_below(350)
                # Nothing below the cursor may vanish: the next read
                # must still see offset 0.
                assert log.start_offset == 0
                assert cursor.read(10)[0].offset == 0
                # Reading advances the pin; truncation reclaims behind
                # the cursor but never past it.
                while cursor.position < 200:
                    cursor.read(50)
                start = log.truncate_below(350)
                assert 0 < start <= cursor.position
                assert bus.read(tp, cursor.position, 1)
            # Cursor closed: the pin is gone, retention catches up.
            assert log.truncate_below(350) > 200
        finally:
            bus.close()

    def test_torn_down_cursor_never_leaks_a_pin(self, tmp_path):
        bus, tp = self._bus(tmp_path)
        try:
            log = bus.log(tp)
            cursor = LogCursor(bus, tp, 0)
            cursor.close()
            cursor.close()  # idempotent
            assert log.pinned_floor is None
            log.truncate_below(400)
            assert log.start_offset > 0
        finally:
            bus.close()


class TestRemoteBackfill:
    def test_backfill_over_the_tcp_front_door(self):
        """The DDL frame round trip: a client defines the metric after
        the fact over TCP; the server settles the backfill and reports
        completion through ``backfill_status``."""
        from repro.server.client import RailgunClient
        from repro.server.server import serve_cluster

        cluster = make_cluster("single", None)
        cluster.create_stream("tx", ["c"], partitions=2, schema=SCHEMA)
        cluster.send_batch("tx", ordered_events(30))
        cluster.run_until_quiet()
        handle = serve_cluster(cluster)
        host, port = handle.address
        try:
            with RailgunClient(host, port) as client:
                metric_id = client.backfill_metric(QUERY)
                for _ in range(2_000):
                    if client.backfill_status(metric_id) == "complete":
                        break
                assert client.backfill_status(metric_id) == "complete"
        finally:
            handle.stop()
        try:
            values = cluster.metric_values(metric_id)
            assert values and all(
                group["count(*)"] > 0 for group in values.values()
            )
        finally:
            cluster.close()


class TestCutMigration:
    def test_export_import_round_trip(self, tmp_path):
        """A consistent cut of a durable cluster — including a metric
        that only ever existed as a backfill — reopens on the other
        side with identical values and keeps ingesting."""
        source_dir = str(tmp_path / "source")
        dest_dir = str(tmp_path / "copy")
        events = ordered_events(90)
        source = make_cluster("process", "socket", durable_dir=source_dir)
        try:
            source.create_stream("tx", ["c"], partitions=2, schema=SCHEMA)
            live_id = source.create_metric(QUERY)
            source.send_batch("tx", events[:60])
            back_id = source.backfill_metric(QUERY)
            source.send_batch("tx", events[60:])
            assert settle_backfill(source, back_id) == "complete"
            want_live = source.metric_values(live_id)
            want_back = source.metric_values(back_id)
            assert want_live and want_live == want_back
            export_cut(source, dest_dir)
        finally:
            source.close()
        ends = import_cut(dest_dir)
        assert all(
            end > 0 for tp, end in ends.items() if tp.topic == "tx.c"
        ), ends
        migrated = make_cluster("process", "socket", durable_dir=dest_dir)
        try:
            migrated.run_until_quiet()
            assert migrated.metric_values(live_id) == want_live
            assert migrated.metric_values(back_id) == want_back
            # The copy is a live cluster, not a snapshot: new traffic
            # (fresh ids — reused ones would dedupe) moves the windows.
            migrated.send_batch("tx", [
                Event(f"x{i}", events[-1].timestamp + (i + 1) * 100,
                      {"c": f"c{i % 4}", "amount": 50.0})
                for i in range(20)
            ])
            migrated.run_until_quiet()
            assert migrated.metric_values(live_id) != want_live
        finally:
            migrated.close()

    def test_export_requires_a_durable_cluster(self, tmp_path):
        cluster = make_cluster("single", None)
        try:
            with pytest.raises(ReplayError, match="durable"):
                export_cut(cluster, str(tmp_path / "nope"))
        finally:
            cluster.close()
