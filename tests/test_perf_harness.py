"""The machine-readable micro-benchmark harness (repro.bench.perf)."""

from __future__ import annotations

import json

from repro.bench import perf


REQUIRED_KEYS = {"events_per_sec", "p50_us", "p99_us"}
#: the crash-recovery benches add wall time and replay count on top.
RECOVERY_KEYS = REQUIRED_KEYS | {"recovery_ms", "events_replayed"}
#: the durable reopen bench reports wall time (but replays nothing).
REOPEN_KEYS = REQUIRED_KEYS | {"recovery_ms"}
#: the end-to-end process/frontends ingest benches attach per-stage
#: telemetry histogram summaries from the cluster's merged snapshot.
STAGE_BENCHES = {
    "engine_ingest_process_1w",
    "engine_ingest_process_4w",
    "engine_ingest_process_shm_1w",
    "engine_ingest_process_shm_4w",
    "engine_ingest_process_durable",
    "engine_ingest_process_1f",
    "engine_ingest_process_2f",
    "engine_ingest_process_4f",
    "engine_ingest_process_shm_2f",
}


def expected_keys(name: str) -> set:
    if name.startswith("recovery_"):
        return RECOVERY_KEYS
    if name == "durable_recovery_reopen":
        return REOPEN_KEYS
    if name in STAGE_BENCHES:
        return REQUIRED_KEYS | {"stages"}
    return REQUIRED_KEYS


class TestRunBenches:
    def test_schema_and_coverage(self):
        results = perf.run_benches(event_count=1500, batch_size=128, warmup=False)
        assert set(results) == set(perf.BENCHES)
        for name, stats in results.items():
            assert set(stats) == expected_keys(name), name
            assert stats["events_per_sec"] > 0, name
            assert 0 < stats["p50_us"] <= stats["p99_us"], name

    def test_speedup_pair_names_are_real_benches(self):
        batched, per_event = perf.SPEEDUP_PAIR
        assert batched in perf.BENCHES
        assert per_event in perf.BENCHES

    def test_select_runs_matching_subset(self):
        results = perf.run_benches(
            event_count=600, batch_size=128, warmup=False,
            engine_event_count=300, select="reservoir",
        )
        assert set(results) == {
            "reservoir_append_per_event", "reservoir_append_batch",
            "reservoir_append_ties_per_event", "reservoir_append_ties_batch",
        }

    def test_engine_benches_are_registered(self):
        assert perf.ENGINE_BENCHES == {
            "engine_ingest_single_process",
            "engine_ingest_process_1w",
            "engine_ingest_process_4w",
            "engine_ingest_process_1f",
            "engine_ingest_process_2f",
            "engine_ingest_process_4f",
            "engine_ingest_process_durable",
            "server_ingest_async_1c",
            "server_ingest_async_64c",
            "engine_ingest_process_shm_1w",
            "engine_ingest_process_shm_4w",
            "engine_ingest_process_shm_2f",
            "log_append_fsync_never",
            "log_append_fsync_batch",
            "log_append_fsync_always",
            "durable_recovery_reopen",
            "recovery_from_zero",
            "recovery_from_checkpoint",
        }
        assert perf.ENGINE_BENCHES < set(perf.BENCHES)


class TestGates:
    def sample(self, rate: float) -> dict:
        return {"events_per_sec": rate, "p50_us": 1.0, "p99_us": 2.0}

    def test_baseline_pass_and_fail(self):
        results = {"bench": self.sample(1000.0)}
        assert perf.check_baseline(results, {"bench": self.sample(1100.0)}, 0.2) == []
        failures = perf.check_baseline(results, {"bench": self.sample(2000.0)}, 0.2)
        assert len(failures) == 1 and "bench" in failures[0]

    def test_baseline_skips_annotations_and_flags_missing(self):
        results = {"bench": self.sample(1000.0)}
        baseline = {"_comment": {"events_per_sec": 1}, "gone": self.sample(1.0)}
        failures = perf.check_baseline(results, baseline, 0.2)
        assert failures == ["gone: present in baseline but not measured"]

    def test_speedup_gate(self):
        batched, per_event = perf.SPEEDUP_PAIR
        results = {batched: self.sample(300.0), per_event: self.sample(100.0)}
        assert perf.check_speedup(results, 1.5) == []
        assert len(perf.check_speedup(results, 4.0)) == 1

    def test_baseline_missing_tolerated_under_select(self):
        baseline = {"gone": self.sample(1.0)}
        assert perf.check_baseline({}, baseline, 0.2, require_all=False) == []

    def test_speedup_floors_enforced_with_enough_cpus(self):
        floors = [{"bench": "b", "over": "a", "min_ratio": 1.5, "min_cpus": 4}]
        results = {"a": self.sample(100.0), "b": self.sample(200.0)}
        failures, skips = perf.check_speedup_floors(results, floors, cpu_count=4)
        assert failures == [] and skips == []
        results["b"] = self.sample(120.0)
        failures, skips = perf.check_speedup_floors(results, floors, cpu_count=4)
        assert len(failures) == 1 and "1.20x" in failures[0]

    def test_speedup_floors_skip_on_small_hosts_and_missing_benches(self):
        floors = [{"bench": "b", "over": "a", "min_ratio": 1.5, "min_cpus": 4}]
        results = {"a": self.sample(100.0), "b": self.sample(120.0)}
        failures, skips = perf.check_speedup_floors(results, floors, cpu_count=1)
        assert failures == [] and len(skips) == 1 and "1 cpu" in skips[0]
        failures, skips = perf.check_speedup_floors({}, floors, cpu_count=8)
        assert failures == [] and len(skips) == 1

    def test_telemetry_overhead_skips_on_small_hosts(self):
        # On a 1-core host the 4w bench time-slices six processes and
        # run-to-run variance dwarfs the 5% budget; the gate must skip
        # without spawning any workers (overhead comes back None).
        failures, overhead = perf.check_telemetry_overhead(cpu_count=1)
        assert failures == [] and overhead is None

    def recovery_sample(self, recovery_ms: float, replayed: float) -> dict:
        return {
            "events_per_sec": 1000.0, "p50_us": 1.0, "p99_us": 2.0,
            "recovery_ms": recovery_ms, "events_replayed": replayed,
        }

    def test_recovery_floors_pass(self):
        floors = [{"bench": "cp", "over": "zero", "min_time_ratio": 1.3}]
        results = {
            "zero": self.recovery_sample(400.0, 3000.0),
            "cp": self.recovery_sample(100.0, 375.0),
        }
        failures, skips = perf.check_recovery_floors(results, floors)
        assert failures == [] and skips == []

    def test_recovery_floors_require_strictly_fewer_replays(self):
        floors = [{"bench": "cp", "over": "zero", "min_time_ratio": 1.3}]
        results = {
            "zero": self.recovery_sample(400.0, 3000.0),
            "cp": self.recovery_sample(100.0, 3000.0),  # not fewer
        }
        failures, _ = perf.check_recovery_floors(results, floors)
        assert len(failures) == 1 and "strictly fewer" in failures[0]

    def test_recovery_floors_require_time_ratio(self):
        floors = [{"bench": "cp", "over": "zero", "min_time_ratio": 1.3}]
        results = {
            "zero": self.recovery_sample(110.0, 3000.0),
            "cp": self.recovery_sample(100.0, 375.0),  # only 1.1x faster
        }
        failures, _ = perf.check_recovery_floors(results, floors)
        assert len(failures) == 1 and "1.10x" in failures[0]

    def test_recovery_floors_skip_when_unmeasured(self):
        floors = [{"bench": "cp", "over": "zero", "min_time_ratio": 1.3}]
        failures, skips = perf.check_recovery_floors({}, floors)
        assert failures == [] and len(skips) == 1

    def test_recovery_floors_reject_non_recovery_benches(self):
        """A misconfigured floor fails the gate cleanly, no KeyError."""
        floors = [{"bench": "b", "over": "a", "min_time_ratio": 1.3}]
        results = {"a": self.sample(100.0), "b": self.sample(200.0)}
        failures, skips = perf.check_recovery_floors(results, floors)
        assert len(failures) == 1 and "recovery metrics" in failures[0]
        assert skips == []

    def test_telemetry_decomposition_within_tolerance(self):
        stages = {
            "engine_batch_ms": {"sum_ms": 100.0},
            "engine_ingest_ms": {"sum_ms": 20.0},
            "engine_dispatch_ms": {"sum_ms": 30.0},
            "engine_collect_ms": {"sum_ms": 40.0},
            "engine_reply_ms": {"sum_ms": 8.0},
        }
        results = {
            "engine_ingest_process_1w": {**self.sample(1.0), "stages": stages},
        }
        assert perf.check_telemetry_decomposition(results) == []

    def test_telemetry_decomposition_flags_unaccounted_time(self):
        stages = {
            "engine_batch_ms": {"sum_ms": 100.0},
            "engine_ingest_ms": {"sum_ms": 10.0},
            "engine_dispatch_ms": {"sum_ms": 10.0},
            "engine_collect_ms": {"sum_ms": 10.0},
            "engine_reply_ms": {"sum_ms": 10.0},
        }
        results = {
            "engine_ingest_process_1w": {**self.sample(1.0), "stages": stages},
        }
        failures = perf.check_telemetry_decomposition(results)
        assert len(failures) == 1 and "engine_batch_ms" in failures[0]

    def test_telemetry_decomposition_skips_disabled_and_missing(self):
        assert perf.check_telemetry_decomposition({}) == []
        results = {"engine_ingest_process_1w": {**self.sample(1.0), "stages": {}}}
        assert perf.check_telemetry_decomposition(results) == []

    def test_checked_in_baseline_floor_names_are_real(self):
        import pathlib

        baseline_path = (
            pathlib.Path(__file__).resolve().parent.parent
            / "benchmarks" / "baseline_micro.json"
        )
        baseline = json.loads(baseline_path.read_text())
        for floor in baseline.get("_speedup_floors", []):
            assert floor["bench"] in perf.BENCHES
            assert floor["over"] in perf.BENCHES
        recovery_floors = baseline.get("_recovery_floors", [])
        assert recovery_floors  # checkpointed recovery is gated
        for floor in recovery_floors:
            assert floor["bench"] in perf.BENCHES
            assert floor["over"] in perf.BENCHES
        for name in baseline:
            if not name.startswith("_"):
                assert name in perf.BENCHES, name


class TestMain:
    def test_writes_report_and_gates(self, tmp_path, capsys):
        out = tmp_path / "BENCH_micro.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "reservoir_append_batch": {
                "events_per_sec": 1.0, "p50_us": 0.0, "p99_us": 0.0,
            }
        }))
        code = perf.main([
            "--out", str(out), "--events", "1200", "--batch-size", "128",
            "--engine-events", "600", "--no-warmup", "--baseline", str(baseline),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert set(report) == set(perf.BENCHES) | {"_host"}
        assert report["_host"]["cpu_count"] >= 1
        for name, stats in report.items():
            if not name.startswith("_"):
                assert set(stats) == expected_keys(name)

    def test_select_matching_nothing_is_a_config_error(self, tmp_path, capsys):
        code = perf.main([
            "--out", str(tmp_path / "b.json"), "--events", "600",
            "--no-warmup", "--select", "engine-ingest",  # typo'd selector
        ])
        assert code == 1
        assert "no benches matched" in capsys.readouterr().err

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        out = tmp_path / "BENCH_micro.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "reservoir_append_batch": {
                "events_per_sec": 1e15, "p50_us": 0.0, "p99_us": 0.0,
            }
        }))
        code = perf.main([
            "--out", str(out), "--events", "1200", "--batch-size", "128",
            "--no-warmup", "--baseline", str(baseline),
        ])
        assert code == 2
        assert "PERF REGRESSION" in capsys.readouterr().err
