"""Front-end and node-level tests (Figure 3 steps 1-2 and 5-6)."""

import pytest

from repro.common.clock import ManualClock
from repro.common.errors import EngineError
from repro.engine.catalog import (
    CreateStreamOp,
    OPERATIONS_TOPIC,
    REPLY_TOPIC_PREFIX,
    StreamDef,
)
from repro.engine.envelope import EventEnvelope, ReplyEnvelope
from repro.engine.frontend import FrontEnd
from repro.engine import RailgunCluster
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.log import TopicPartition
from repro.messaging.producer import Producer


def _world():
    clock = ManualClock(1)
    bus = MessageBus(brokers=1)
    bus.create_topic(OPERATIONS_TOPIC, 1)
    bus.create_topic(REPLY_TOPIC_PREFIX + "n1", 1)
    stream = StreamDef(
        "payments",
        (("cardId", "string"), ("merchantId", "string"), ("amount", "float")),
        ("cardId", "merchantId"),
        partitions=2,
    )
    bus.create_topic("payments.cardId", 2)
    bus.create_topic("payments.merchantId", 2)
    ops = Producer(bus, clock)
    ops.send(OPERATIONS_TOPIC, None, CreateStreamOp(stream))
    frontend = FrontEnd("n1", bus, clock)
    return clock, bus, frontend


class TestFanOut:
    def test_event_published_to_every_partitioner_topic(self):
        _, bus, frontend = _world()
        frontend.send(
            "payments",
            Event("e1", 10, {"cardId": "c1", "merchantId": "m1", "amount": 1.0}),
        )
        card_total = sum(
            bus.end_offset(tp) for tp in bus.topic_partitions("payments.cardId")
        )
        merchant_total = sum(
            bus.end_offset(tp) for tp in bus.topic_partitions("payments.merchantId")
        )
        assert card_total == 1
        assert merchant_total == 1

    def test_envelope_carries_fanout_and_origin(self):
        _, bus, frontend = _world()
        frontend.send(
            "payments",
            Event("e1", 10, {"cardId": "c1", "merchantId": "m1", "amount": 1.0}),
        )
        tp = next(
            tp for tp in bus.topic_partitions("payments.cardId")
            if bus.end_offset(tp) > 0
        )
        envelope = bus.read(tp, 0, 1)[0].value
        assert isinstance(envelope, EventEnvelope)
        assert envelope.fanout == 2
        assert envelope.origin_node == "n1"

    def test_unknown_stream_rejected(self):
        _, _, frontend = _world()
        with pytest.raises(EngineError):
            frontend.send("ghost", Event("e", 1, {}))

    def test_schema_validated_at_entry(self):
        from repro.common.errors import SchemaError

        _, _, frontend = _world()
        with pytest.raises(SchemaError):
            frontend.send("payments", Event("e", 1, {"bogus": 1}))


class TestFanIn:
    def test_reply_completes_after_all_tasks_answer(self):
        clock, bus, frontend = _world()
        correlation = frontend.send(
            "payments",
            Event("e1", 10, {"cardId": "c1", "merchantId": "m1", "amount": 1.0}),
        )
        reply_producer = Producer(bus, clock)
        reply_topic = REPLY_TOPIC_PREFIX + "n1"
        reply_producer.send(
            reply_topic, None,
            ReplyEnvelope(correlation, "e1", TopicPartition("payments.cardId", 0),
                          {0: {"count(*)": 1}}),
        )
        assert frontend.poll_replies() == []
        assert correlation in frontend.pending
        reply_producer.send(
            reply_topic, None,
            ReplyEnvelope(correlation, "e1", TopicPartition("payments.merchantId", 0),
                          {1: {"avg(amount)": 1.0}}),
        )
        completed = frontend.poll_replies()
        assert len(completed) == 1
        assert completed[0].results == {0: {"count(*)": 1}, 1: {"avg(amount)": 1.0}}
        assert frontend.take_completed(correlation) is not None
        assert frontend.take_completed(correlation) is None  # popped

    def test_duplicate_replies_ignored(self):
        clock, bus, frontend = _world()
        correlation = frontend.send(
            "payments",
            Event("e1", 10, {"cardId": "c1", "merchantId": "m1", "amount": 1.0}),
        )
        producer = Producer(bus, clock)
        reply = ReplyEnvelope(
            correlation, "e1", TopicPartition("payments.cardId", 0), {0: {}}
        )
        for _ in range(3):
            producer.send(REPLY_TOPIC_PREFIX + "n1", None, reply)
        producer.send(
            REPLY_TOPIC_PREFIX + "n1", None,
            ReplyEnvelope(correlation, "e1",
                          TopicPartition("payments.merchantId", 0), {1: {}}),
        )
        completed = frontend.poll_replies()
        assert len(completed) == 1

    def test_latency_measured_from_send(self):
        clock, bus, frontend = _world()
        correlation = frontend.send(
            "payments",
            Event("e1", 10, {"cardId": "c1", "merchantId": "m1", "amount": 1.0}),
        )
        clock.advance(25)
        producer = Producer(bus, clock)
        for topic in ("payments.cardId", "payments.merchantId"):
            producer.send(
                REPLY_TOPIC_PREFIX + "n1", None,
                ReplyEnvelope(correlation, "e1", TopicPartition(topic, 0), {}),
            )
        completed = frontend.poll_replies()
        assert completed[0].latency_ms == 25


class TestNodeLifecycle:
    def test_dead_node_does_no_work(self):
        cluster = RailgunCluster(nodes=2, processor_units=1)
        cluster.create_stream(
            "s", partitioners=["k"], partitions=2, schema=[("k", "string")]
        )
        cluster.create_metric("SELECT count(*) FROM s GROUP BY k OVER infinite")
        cluster.kill_node("node-1")
        node = cluster.nodes["node-1"]
        assert node.pump() == 0

    def test_reply_struct_helpers(self):
        cluster = RailgunCluster(nodes=1, processor_units=1)
        cluster.create_stream(
            "s", partitioners=["k"], partitions=1, schema=[("k", "string")]
        )
        metric = cluster.create_metric("SELECT count(*) FROM s GROUP BY k OVER infinite")
        reply = cluster.send("s", {"k": "a"}, timestamp=5)
        assert reply.metric(metric) == {"count(*)": 1}
        assert reply.value(metric, "count(*)") == 1
        assert reply.value(99, "missing") is None
        assert reply.stream == "s"

    def test_send_requires_fields_or_event(self):
        cluster = RailgunCluster(nodes=1, processor_units=1)
        with pytest.raises(EngineError):
            cluster.send_async("s")

    def test_cluster_requires_nodes(self):
        with pytest.raises(EngineError):
            RailgunCluster(nodes=0)

    def test_node_requires_units(self):
        with pytest.raises(ValueError):
            RailgunCluster(nodes=1, processor_units=0)
