"""Figure 7 sticky assignment strategy tests (incl. invariant properties)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import EngineError
from repro.engine.assignment import (
    PreviousState,
    ProcessorInfo,
    StickyAssignmentStrategy,
    round_robin_task_strategy,
)
from repro.messaging.log import TopicPartition


def _tasks(count):
    return [TopicPartition("t", i) for i in range(count)]


def _processors(nodes, per_node):
    return [
        ProcessorInfo(f"n{n}/p{p}", f"n{n}")
        for n in range(nodes)
        for p in range(per_node)
    ]


def _assert_invariants(assignment, tasks, processors, replication, check_budget=True):
    node_of = {p.processor_id: p.node_id for p in processors}
    # Every task has exactly one active owner.
    for task in tasks:
        owners = [p for p, tps in assignment.active.items() if task in tps]
        assert len(owners) == 1, f"{task} has owners {owners}"
    # Invariant 1: one copy per physical node.
    per_node_copies = {}
    for mapping in (assignment.active, assignment.replica):
        for processor_id, tps in mapping.items():
            for task in tps:
                key = (node_of[processor_id], task)
                assert key not in per_node_copies, f"double copy {key}"
                per_node_copies[key] = processor_id
    # Replica counts: full when enough nodes, else tracked as unplaced.
    for task in tasks:
        replica_count = sum(
            1 for tps in assignment.replica.values() if task in tps
        )
        missing = assignment.unplaced_replicas.count(task)
        assert replica_count + missing == replication
    # Invariant 2: budget (the sticky strategy only; the round-robin
    # baseline intentionally ignores it).
    if check_budget:
        total = len(tasks) * (1 + replication)
        budget = -(-total // len(processors))
        for processor_id in (p.processor_id for p in processors):
            assert assignment.load_of(processor_id) <= budget


class TestBasicAssignment:
    def test_fresh_cluster_balanced(self):
        tasks = _tasks(8)
        processors = _processors(4, 2)
        assignment = StickyAssignmentStrategy(1).assign(tasks, processors)
        _assert_invariants(assignment, tasks, processors, 1)
        loads = [assignment.load_of(p.processor_id) for p in processors]
        assert max(loads) - min(loads) <= 1

    def test_no_processors(self):
        assignment = StickyAssignmentStrategy(0).assign(_tasks(3), [])
        assert assignment.active == {}
        assert assignment.unplaced_replicas == _tasks(3)

    def test_duplicate_processor_ids_rejected(self):
        duplicated = [ProcessorInfo("p", "n1"), ProcessorInfo("p", "n2")]
        with pytest.raises(EngineError):
            StickyAssignmentStrategy(0).assign(_tasks(1), duplicated)

    def test_negative_replication_rejected(self):
        with pytest.raises(EngineError):
            StickyAssignmentStrategy(-1)

    def test_single_node_cannot_replicate(self):
        tasks = _tasks(4)
        processors = _processors(1, 4)
        assignment = StickyAssignmentStrategy(1).assign(tasks, processors)
        # Replicas would violate node exclusivity: all unplaced.
        assert sorted(assignment.unplaced_replicas, key=str) == sorted(tasks, key=str)


class TestStickiness:
    def test_stable_reassignment_is_identity(self):
        tasks = _tasks(12)
        processors = _processors(3, 2)
        strategy = StickyAssignmentStrategy(1)
        first = strategy.assign(tasks, processors)
        previous = PreviousState(active=first.active, replica=first.replica)
        second = strategy.assign(tasks, processors, previous)
        assert second.active == first.active
        assert second.replica == first.replica

    def test_failed_node_tasks_go_to_replicas(self):
        tasks = _tasks(8)
        processors = _processors(4, 1)
        strategy = StickyAssignmentStrategy(1)
        first = strategy.assign(tasks, processors)
        dead = "n0/p0"
        dead_tasks = first.active[dead]
        survivors = [p for p in processors if p.processor_id != dead]
        previous = PreviousState(active=dict(first.active), replica=dict(first.replica))
        second = strategy.assign(tasks, survivors, previous)
        for task in dead_tasks:
            new_owner = second.owner_of(task)
            # The new owner already replicated the task (promotion).
            assert task in first.replica.get(new_owner, set())

    def test_stale_preferred_over_cold(self):
        tasks = _tasks(4)
        processors = _processors(4, 1)
        strategy = StickyAssignmentStrategy(0)
        task = tasks[0]
        previous = PreviousState(stale={"n3/p0": {task}})
        assignment = strategy.assign(tasks, processors, previous)
        assert assignment.owner_of(task) == "n3/p0"

    def test_active_preferred_over_replica(self):
        tasks = _tasks(2)
        processors = _processors(3, 1)
        strategy = StickyAssignmentStrategy(0)
        previous = PreviousState(
            active={"n1/p0": {tasks[0]}},
            replica={"n2/p0": {tasks[0]}},
        )
        assignment = strategy.assign(tasks, processors, previous)
        assert assignment.owner_of(tasks[0]) == "n1/p0"

    def test_budget_forces_movement(self):
        # One processor previously held everything; budget must spread.
        tasks = _tasks(6)
        processors = _processors(3, 1)
        previous = PreviousState(active={"n0/p0": set(tasks)})
        assignment = StickyAssignmentStrategy(0).assign(tasks, processors, previous)
        _assert_invariants(assignment, tasks, processors, 0)
        assert assignment.load_of("n0/p0") == 2

    def test_moved_from_metric(self):
        tasks = _tasks(4)
        processors = _processors(2, 2)
        strategy = StickyAssignmentStrategy(0)
        first = strategy.assign(tasks, processors)
        previous = PreviousState(active=first.active)
        second = strategy.assign(tasks, processors, previous)
        assert second.moved_from(previous) == 0


class TestWeightedBudget:
    def test_heavy_task_consumes_budget(self):
        tasks = _tasks(3)
        weights = {tasks[0]: 4}
        processors = _processors(2, 1)
        strategy = StickyAssignmentStrategy(0, task_weights=weights)
        assignment = strategy.assign(tasks, processors)
        heavy_owner = assignment.owner_of(tasks[0])
        # The heavy task fills its owner's budget; both light tasks must
        # land on the other processor.
        light_owners = {assignment.owner_of(t) for t in tasks[1:]}
        assert heavy_owner not in light_owners
        assert len(light_owners) == 1


class TestRoundRobinBaseline:
    def test_complete_and_node_exclusive(self):
        tasks = _tasks(10)
        processors = _processors(3, 2)
        assignment = round_robin_task_strategy(
            tasks, processors, replication_factor=1
        )
        _assert_invariants(assignment, tasks, processors, 1, check_budget=False)

    def test_ignores_history(self):
        tasks = _tasks(6)
        processors = _processors(3, 1)
        first = round_robin_task_strategy(tasks, processors, replication_factor=0)
        shuffled_previous = PreviousState(active={"n2/p0": set(tasks)})
        second = round_robin_task_strategy(
            tasks, processors, shuffled_previous, replication_factor=0
        )
        assert first.active == second.active


class TestInvariantProperties:
    @given(
        st.integers(min_value=1, max_value=30),  # tasks
        st.integers(min_value=2, max_value=6),  # nodes
        st.integers(min_value=1, max_value=3),  # processors per node
        st.integers(min_value=0, max_value=2),  # replication
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_from_random_previous_state(
        self, task_count, nodes, per_node, replication, rng
    ):
        tasks = _tasks(task_count)
        processors = _processors(nodes, per_node)
        ids = [p.processor_id for p in processors]
        previous = PreviousState(
            active={rng.choice(ids): set(rng.sample(tasks, min(3, len(tasks))))},
            replica={rng.choice(ids): set(rng.sample(tasks, min(2, len(tasks))))},
            stale={rng.choice(ids): set(rng.sample(tasks, min(2, len(tasks))))},
        )
        assignment = StickyAssignmentStrategy(replication).assign(
            tasks, processors, previous
        )
        _assert_invariants(assignment, tasks, processors, replication)
