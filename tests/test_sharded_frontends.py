"""Sharded-frontend runtime tests: wire, FrontendEngine, ClusterRouter.

The multi-frontend topology must uphold the cross-frontend invariants
documented in docs/ARCHITECTURE.md:

- **Per-key ordering**: a key hashes to one partition, hence one sticky
  frontend, hence one worker — its replies observe its events in client
  order even with frontends racing each other.
- **Byte-identical replies** to the single-process engine for any input
  (the per-partition log order is the client order restricted to that
  partition, same as one coordinator would produce).
- **Merged stats**: per-worker counters keep flowing into the
  supervisor (via ``note_processed``) and per-frontend counters sum to
  the cluster totals.
- **Failure isolation**: a crashed frontend is respawned from its
  journal without disturbing the other frontends' streams; a crashed
  worker replays only its uncheckpointed tail, with both frontends
  suppressing replies their clients already saw.
"""

from __future__ import annotations

import pytest

from repro.common.errors import EngineError
from repro.common.timesource import default_time_source
from repro.engine.cluster import RailgunCluster, create_cluster
from repro.events.event import Event
from repro.messaging.log import TopicPartition
from repro.shard import wire
from repro.shard.parallel import ParallelCluster
from repro.shard.router import ClusterRouter, FrontendEngine

STREAM_KW = dict(partitions=4, schema={"cardId": "string", "amount": "float"})
METRIC = (
    "SELECT sum(amount), count(*), avg(amount) FROM tx GROUP BY cardId "
    "OVER sliding 5 minutes"
)


def make_events(count, prefix="e", start_ts=1000):
    return [
        Event(
            f"{prefix}{i}", start_ts + i,
            {"cardId": f"c{i % 5}", "amount": float(i % 17)},
        )
        for i in range(count)
    ]


def single_process_results(events, metrics=(METRIC,)):
    """Ground truth: the cooperative engine, one event at a time."""
    cluster = RailgunCluster(nodes=1, processor_units=2)
    cluster.create_stream("tx", ["cardId"], **STREAM_KW)
    for metric in metrics:
        cluster.create_metric(metric)
    cluster.run_until_quiet()
    return [cluster.send("tx", event=event).results for event in events]


def make_router(workers=2, frontends=2, **kwargs) -> ClusterRouter:
    cluster = ClusterRouter(workers=workers, frontends=frontends, **kwargs)
    cluster.create_stream("tx", ["cardId"], **STREAM_KW)
    cluster.create_metric(METRIC)
    return cluster


# -- wire protocol ------------------------------------------------------------


class TestRoutingWire:
    def roundtrip(self, msg):
        return wire.decode(wire.encode(msg))

    def test_ingest_batch_roundtrip(self):
        entries = [
            (7, Event("a", 5, {"cardId": "c1", "amount": 2.5}), (("cardId", 3),)),
            (8, Event("b", 6, {"cardId": None, "amount": -1}),
             (("cardId", 0), ("__global__", 0))),
            (9, Event("ç🚂", 7, {"amount": 1e-9, "blob": b"\x00\xff"}), ()),
        ]
        decoded = self.roundtrip(wire.IngestBatch("tx", entries))
        assert decoded.stream == "tx"
        assert decoded.entries == entries
        # Field insertion order survives the string-table interning.
        assert decoded.entries[2][1].field_names() == ["amount", "blob"]

    def test_routing_control_roundtrips(self):
        tp0 = TopicPartition("tx.cardId", 0)
        tp1 = TopicPartition("tx.cardId", 1)
        for msg in [
            wire.FrontendAssign(
                ((tp0, "shard-0", "/tmp/s0.sock"), (tp1, "shard-1", "/tmp/s1.sock")),
                ((tp1, 42),),
            ),
            wire.RestoreWatermarks(((tp0, 17),), ((tp0, 5),)),
            wire.WorkerRestarted("shard-1", "/tmp/s1.sock", ((tp1, 64),)),
            wire.DrainRequest(3),
            wire.DrainAck(3, ((tp0, 17), (tp1, 64))),
        ]:
            assert self.roundtrip(msg) == msg

    def test_reply_batch_roundtrip(self):
        tp = TopicPartition("tx.cardId", 2)
        msg = wire.ReplyBatch(
            replies=[
                (4, "tx.cardId", {0: {"sum(amount)": 1.5, "count(*)": 2}}),
                (5, "tx.cardId", None),
                (6, "tx.__global__", {1: {"max(amount)": None}}),
            ],
            watermarks=((tp, 9),),
            processed=(("shard-0", 12, 7), ("shard-1", 3, 3)),
        )
        decoded = self.roundtrip(msg)
        assert decoded.replies == msg.replies
        assert decoded.watermarks == msg.watermarks
        assert decoded.processed == msg.processed


# -- FrontendEngine (in-process) ----------------------------------------------


class TestFrontendEngine:
    def engine_with_stream(self):
        engine = FrontendEngine("fe-0")
        from repro.engine.catalog import StreamDef

        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 4
        )
        engine.handle(wire.CreateStream(stream))
        return engine

    def test_ingest_appends_in_order(self):
        engine = self.engine_with_stream()
        tp = TopicPartition("tx.cardId", 1)
        events = make_events(5)
        engine.handle(
            wire.IngestBatch(
                "tx",
                [(i, event, (("cardId", 1),)) for i, event in enumerate(events)],
            )
        )
        log = engine.bus.log(tp)
        assert [m.value for m in log.read(0, 10)] == events
        assert [m.key for m in log.read(0, 10)] == [0, 1, 2, 3, 4]
        assert engine.events_ingested == 5

    def test_downed_worker_is_not_redialed_until_restart_message(self):
        """The recovery invariant behind byte-identical replies: after a
        link failure the frontend must wait for WorkerRestarted (which
        carries the seek-back) before reconnecting — dialing the fresh
        worker early would feed it tail offsets without their history."""
        engine = self.engine_with_stream()
        tp = TopicPartition("tx.cardId", 1)
        engine.apply_assign(
            wire.FrontendAssign(((tp, "shard-0", "/nonexistent.sock"),))
        )
        engine.link_down("shard-0")
        assert engine._link("shard-0") is None  # quarantined, no dial
        engine.worker_restarted(wire.WorkerRestarted("shard-0", "/x.sock", ()))
        assert "shard-0" not in engine.down  # re-authorized

    def test_planned_route_removal_does_not_quarantine(self):
        """A rebalance that drops a live worker from this frontend's
        routes must not quarantine it: a later rebalance may route
        tasks back, and only a crash (which guarantees a future
        WorkerRestarted) justifies refusing to redial."""
        engine = self.engine_with_stream()
        tp0 = TopicPartition("tx.cardId", 0)
        tp1 = TopicPartition("tx.cardId", 1)
        engine.apply_assign(
            wire.FrontendAssign(
                ((tp0, "shard-0", "/s0.sock"), (tp1, "shard-1", "/s1.sock"))
            )
        )
        # All of shard-0's tasks move away (planned, worker stays up).
        engine.apply_assign(
            wire.FrontendAssign(
                ((tp0, "shard-1", "/s1.sock"), (tp1, "shard-1", "/s1.sock"))
            )
        )
        assert "shard-0" not in engine.down
        # ... and a failure does quarantine until the restart message.
        engine.link_down("shard-1")
        assert "shard-1" in engine.down

    def test_restore_watermarks_seeds_suppression_and_seeks(self):
        engine = self.engine_with_stream()
        tp = TopicPartition("tx.cardId", 1)
        engine.handle(
            wire.IngestBatch(
                "tx",
                [(i, e, (("cardId", 1),)) for i, e in enumerate(make_events(10))],
            )
        )
        engine.handle(wire.RestoreWatermarks(((tp, 7),), ((tp, 3),)))
        assert engine.watermarks[tp] == 7
        # The seek overrides the watermark position downwards only.
        assert engine.view.position(tp) == 3


# -- ClusterRouter ------------------------------------------------------------


class TestClusterRouterEquivalence:
    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_replies_and_merged_stats_match_single_process(self, transport):
        events = make_events(120)
        expected = single_process_results(events)
        with make_router(workers=2, frontends=2, transport=transport) as cluster:
            replies = cluster.send_batch("tx", events)
            assert [r.results for r in replies] == expected
            assert [r.event for r in replies] == events
            stats = cluster.stats()
            # Merged stats: every event routed once, processed once,
            # replied once — summed across frontends and workers.
            assert sum(
                fe["events_routed"] for fe in stats["frontends"].values()
            ) == len(events)
            assert sum(
                fe["replies_merged"] for fe in stats["frontends"].values()
            ) == len(events)
            assert sum(
                w["processed"] for w in stats["workers"].values()
            ) == len(events)
            assert cluster.total_messages_processed() == len(events)
            # Sharded: both frontends actually carried traffic.
            assert all(
                fe["events_routed"] > 0 for fe in stats["frontends"].values()
            )

    def test_per_key_reply_ordering_under_two_frontends(self):
        """Each key's replies observe its events in client order: the
        per-key count(*) is exactly 1, 2, 3, ... however the frontends
        interleave."""
        events = [
            Event(f"k{i}", 1000 + i // 8, {"cardId": f"c{i % 8}", "amount": 1.0})
            for i in range(160)
        ]
        with ClusterRouter(workers=2, frontends=2) as cluster:
            cluster.create_stream("tx", ["cardId"], partitions=8,
                                  schema={"cardId": "string", "amount": "float"})
            metric = cluster.create_metric(
                "SELECT count(*) FROM tx GROUP BY cardId OVER sliding 60 minutes"
            )
            replies = cluster.send_batch("tx", events)
            seen: dict[str, int] = {}
            for event, reply in zip(events, replies):
                key = event.get("cardId")
                seen[key] = seen.get(key, 0) + 1
                assert reply.value(metric, "count(*)") == seen[key]

    def test_auto_event_ids_match_parallel_cluster(self):
        """Dict (non-Event) inputs get ``client-...`` ids minted from
        the same published-message arithmetic as ParallelCluster, so the
        same call sequence yields identical event identities whichever
        process topology serves it."""
        def ids(cluster):
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            minted = [
                r.event.event_id
                for r in cluster.send_batch(
                    "tx",
                    [{"cardId": "c1", "amount": 1.0},
                     {"cardId": "c2", "amount": 2.0}],
                )
            ]
            minted.append(
                cluster.send("tx", fields={"cardId": "c1", "amount": 3.0})
                .event.event_id
            )
            return minted

        with ParallelCluster(workers=1) as parallel:
            expected = ids(parallel)
        with ClusterRouter(workers=1, frontends=2) as sharded:
            assert ids(sharded) == expected

    def test_single_event_send_and_field_mapping(self):
        with ClusterRouter(workers=1, frontends=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(
                "SELECT count(*) FROM tx GROUP BY cardId OVER sliding 1 minutes"
            )
            first = cluster.send("tx", fields={"cardId": "c1", "amount": 1.0})
            second = cluster.send("tx", fields={"cardId": "c1", "amount": 2.0})
            assert first.value(0, "count(*)") == 1
            assert second.value(0, "count(*)") == 2

    def test_multi_partitioner_fanin_across_frontends(self):
        """An event fanning out to two topics may span two frontends;
        the router's topic-level fan-in must still assemble one reply."""
        events = make_events(60)
        cooperative = RailgunCluster(nodes=1, processor_units=2)
        cooperative.create_stream(
            "tx", ["cardId"], with_global_partitioner=True, **STREAM_KW
        )
        cooperative.create_metric(METRIC)
        global_metric = cooperative.create_metric(
            "SELECT count(*) FROM tx OVER sliding 5 minutes"
        )
        cooperative.run_until_quiet()
        expected = [cooperative.send("tx", event=e).results for e in events]
        with ClusterRouter(workers=2, frontends=2) as cluster:
            cluster.create_stream(
                "tx", ["cardId"], with_global_partitioner=True, **STREAM_KW
            )
            cluster.create_metric(METRIC)
            assert cluster.create_metric(
                "SELECT count(*) FROM tx OVER sliding 5 minutes"
            ) == global_metric
            replies = cluster.send_batch("tx", events)
            assert [r.results for r in replies] == expected

    def test_frontend_ownership_is_pinned_across_ddl(self):
        """A second create_stream must never move an existing partition
        between frontends: the owner holds the task's only log copy and
        watermark, so a move would strand both and silently drop the
        moved partition's history (regression: replies diverged from
        single mode after mid-stream DDL)."""
        events = [
            Event(f"p{i}", 1000 + i, {"k": f"g{i % 3}", "amount": 1.0})
            for i in range(30)
        ]
        single = RailgunCluster(nodes=1, processor_units=2)
        single.create_stream("m", ["k"], partitions=1,
                             schema={"k": "string", "amount": "float"})
        metric = single.create_metric(
            "SELECT count(*) FROM m GROUP BY k OVER sliding 60 minutes"
        )
        single.run_until_quiet()
        expected = [single.send("m", event=e).results for e in events[:15]]
        single.create_stream("a", ["k"], partitions=1,
                             schema={"k": "string", "amount": "float"})
        single.run_until_quiet()
        expected += [single.send("m", event=e).results for e in events[15:]]
        with ClusterRouter(workers=2, frontends=2) as cluster:
            cluster.create_stream("m", ["k"], partitions=1,
                                  schema={"k": "string", "amount": "float"})
            assert cluster.create_metric(
                "SELECT count(*) FROM m GROUP BY k OVER sliding 60 minutes"
            ) == metric
            owners_before = dict(cluster._fe_owner)
            results = [r.results for r in cluster.send_batch("m", events[:15])]
            cluster.create_stream("a", ["k"], partitions=1,
                                  schema={"k": "string", "amount": "float"})
            for tp, owner in owners_before.items():
                assert cluster._fe_owner[tp] == owner  # pinned, never moved
            results += [r.results for r in cluster.send_batch("m", events[15:])]
            assert results == expected

    def test_factory_dispatches_on_frontends(self):
        with create_cluster("process", workers=1, frontends=2) as cluster:
            assert isinstance(cluster, ClusterRouter)
        with create_cluster("process", workers=1) as cluster:
            assert isinstance(cluster, ParallelCluster)
        with pytest.raises(EngineError):
            ClusterRouter(workers=1, frontends=0)


class TestClusterRouterFailures:
    def await_worker_restart(self, cluster, count=1, timeout=30.0):
        default_time_source().wait_until(
            lambda: (cluster.pump(), cluster.supervisor.restarts >= count)[1],
            timeout=timeout,
            poll=0.0,
        )
        assert cluster.supervisor.restarts == count

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_worker_crash_mid_batch_replays_uncommitted(self, transport):
        """Kill a worker with batches in flight: replies stay
        byte-identical across both frontends and none is duplicated."""
        events = make_events(300)
        expected = single_process_results(events)
        with make_router(workers=2, frontends=2, transport=transport) as cluster:
            correlations = cluster._route_and_ship("tx", events)
            while len(cluster.completed) < 80:
                cluster.pump()
            cluster.kill_worker(cluster.worker_ids()[0])
            default_time_source().wait_until(
                lambda: (cluster.pump(), len(cluster.completed) >= len(events))[1],
                timeout=30.0,
                poll=0.0,
            )
            results = [cluster.completed.pop(c).results for c in correlations]
            assert results == expected
            # Over shm every reply may have been salvaged from the
            # victim's ring, completing the batch before the supervisor
            # notices the corpse — wait for the restart, don't race it.
            self.await_worker_restart(cluster)
            # The uncheckpointed tail replayed. Over shm the frontend
            # salvages already-published replies from the victim's reply
            # ring before quarantining the link, so the replay set may
            # be empty there — at-least-once is the invariant.
            if transport == "socket":
                assert cluster.total_messages_processed() > len(events)
            else:
                assert cluster.total_messages_processed() >= len(events)
            # ... but no client reply was duplicated.
            assert not cluster.completed
            assert not cluster.pending

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_frontend_crash_recovers_from_journal(self, transport):
        """Kill one frontend mid-stream: its journal replay completes
        every in-flight request; settled replies are not re-answered."""
        events = make_events(240)
        expected = single_process_results(events)
        with make_router(workers=2, frontends=2, transport=transport) as cluster:
            results = [r.results for r in cluster.send_batch("tx", events[:120])]
            victim = cluster.frontend_ids()[0]
            cluster.kill_frontend(victim)
            results += [r.results for r in cluster.send_batch("tx", events[120:])]
            assert results == expected
            stats = cluster.stats()
            assert stats["frontends"][victim]["restarts"] == 1
            # Every request completed exactly once.
            assert not cluster.pending and not cluster.completed

    def test_frontend_crash_does_not_disturb_other_frontends_streams(self):
        """Failure isolation: the surviving frontend's watermarks and
        counters advance monotonically through its peer's crash and the
        recovered reply counts cover every event."""
        events = make_events(200)
        with make_router(workers=2, frontends=2) as cluster:
            cluster.send_batch("tx", events[:100])
            victim, survivor = cluster.frontend_ids()
            survivor_tasks = cluster._frontends[survivor].owned
            survivor_wm = {
                tp: cluster._watermarks.get(tp, 0) for tp in survivor_tasks
            }
            survivor_merged = cluster.stats()["frontends"][survivor][
                "replies_merged"
            ]
            cluster.kill_frontend(victim)
            replies = cluster.send_batch("tx", events[100:])
            assert len(replies) == 100
            stats = cluster.stats()
            assert stats["frontends"][victim]["restarts"] == 1
            assert stats["frontends"][survivor]["restarts"] == 0
            # The survivor's streams moved forward, never backward.
            for tp in survivor_tasks:
                assert cluster._watermarks.get(tp, 0) >= survivor_wm[tp]
            assert (
                stats["frontends"][survivor]["replies_merged"]
                >= survivor_merged
            )
            # Recovered reply counts: all 200 events answered once.
            assert sum(
                fe["replies_merged"] for fe in stats["frontends"].values()
            ) == len(events)

    def test_fault_injected_frontend_crash_is_equivalent(self):
        events = make_events(150)
        expected = single_process_results(events)
        with make_router(workers=2, frontends=2) as cluster:
            results = [r.results for r in cluster.send_batch("tx", events[:70])]
            handle = cluster._frontends[cluster.frontend_ids()[1]]
            handle.conn.send_bytes(wire.encode(wire.Crash()))
            results += [r.results for r in cluster.send_batch("tx", events[70:])]
            assert results == expected
            assert handle.restarts == 1

    def test_rebalance_mid_stream_grow_and_shrink(self):
        events = make_events(200)
        expected = single_process_results(events)
        with make_router(workers=1, frontends=2) as cluster:
            results = [r.results for r in cluster.send_batch("tx", events[:80])]
            grown = cluster.add_worker()
            results += [r.results for r in cluster.send_batch("tx", events[80:150])]
            cluster.remove_worker(grown)
            results += [r.results for r in cluster.send_batch("tx", events[150:])]
            assert results == expected
            assert cluster.rebalance_count >= 3

    def test_checkpointed_worker_recovery_bounds_replay(self):
        """checkpoint_now() + crash: only the uncheckpointed tail
        replays, across both frontends' partitions."""
        events = make_events(120)
        with make_router(workers=2, frontends=2, checkpoint_every=None) as cluster:
            cluster.send_batch("tx", events[:90])
            offsets = cluster.checkpoint_now()
            assert sum(offsets.values()) == 90
            cluster.send_batch("tx", events[90:])
            processed = cluster.total_messages_processed()
            assert processed == len(events)
            victim = cluster.worker_ids()[0]
            victim_tasks = set(cluster.supervisor.handles[victim].assigned)
            checkpointed = sum(offsets[tp] for tp in victim_tasks)
            shipped = sum(
                cluster._watermarks.get(tp, 0) for tp in victim_tasks
            )
            cluster.kill_worker(victim)
            self.await_worker_restart(cluster)
            cluster.drain()
            replayed = cluster.total_messages_processed() - processed
            # Exactly the victim's uncheckpointed tail, nothing more.
            assert replayed == shipped - checkpointed
            assert not cluster.pending

    def test_drain_quiesces_both_frontends(self):
        events = make_events(80)
        with make_router(workers=2, frontends=2) as cluster:
            cluster.send_batch("tx", events)
            cluster.drain()
            offsets = cluster.checkpoint_offsets()
            assert sum(offsets.values()) == len(events)
