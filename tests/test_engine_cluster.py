"""End-to-end cluster tests: routing, correctness, failure handling."""

import random

import pytest

from repro.common.clock import MINUTES
from repro.common.errors import EngineError
from repro.engine import RailgunCluster
from repro.engine.processor import UnitConfig


def _cluster(**kwargs):
    defaults = dict(nodes=2, processor_units=2, replication_factor=1, brokers=3)
    defaults.update(kwargs)
    return RailgunCluster(**defaults)


def _payments(cluster, partitioners=("cardId",), partitions=4, **kwargs):
    cluster.create_stream(
        "payments",
        partitioners=list(partitioners),
        partitions=partitions,
        schema=[
            ("cardId", "string"),
            ("merchantId", "string"),
            ("amount", "float"),
            ("channel", "string"),
        ],
        **kwargs,
    )


class TestBasicFlow:
    def test_single_event_reply(self):
        cluster = _cluster()
        _payments(cluster)
        metric = cluster.create_metric(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        )
        reply = cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m1", "amount": 7.0, "channel": "pos"},
            timestamp=1_000,
        )
        assert reply.value(metric, "sum(amount)") == 7.0

    def test_windowed_correctness_against_brute_force(self):
        cluster = _cluster()
        _payments(cluster)
        metric = cluster.create_metric(
            "SELECT sum(amount), count(*) FROM payments "
            "GROUP BY cardId OVER sliding 5 minutes"
        )
        rng = random.Random(3)
        history = []
        ts = 0
        for i in range(60):
            ts += rng.randrange(1, 60_000)
            card = f"c{rng.randrange(3)}"
            amount = float(rng.randrange(1, 50))
            reply = cluster.send(
                "payments",
                {"cardId": card, "merchantId": "m", "amount": amount, "channel": "pos"},
                timestamp=ts,
            )
            history.append((ts, card, amount))
            window = [
                (t, c, a) for t, c, a in history
                if c == card and t > ts - 5 * MINUTES
            ]
            assert reply.value(metric, "count(*)") == len(window)
            assert reply.value(metric, "sum(amount)") == pytest.approx(
                sum(a for _, _, a in window)
            )

    def test_multi_partitioner_fanout(self):
        cluster = _cluster()
        _payments(cluster, partitioners=("cardId", "merchantId"))
        card_metric = cluster.create_metric(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        )
        merchant_metric = cluster.create_metric(
            "SELECT avg(amount) FROM payments GROUP BY merchantId OVER sliding 5 minutes"
        )
        cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m1", "amount": 10.0, "channel": "pos"},
            timestamp=1_000,
        )
        reply = cluster.send(
            "payments",
            {"cardId": "c2", "merchantId": "m1", "amount": 20.0, "channel": "pos"},
            timestamp=2_000,
        )
        assert reply.value(card_metric, "count(*)") == 1  # c2's first event
        assert reply.value(merchant_metric, "avg(amount)") == pytest.approx(15.0)

    def test_metric_without_groupby_needs_global_partitioner(self):
        cluster = _cluster()
        _payments(cluster, with_global_partitioner=True)
        metric = cluster.create_metric(
            "SELECT count(*) FROM payments OVER sliding 5 minutes"
        )
        for i in range(3):
            reply = cluster.send(
                "payments",
                {"cardId": f"c{i}", "merchantId": "m", "amount": 1.0, "channel": "pos"},
                timestamp=(i + 1) * 1_000,
            )
        assert reply.value(metric, "count(*)") == 3

    def test_filtered_metric(self):
        cluster = _cluster()
        _payments(cluster)
        metric = cluster.create_metric(
            "SELECT count(*) FROM payments WHERE channel == 'ecom' "
            "GROUP BY cardId OVER sliding 5 minutes"
        )
        cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m", "amount": 1.0, "channel": "ecom"},
            timestamp=1_000,
        )
        reply = cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=2_000,
        )
        assert reply.value(metric, "count(*)") == 1

    def test_round_robin_over_frontends(self):
        cluster = _cluster()
        _payments(cluster)
        cluster.create_metric(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        )
        for i in range(4):
            cluster.send(
                "payments",
                {"cardId": "c", "merchantId": "m", "amount": 1.0, "channel": "pos"},
                timestamp=(i + 1) * 1_000,
            )
        received = [node.frontend.events_received for node in cluster.alive_nodes()]
        assert all(count > 0 for count in received)


class TestDDL:
    def test_duplicate_stream_rejected(self):
        cluster = _cluster()
        _payments(cluster)
        with pytest.raises(EngineError):
            _payments(cluster)

    def test_unknown_stream_metric_rejected(self):
        cluster = _cluster()
        with pytest.raises(EngineError):
            cluster.create_metric("SELECT count(*) FROM ghost OVER infinite")

    def test_partitioner_must_be_schema_field(self):
        cluster = _cluster()
        with pytest.raises(EngineError):
            cluster.create_stream(
                "s", partitioners=["nope"], schema=[("a", "int")]
            )

    def test_metric_fields_validated(self):
        cluster = _cluster()
        _payments(cluster)
        with pytest.raises(EngineError):
            cluster.create_metric(
                "SELECT sum(ghost) FROM payments GROUP BY cardId OVER infinite"
            )
        with pytest.raises(EngineError):
            cluster.create_metric(
                "SELECT count(*) FROM payments GROUP BY ghost OVER infinite"
            )
        with pytest.raises(EngineError):
            cluster.create_metric(
                "SELECT count(*) FROM payments WHERE ghost > 1 "
                "GROUP BY cardId OVER infinite"
            )

    def test_metric_needs_matching_partitioner(self):
        from repro.common.errors import QueryError

        cluster = _cluster()
        _payments(cluster)  # partitioner: cardId only
        with pytest.raises(QueryError):
            cluster.create_metric(
                "SELECT count(*) FROM payments GROUP BY merchantId OVER infinite"
            )

    def test_subset_partitioner_routing(self):
        cluster = _cluster()
        _payments(cluster)
        # group by card+merchant can ride the card topic (§4).
        metric = cluster.create_metric(
            "SELECT count(*) FROM payments GROUP BY cardId, merchantId OVER infinite"
        )
        assert cluster.catalog.metrics[metric].topic == "payments.cardId"

    def test_delete_metric(self):
        cluster = _cluster()
        _payments(cluster)
        metric = cluster.create_metric(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        )
        cluster.delete_metric(metric)
        reply = cluster.send(
            "payments",
            {"cardId": "c", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=1_000,
        )
        assert reply.metric(metric) == {}

    def test_add_partitioner_later(self):
        cluster = _cluster()
        _payments(cluster)
        cluster.add_partitioner("payments", "merchantId")
        metric = cluster.create_metric(
            "SELECT count(*) FROM payments GROUP BY merchantId OVER sliding 5 minutes"
        )
        reply = cluster.send(
            "payments",
            {"cardId": "c", "merchantId": "m1", "amount": 1.0, "channel": "pos"},
            timestamp=1_000,
        )
        assert reply.value(metric, "count(*)") == 1

    def test_schema_evolution_end_to_end(self):
        cluster = _cluster()
        _payments(cluster)
        metric = cluster.create_metric(
            "SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        )
        cluster.send(
            "payments",
            {"cardId": "c", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=1_000,
        )
        cluster.evolve_schema("payments", [("newField", "int")])
        reply = cluster.send(
            "payments",
            {"cardId": "c", "merchantId": "m", "amount": 1.0, "channel": "pos",
             "newField": 9},
            timestamp=2_000,
        )
        assert reply.value(metric, "count(*)") == 2


class TestFailureHandling:
    def _loaded_cluster(self):
        cluster = _cluster(
            nodes=3, unit_config=UnitConfig(checkpoint_interval=10)
        )
        _payments(cluster, partitions=6)
        metric = cluster.create_metric(
            "SELECT sum(amount), count(*) FROM payments "
            "GROUP BY cardId OVER sliding 30 minutes"
        )
        for i in range(40):
            cluster.send(
                "payments",
                {"cardId": f"c{i % 4}", "merchantId": "m", "amount": 1.0,
                 "channel": "pos"},
                timestamp=(i + 1) * 1_000,
            )
        return cluster, metric

    def test_state_survives_node_failure(self):
        cluster, metric = self._loaded_cluster()
        cluster.fail_node("node-0")
        cluster.run_until_quiet()
        reply = cluster.send(
            "payments",
            {"cardId": "c0", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=41_000,
        )
        assert reply.value(metric, "count(*)") == 11  # 10 before + this one

    def test_all_tasks_owned_after_failure(self):
        cluster, _ = self._loaded_cluster()
        cluster.fail_node("node-1")
        cluster.run_until_quiet()
        snapshot = cluster.assignment_snapshot()
        assert len(snapshot) == 6
        for owners in snapshot.values():
            assert not owners["active"][0].startswith("node-1")

    def test_replicas_respect_node_exclusivity(self):
        cluster, _ = self._loaded_cluster()
        for owners in cluster.assignment_snapshot().values():
            active_node = owners["active"][0].split("/")[0]
            replica_nodes = {r.split("/")[0] for r in owners["replicas"]}
            assert active_node not in replica_nodes

    def test_revived_node_rejoins_and_serves(self):
        cluster, metric = self._loaded_cluster()
        cluster.fail_node("node-2")
        cluster.run_until_quiet()
        cluster.revive_node("node-2")
        cluster.run_until_quiet()
        reply = cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=42_000,
            node_id="node-2",
        )
        assert reply.value(metric, "count(*)") >= 1

    def test_send_to_dead_node_rejected(self):
        cluster, _ = self._loaded_cluster()
        cluster.fail_node("node-0")
        with pytest.raises(EngineError):
            cluster.send(
                "payments",
                {"cardId": "c", "merchantId": "m", "amount": 1.0, "channel": "pos"},
                node_id="node-0",
            )

    def test_add_node_then_failure_uses_it(self):
        # Sticky assignment deliberately leaves a fresh node idle while
        # the budget is respected (no gratuitous data shuffle, §4.2);
        # it must take over when capacity is actually needed.
        cluster, metric = self._loaded_cluster()
        new_node = cluster.add_node(processor_units=2)
        cluster.run_until_quiet()
        cluster.fail_node("node-0")
        cluster.fail_node("node-1")
        cluster.run_until_quiet()
        owners = {
            o["active"][0].split("/")[0]
            for o in cluster.assignment_snapshot().values()
        }
        assert new_node in owners
        reply = cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=60_000,
        )
        assert reply.value(metric, "count(*)") >= 1

    def test_promotions_avoid_data_transfer(self):
        cluster, _ = self._loaded_cluster()
        before = cluster.recovery_stats()
        cluster.fail_node("node-0")
        cluster.run_until_quiet()
        after = cluster.recovery_stats()
        # Replica promotion handles most reassignments without copying.
        assert after["promotions"] > before["promotions"]


class TestBackfillEndToEnd:
    def test_backfilled_metric_matches(self):
        cluster = _cluster(nodes=1)
        _payments(cluster)
        original = cluster.create_metric(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 minutes"
        )
        for i in range(20):
            cluster.send(
                "payments",
                {"cardId": "c1", "merchantId": "m", "amount": float(i),
                 "channel": "pos"},
                timestamp=(i + 1) * 1_000,
            )
        late = cluster.create_metric(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 10 minutes",
            backfill=True,
        )
        reply = cluster.send(
            "payments",
            {"cardId": "c1", "merchantId": "m", "amount": 1.0, "channel": "pos"},
            timestamp=21_000,
        )
        assert reply.value(late, "sum(amount)") == reply.value(original, "sum(amount)")
