"""Admission-control unit tests: token buckets, caps, latency budgets.

The controller is pure bookkeeping over an injectable
:class:`~repro.common.timesource.TimeSource`, so every behavior here is
deterministic — zero real sleeping anywhere (asserted below), no
sockets. The server contract tests in ``test_server_frontdoor.py``
exercise the same code end to end over TCP.
"""

from __future__ import annotations

import time

import pytest

from repro.common.timesource import DeterministicTimeSource
from repro.server.admission import (
    AdmissionController,
    LatencyBudget,
    TenantQuota,
    TokenBucket,
)


def FakeClock(start: float = 0.0) -> DeterministicTimeSource:
    """The deterministic time plane; admission reads it, tests advance it."""
    return DeterministicTimeSource(start)


class TestTokenBucket:
    def test_starts_full_and_debits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, time_source=clock)
        assert bucket.tokens == 5.0
        assert bucket.try_take(3) == 0.0
        assert bucket.tokens == 2.0

    def test_refills_at_rate_capped_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, time_source=clock)
        bucket.try_take(5)
        clock.advance(0.25)
        assert bucket.tokens == pytest.approx(2.5)
        clock.advance(100.0)
        assert bucket.tokens == 5.0  # never above burst

    def test_refusal_returns_exact_wait_without_debit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=5.0, time_source=clock)
        bucket.try_take(5)
        wait = bucket.try_take(2)
        assert wait == pytest.approx(0.2)  # 2 tokens at 10/s
        assert bucket.tokens == 0.0  # refusal did not debit
        clock.advance(wait)
        assert bucket.try_take(2) == 0.0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=-1.0)


def make_controller(clock, **overrides) -> AdmissionController:
    defaults = dict(
        default_quota=TenantQuota(
            events_per_sec=100.0,
            burst=50,
            max_in_flight=40,
            max_connections=2,
            budget=LatencyBudget(p50_ms=10.0, p99_ms=20.0),
        ),
        max_connections=3,
        max_in_flight=60,
        max_queue_depth=4,
        time_source=clock,
    )
    defaults.update(overrides)
    return AdmissionController(**defaults)


class TestConnections:
    def test_tenant_connection_cap(self):
        admission = make_controller(FakeClock())
        assert admission.connect("a").ok
        assert admission.connect("a").ok
        refused = admission.connect("a")
        assert not refused.ok and refused.reason == "tenant-connections"
        admission.disconnect("a")
        assert admission.connect("a").ok

    def test_server_connection_cap_across_tenants(self):
        admission = make_controller(FakeClock())
        for tenant in ("a", "a", "b"):
            assert admission.connect(tenant).ok
        refused = admission.connect("c")
        assert not refused.ok and refused.reason == "server-connections"

    def test_named_quota_overrides_default(self):
        admission = make_controller(
            FakeClock(), quotas={"vip": TenantQuota(max_connections=1)}
        )
        assert admission.quota_for("vip").max_connections == 1
        assert admission.connect("vip").ok
        assert not admission.connect("vip").ok


class TestBatchAdmission:
    def test_checks_fire_in_documented_order(self):
        clock = FakeClock()
        admission = make_controller(clock)
        # 1. queue depth wins over everything else.
        shed = admission.admit("a", 1, queue_depth=4)
        assert shed.reason == "queue-depth"
        # 2. server in-flight: two tenants together exceed the server cap
        #    while each stays under its own.
        assert admission.admit("a", 35).ok
        assert admission.admit("b", 30, queue_depth=0).reason == "server-in-flight"
        admission.complete("a", 35)
        # 3. tenant in-flight.
        assert admission.admit("b", 30).ok
        assert admission.admit("b", 20).reason == "tenant-in-flight"
        admission.complete("b", 30)
        # 4. token bucket: b already spent 30 of its 50-token burst, so
        #    25 more exceed the tokens left while staying under the caps.
        shed = admission.admit("b", 25)
        assert shed.reason == "tenant-rate"
        assert shed.retry_after_ms >= 1

    def test_all_or_nothing_and_rate_recovery(self):
        clock = FakeClock()
        admission = make_controller(clock)
        assert admission.admit("a", 40).ok
        admission.complete("a", 40)
        shed = admission.admit("a", 20)  # 10 tokens left of burst 50
        assert shed.reason == "tenant-rate"
        # The refusal names the exact wait for the full batch (100/s).
        assert shed.retry_after_ms == 100
        clock.advance(0.1)
        assert admission.admit("a", 20).ok

    def test_ledger_counts_admitted_and_shed(self):
        admission = make_controller(FakeClock())
        admission.admit("a", 10)
        admission.admit("a", 100)  # over tenant in-flight: shed
        stats = admission.stats()
        assert stats["in_flight"] == 10
        assert stats["shed_batches"] == 1
        tenant = stats["tenants"]["a"]
        assert tenant["admitted_events"] == 10
        assert tenant["shed_events"] == 100
        admission.complete("a", 10)
        assert admission.stats()["in_flight"] == 0

    def test_complete_never_goes_negative(self):
        admission = make_controller(FakeClock())
        admission.complete("ghost", 5)
        stats = admission.stats()
        assert stats["in_flight"] == 0
        assert stats["tenants"]["ghost"]["in_flight"] == 0


class TestLatencyBudgets:
    def test_observed_percentiles_vs_budget(self):
        admission = make_controller(FakeClock())
        admission.admit("a", 200)
        for _ in range(90):
            admission.complete("a", 1, latency_ms=5.0)
        for _ in range(10):
            admission.complete("a", 1, latency_ms=500.0)
        tenant = admission.stats()["tenants"]["a"]
        assert tenant["observed_p50_ms"] <= 10.0
        assert tenant["observed_p99_ms"] > 20.0
        assert tenant["within_p50_budget"] is True
        assert tenant["within_p99_budget"] is False
        assert tenant["budget_p50_ms"] == 10.0
        assert tenant["budget_p99_ms"] == 20.0

    def test_no_samples_reports_zero_within_budget(self):
        admission = make_controller(FakeClock())
        admission.connect("quiet")
        tenant = admission.stats()["tenants"]["quiet"]
        assert tenant["observed_p50_ms"] == 0.0
        assert tenant["within_p99_budget"] is True


class TestDeterministicRetryAfter:
    def test_exact_retry_schedule_with_zero_real_sleeping(self):
        # The satellite regression for the old `clock: Callable` params
        # default-bound to time.monotonic at import: a deterministic
        # source must drive the *exact* retry_after_ms schedule while
        # the test spends no measurable real time waiting.
        wall_started = time.perf_counter()
        ts = FakeClock()
        admission = make_controller(ts)
        # Drain the 50-token burst (in two takes: in-flight cap is 40).
        for take in (40, 10):
            assert admission.admit("a", take).ok
            admission.complete("a", take)
        # 100 ev/s: n missing tokens cost exactly n*10 ms, always.
        for missing in (1, 7, 40):
            shed = admission.admit("a", missing)
            assert shed.reason == "tenant-rate"
            assert shed.retry_after_ms == missing * 10
        # Advancing virtual time by the hinted wait admits exactly that
        # batch — a shorter advance still refuses with the remainder.
        shed = admission.admit("a", 20)
        assert shed.retry_after_ms == 200
        ts.advance(0.1)
        assert admission.admit("a", 20).retry_after_ms == 100
        ts.advance(0.1)
        assert admission.admit("a", 20).ok
        assert time.perf_counter() - wall_started < 0.5

    def test_construction_reads_injected_source_not_import_time(self):
        # Buckets built from a source that starts deep in virtual time
        # must anchor refill at *that* time (the import-time binding bug
        # would anchor at process start and grant a huge refill).
        ts = FakeClock(start=1_000_000.0)
        bucket = TokenBucket(rate=1.0, burst=10.0, time_source=ts)
        bucket.try_take(10)
        assert bucket.tokens == 0.0
        ts.advance(5.0)
        assert bucket.tokens == 5.0
