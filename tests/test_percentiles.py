"""Latency recorder tests: accuracy against exact percentiles."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.percentiles import PERCENTILE_GRID, LatencyRecorder


def _exact_percentile(samples, pct):
    ordered = sorted(samples)
    if pct == 0:
        return ordered[0]
    rank = min(len(ordered) - 1, max(0, int(pct / 100.0 * len(ordered)) - 1))
    return ordered[rank]


class TestBasics:
    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.count == 0
        assert recorder.percentile(50) == 0.0
        assert recorder.mean == 0.0

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(5.0)
        assert recorder.percentile(0) == 5.0
        assert recorder.percentile(100) == 5.0
        assert recorder.max_value == 5.0
        assert recorder.min_value == 5.0

    def test_counted_records(self):
        recorder = LatencyRecorder()
        recorder.record(1.0, count=10)
        assert recorder.count == 10

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(1.0, count=0)

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().percentile(101)

    def test_len_is_count(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        recorder.record(2.0)
        assert len(recorder) == 2


class TestAccuracy:
    def test_relative_error_bound_uniform(self):
        rng = random.Random(1)
        recorder = LatencyRecorder(relative_error=0.01)
        samples = [rng.uniform(0.1, 1000.0) for _ in range(20_000)]
        for sample in samples:
            recorder.record(sample)
        for pct in (50.0, 95.0, 99.0, 99.9):
            exact = _exact_percentile(samples, pct)
            estimate = recorder.percentile(pct)
            assert abs(estimate - exact) / exact < 0.05

    def test_lognormal_tail(self):
        rng = random.Random(2)
        recorder = LatencyRecorder()
        samples = [rng.lognormvariate(1.0, 1.0) for _ in range(50_000)]
        for sample in samples:
            recorder.record(sample)
        exact = _exact_percentile(samples, 99.9)
        assert abs(recorder.percentile(99.9) - exact) / exact < 0.05

    def test_max_is_exact(self):
        recorder = LatencyRecorder()
        for value in (1.0, 99.5, 3.0):
            recorder.record(value)
        assert recorder.percentile(100) == 99.5

    def test_mean_is_exact(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.mean == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=300))
    @settings(max_examples=50)
    def test_percentiles_monotone(self, samples):
        recorder = LatencyRecorder()
        for sample in samples:
            recorder.record(sample)
        values = [recorder.percentile(p) for p in PERCENTILE_GRID]
        assert all(values[i] <= values[i + 1] + 1e-9 for i in range(len(values) - 1))


class TestCoordinatedOmission:
    def test_correction_adds_phantom_samples(self):
        recorder = LatencyRecorder()
        recorder.record_corrected(100.0, expected_interval_ms=10.0)
        # 100ms stall at 10ms cadence: 9 phantoms (90, 80, ... 10).
        assert recorder.count == 10

    def test_no_correction_below_interval(self):
        recorder = LatencyRecorder()
        recorder.record_corrected(5.0, expected_interval_ms=10.0)
        assert recorder.count == 1

    def test_zero_interval_means_no_correction(self):
        recorder = LatencyRecorder()
        recorder.record_corrected(100.0, expected_interval_ms=0.0)
        assert recorder.count == 1

    def test_correction_raises_high_percentiles(self):
        plain = LatencyRecorder()
        corrected = LatencyRecorder()
        for _ in range(1000):
            plain.record(1.0)
            corrected.record_corrected(1.0, 10.0)
        plain.record(1000.0)
        corrected.record_corrected(1000.0, 10.0)
        assert corrected.percentile(95.0) > plain.percentile(95.0)


class TestMerge:
    def test_merge_combines_counts(self):
        a = LatencyRecorder()
        b = LatencyRecorder()
        for value in (1.0, 2.0):
            a.record(value)
        for value in (3.0, 400.0):
            b.record(value)
        a.merge(b)
        assert a.count == 4
        assert a.max_value == 400.0
        assert a.percentile(100) == 400.0

    def test_merge_geometry_mismatch(self):
        a = LatencyRecorder(relative_error=0.01)
        b = LatencyRecorder(relative_error=0.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_equals_combined_recording(self):
        rng = random.Random(3)
        combined = LatencyRecorder()
        parts = [LatencyRecorder() for _ in range(4)]
        for _ in range(4000):
            value = rng.lognormvariate(0.5, 0.8)
            combined.record(value)
            parts[rng.randrange(4)].record(value)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        # Same buckets -> merged loses only the exact-count split, so
        # percentiles differ by at most bucket width from full-combined.
        for pct in (50.0, 99.0):
            assert merged.count + combined.count == 2 * combined.count


class TestSummary:
    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(10.0)
        summary = recorder.summary()
        assert set(summary) == {"count", "mean", "p50", "p95", "p99", "p99.9", "max"}
        assert summary["count"] == 1.0
