"""Engine delivery semantics: exactly-once, out-of-order, checkpoints."""

import pytest

from repro.engine import RailgunCluster
from repro.engine.processor import UnitConfig
from repro.reservoir.reservoir import OutOfOrderPolicy, ReservoirConfig


def _cluster(**reservoir_kwargs):
    config = UnitConfig(
        checkpoint_interval=10,
        reservoir=ReservoirConfig(chunk_max_events=8, **reservoir_kwargs),
    )
    cluster = RailgunCluster(nodes=1, processor_units=1, unit_config=config)
    cluster.create_stream(
        "s", partitioners=["k"], partitions=2,
        schema=[("k", "string"), ("v", "float")],
    )
    metric = cluster.create_metric(
        "SELECT count(*), sum(v) FROM s GROUP BY k OVER sliding 10 minutes"
    )
    return cluster, metric


class TestExactlyOnce:
    def test_client_retry_not_double_counted(self):
        cluster, metric = _cluster()
        first = cluster.send("s", {"k": "a", "v": 1.0}, timestamp=1_000,
                             event_id="retry-me")
        retry = cluster.send("s", {"k": "a", "v": 1.0}, timestamp=1_000,
                             event_id="retry-me")
        assert first.value(metric, "count(*)") == 1
        # The retry still gets a reply, but state is unchanged.
        assert retry.value(metric, "count(*)") == 1
        assert retry.value(metric, "sum(v)") == 1.0

    def test_distinct_events_counted(self):
        cluster, metric = _cluster()
        cluster.send("s", {"k": "a", "v": 1.0}, timestamp=1_000, event_id="e1")
        reply = cluster.send("s", {"k": "a", "v": 1.0}, timestamp=2_000,
                             event_id="e2")
        assert reply.value(metric, "count(*)") == 2


class TestOutOfOrderAtClusterLevel:
    def test_rewrite_policy_keeps_event(self):
        cluster, metric = _cluster(ooo_policy=OutOfOrderPolicy.REWRITE)
        for i in range(20):
            cluster.send("s", {"k": "a", "v": 1.0}, timestamp=(i + 1) * 1_000)
        # Far in the past: chunk long closed -> rewritten, still counted.
        reply = cluster.send("s", {"k": "a", "v": 1.0}, timestamp=500)
        assert reply.value(metric, "count(*)") == 21

    def test_discard_policy_drops_event_but_replies(self):
        cluster, metric = _cluster(ooo_policy=OutOfOrderPolicy.DISCARD)
        for i in range(20):
            cluster.send("s", {"k": "a", "v": 1.0}, timestamp=(i + 1) * 1_000)
        reply = cluster.send("s", {"k": "a", "v": 1.0}, timestamp=500)
        assert reply.value(metric, "count(*)") == 20  # dropped, not counted

    def test_slightly_late_event_enters_window(self):
        cluster, metric = _cluster()
        cluster.send("s", {"k": "a", "v": 1.0}, timestamp=10_000)
        cluster.send("s", {"k": "a", "v": 1.0}, timestamp=12_000)
        # Late but within the open chunk's range: inserted in order.
        reply = cluster.send("s", {"k": "a", "v": 1.0}, timestamp=11_000)
        assert reply.value(metric, "count(*)") == 3


class TestCheckpointsInCluster:
    def test_checkpoints_announced_on_topic(self):
        from repro.engine.catalog import CHECKPOINTS_TOPIC
        from repro.messaging.log import TopicPartition

        cluster, _ = _cluster()
        for i in range(30):
            cluster.send("s", {"k": f"k{i}", "v": 1.0}, timestamp=(i + 1) * 1_000)
        announcements = cluster.bus.end_offset(TopicPartition(CHECKPOINTS_TOPIC, 0))
        assert announcements > 0
        assert cluster.recovery_stats()["checkpoints_taken"] > 0

    def test_replicas_track_actives(self):
        config = UnitConfig(checkpoint_interval=10)
        cluster = RailgunCluster(
            nodes=2, processor_units=1, replication_factor=1, brokers=2,
            unit_config=config,
        )
        cluster.create_stream(
            "s", partitioners=["k"], partitions=2,
            schema=[("k", "string"), ("v", "float")],
        )
        cluster.create_metric(
            "SELECT count(*) FROM s GROUP BY k OVER sliding 10 minutes"
        )
        for i in range(20):
            cluster.send("s", {"k": f"k{i % 3}", "v": 1.0},
                         timestamp=(i + 1) * 1_000)
        cluster.run_until_quiet()
        # Every task processor exists twice (active + replica) and the
        # replica's offset equals the active's.
        offsets: dict[str, list[int]] = {}
        for node in cluster.alive_nodes():
            for unit in node.units:
                for tp, processor in unit.task_processors.items():
                    offsets.setdefault(str(tp), []).append(processor.next_offset)
        for tp, values in offsets.items():
            assert len(values) == 2, f"{tp} not replicated"
            assert values[0] == values[1], f"{tp} replica lags"
