"""Stable-hashing tests: reproducibility and dispersion."""

import pytest
from hypothesis import given, strategies as st

from repro.common.hashing import fnv1a_64, partition_for, stable_hash


class TestFnv:
    def test_known_stability(self):
        # Pin a few digests: these must never change across versions, or
        # persisted partition routing would silently break.
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == fnv1a_64(b"a")
        assert fnv1a_64(b"a") != fnv1a_64(b"b")

    def test_seed_changes_hash(self):
        assert fnv1a_64(b"key", seed=1) != fnv1a_64(b"key", seed=2)

    @given(st.binary(max_size=64))
    def test_fits_64_bits(self, data):
        assert 0 <= fnv1a_64(data) < 2**64


class TestStableHash:
    @pytest.mark.parametrize(
        "key", [None, True, False, 0, -5, 12345678901234567890, 3.14, "card-1", b"raw"]
    )
    def test_supported_types(self, key):
        assert stable_hash(key) == stable_hash(key)

    def test_bool_not_confused_with_int(self):
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(False) != stable_hash(0)

    def test_str_and_bytes_equivalent_encoding(self):
        assert stable_hash("abc") == stable_hash(b"abc")

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            stable_hash(["list"])


class TestPartitionFor:
    @given(st.text(min_size=1, max_size=20), st.integers(min_value=1, max_value=64))
    def test_in_range(self, key, partitions):
        assert 0 <= partition_for(key, partitions) < partitions

    def test_same_key_same_partition(self):
        # The Kafka guarantee Railgun's entity locality relies on (§4).
        assert all(
            partition_for("card-7", 8) == partition_for("card-7", 8)
            for _ in range(10)
        )

    def test_dispersion_over_many_keys(self):
        counts = [0] * 8
        for i in range(8000):
            counts[partition_for(f"key-{i}", 8)] += 1
        # Every partition gets a meaningful share (no dead partitions).
        assert min(counts) > 8000 / 8 / 2

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            partition_for("x", 0)
