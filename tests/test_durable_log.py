"""The durable segmented log store: format, recovery, truncation.

Covers the disk layer bottom-up:

- segment/record framing round-trips, sparse-index reads, segment rolls;
- **torn-write fuzz**: the active segment truncated at *every* byte
  boundary, and corrupted at every byte, must reopen to exactly the
  prefix of whole records — no exception, no torn record surfaced;
- checkpoint-aware truncation (``truncate_below``) and consistent-cut
  rollback (``truncate_to``);
- the value codec (events, envelopes, DDL ops) and the ``DurableBus``
  reopen path (topics, logs, committed offsets, ``messages_published``).
"""

from __future__ import annotations

import os

import pytest

from repro.common import serde
from repro.engine.catalog import (
    AddPartitionerOp,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    MetricDef,
    StreamDef,
)
from repro.engine.envelope import EventEnvelope, ReplyEnvelope
from repro.events.event import Event
from repro.messaging.durable import (
    DurableBus,
    DurableLog,
    read_cut,
    read_payload,
    write_cut,
    write_payload,
)
from repro.messaging.log import TopicPartition
from repro.messaging.segments import FsyncPolicy, SegmentConfig, SegmentedLog

TP = TopicPartition("tx.cardId", 0)


def small_config(**overrides) -> SegmentConfig:
    defaults = dict(
        segment_bytes=400, flush_bytes=64, index_interval=4,
        fsync=FsyncPolicy.BATCH,
    )
    defaults.update(overrides)
    return SegmentConfig(**defaults)


class TestSegmentedLog:
    def test_append_read_roundtrip_across_segments(self, tmp_path):
        log = SegmentedLog(str(tmp_path / "log"), small_config())
        payloads = [f"payload-{i:04d}".encode() for i in range(100)]
        for index, payload in enumerate(payloads):
            assert log.append(payload) == index
        log.flush()
        assert len(log.segment_spans()) > 1  # rolled at least once
        assert [p for _, p in log.records(0)] == payloads
        # Mid-stream reads hit the sparse index, not a full scan.
        assert [p for _, p in log.records(73)] == payloads[73:]
        assert [p for _, p in log.records(73, max_records=5)] == payloads[73:78]

    def test_reopen_recovers_counts_and_contents(self, tmp_path):
        root = str(tmp_path / "log")
        log = SegmentedLog(root, small_config())
        for i in range(57):
            log.append(f"r{i}".encode())
        log.close()
        reopened = SegmentedLog(root, small_config())
        assert reopened.end_offset == 57
        assert [p for _, p in reopened.records(50)] == [
            f"r{i}".encode() for i in range(50, 57)
        ]
        # Appends continue at the recovered end offset.
        assert reopened.append(b"next") == 57

    def test_index_is_advisory(self, tmp_path):
        root = str(tmp_path / "log")
        log = SegmentedLog(root, small_config())
        for i in range(40):
            log.append(f"r{i}".encode())
        log.close()
        for name in os.listdir(root):
            if name.endswith(".idx"):
                os.remove(os.path.join(root, name))
        reopened = SegmentedLog(root, small_config())
        assert [p for _, p in reopened.records(31)] == [
            f"r{i}".encode() for i in range(31, 40)
        ]

    def test_truncate_below_deletes_whole_segments_only(self, tmp_path):
        log = SegmentedLog(str(tmp_path / "log"), small_config())
        for i in range(100):
            log.append(f"r{i}".encode())
        log.flush()
        spans = log.segment_spans()
        target = spans[2][0] + 1  # inside the third segment
        start = log.truncate_below(target)
        assert start == spans[2][0]  # partial segments survive whole
        assert [o for o, _ in log.records(0)][0] == start
        # Records at and above the offset are always retained.
        assert dict(log.records(target))[target] == f"r{target}".encode()
        # Disk agrees: the deleted segments' files are gone.
        bases = sorted(
            int(name[4:-4])
            for name in os.listdir(str(tmp_path / "log"))
            if name.endswith(".log")
        )
        assert bases[0] == start

    def test_truncate_to_rolls_back_the_tail(self, tmp_path):
        root = str(tmp_path / "log")
        log = SegmentedLog(root, small_config())
        for i in range(90):
            log.append(f"r{i}".encode())
        log.flush()
        log.truncate_to(41)
        assert log.end_offset == 41
        assert [o for o, _ in log.records(38)] == [38, 39, 40]
        assert log.append(b"new") == 41
        log.flush()
        reopened = SegmentedLog(root, small_config())
        records = dict(reopened.records(0))
        assert records[41] == b"new" and max(records) == 41

    def test_truncate_to_segment_boundary_and_zero(self, tmp_path):
        log = SegmentedLog(str(tmp_path / "log"), small_config())
        for i in range(60):
            log.append(f"r{i}".encode())
        log.flush()
        boundary = log.segment_spans()[1][0]
        log.truncate_to(boundary)
        assert log.end_offset == boundary
        log.truncate_to(0)
        assert log.end_offset == 0
        assert log.append(b"fresh") == 0


def _frame_ends(data: bytes) -> list[int]:
    """End positions of the complete frames inside ``data``."""
    ends = []
    position = 0
    while position < len(data):
        crc, after = serde.read_u32(data, position)
        length, body_start = serde.read_varint(data, after)
        end = body_start + length
        if end > len(data):
            break
        ends.append(end)
        position = end
    return ends


class TestTornWriteFuzz:
    """Truncate/corrupt a live segment at every byte boundary."""

    def build(self, tmp_path):
        cfg = small_config(segment_bytes=4096)  # one (active) segment
        root = str(tmp_path / "log")
        log = SegmentedLog(root, cfg)
        payloads = [f"record-{i:03d}-{'x' * (i % 7)}".encode() for i in range(24)]
        for payload in payloads:
            log.append(payload)
        log.close()
        (seg_file,) = [
            os.path.join(root, name)
            for name in os.listdir(root)
            if name.endswith(".log")
        ]
        with open(seg_file, "rb") as handle:
            original = handle.read()
        return cfg, root, payloads, seg_file, original

    def test_truncation_at_every_byte_boundary(self, tmp_path):
        cfg, root, payloads, seg_file, original = self.build(tmp_path)
        ends = _frame_ends(original)
        for cut in range(len(original) + 1):
            with open(seg_file, "wb") as handle:
                handle.write(original[:cut])
            reopened = SegmentedLog(root, cfg)
            expected = sum(1 for end in ends if end <= cut)
            recovered = [payload for _, payload in reopened.records(0)]
            assert recovered == payloads[:expected], f"cut at byte {cut}"
            assert reopened.end_offset == expected
            # The file itself was truncated to the last whole record.
            assert os.path.getsize(seg_file) == (
                ends[expected - 1] if expected else 0
            )

    def test_corruption_at_every_byte(self, tmp_path):
        cfg, root, payloads, seg_file, original = self.build(tmp_path)
        ends = _frame_ends(original)
        for position in range(len(original)):
            corrupted = bytearray(original)
            corrupted[position] ^= 0x5A
            with open(seg_file, "wb") as handle:
                handle.write(bytes(corrupted))
            reopened = SegmentedLog(root, cfg)
            # Recovery stops at the frame containing the flipped byte:
            # exactly the frames wholly before it survive.
            expected = sum(1 for end in ends if end <= position)
            recovered = [payload for _, payload in reopened.records(0)]
            assert recovered == payloads[:expected], f"flip at byte {position}"

    def test_torn_append_after_recovery_continues_cleanly(self, tmp_path):
        cfg, root, payloads, seg_file, original = self.build(tmp_path)
        with open(seg_file, "wb") as handle:
            handle.write(original[:-3])  # torn final record
        reopened = SegmentedLog(root, cfg)
        offset = reopened.append(b"after-recovery")
        assert offset == len(payloads) - 1  # replaces the torn record
        reopened.flush()
        final = SegmentedLog(root, cfg)
        assert dict(final.records(0))[offset] == b"after-recovery"


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            -42,
            3.5,
            "text",
            b"bytes",
            ("unit-1", "node-0", "tx.cardId-0", 17),
            Event("e1", 123, {"cardId": "c1", "amount": 4.5, "flag": None}),
            EventEnvelope(
                "tx", Event("e2", 5, {"k": 1}), "node-0", 77, 2
            ),
            ReplyEnvelope(
                9, "e3", TP, {0: {"sum(amount)": 10.0, "count(*)": 3}}
            ),
            CreateStreamOp(
                StreamDef("tx", (("cardId", "string"),), ("cardId",), 4)
            ),
            CreateMetricOp(MetricDef(1, "SELECT count(*) FROM tx", "tx", "t", True)),
            DeleteMetricOp(3),
            EvolveSchemaOp("tx", (("country", "string"),)),
            AddPartitionerOp("tx", "country"),
        ],
    )
    def test_roundtrip(self, value):
        buf = bytearray()
        write_payload(buf, value)
        decoded, end = read_payload(memoryview(bytes(buf)), 0)
        assert decoded == value
        assert end == len(buf)


class TestDurableLog:
    def test_reopen_rebuilds_messages(self, tmp_path):
        root = str(tmp_path / "tp")
        log = DurableLog(TP, root, config=small_config())
        events = [Event(f"e{i}", i, {"amount": float(i)}) for i in range(30)]
        for index, event in enumerate(events):
            assert log.append(index, event, event.timestamp) == index
        log.close()
        reopened = DurableLog(TP, root, config=small_config())
        assert reopened.end_offset == 30
        message = reopened.read(12, 1)[0]
        assert message.offset == 12 and message.key == 12
        assert message.value == events[12]

    def test_reads_clamp_to_retention_start(self, tmp_path):
        log = DurableLog(TP, str(tmp_path / "tp"), config=small_config())
        for i in range(80):
            log.append(None, ("v", i), i)
        start = log.truncate_below(50)
        assert 0 < start <= 50
        records = log.read(0, 10)
        assert records[0].offset == start
        assert log.read(60, 3)[0].value == ("v", 60)


class TestConsistentCut:
    def test_cut_roundtrip_and_missing(self, tmp_path):
        root = str(tmp_path)
        assert read_cut(root) == (0, {})
        write_cut(root, 7, {TP: 31})
        assert read_cut(root) == (7, {TP: 31})
        write_cut(root, 9, {TP: 40})  # atomically replaced
        assert read_cut(root) == (9, {TP: 40})

    def test_torn_cut_is_ignored(self, tmp_path):
        root = str(tmp_path)
        write_cut(root, 7, {TP: 31})
        path = os.path.join(root, "cut.meta")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 2)
        assert read_cut(root) == (0, {})


class TestDurableBus:
    def test_reopen_recovers_topics_logs_and_commits(self, tmp_path):
        root = str(tmp_path / "bus")
        bus = DurableBus(root, segment_bytes=512)
        bus.create_topic("tx.cardId", 2)
        bus.create_topic("__operations", 1)
        for i in range(60):
            bus.publish(
                "tx.cardId", f"c{i % 5}",
                Event(f"e{i}", i, {"cardId": f"c{i % 5}"}), i,
            )
        bus.commit_offset("railgun-active", TP, 11)
        bus.close()

        reopened = DurableBus(root)
        assert reopened.recovered
        assert reopened.partitions_for("tx.cardId") == 2
        assert reopened.partitions_for("__operations") == 1
        total = sum(
            reopened.end_offset(tp)
            for tp in reopened.topic_partitions("tx.cardId")
        )
        assert total == 60
        assert reopened.committed_offset("railgun-active", TP) == 11
        assert reopened.messages_published == 60
        # DDL re-runs against a recovered bus are no-ops, not duplicates.
        reopened.create_topic("tx.cardId", 2)
        third = DurableBus(root)
        assert third.partitions_for("tx.cardId") == 2

    def test_truncate_below_bounds_disk(self, tmp_path):
        root = str(tmp_path / "bus")
        bus = DurableBus(root, segment_bytes=512)
        bus.create_topic("tx.cardId", 1)
        for i in range(300):
            bus.publish("tx.cardId", None, ("r", i), i)
        bus.flush()
        before = bus.disk_bytes()
        bus.truncate_below({TP: 250})
        after = bus.disk_bytes()
        assert after < before
        spans = bus.segment_spans()[TP]
        assert spans[0][0] > 0
        # Every completed segment reaches past the truncation offset.
        assert all(end > 250 for _, end in spans[:-1])

    def test_unsupported_value_is_rejected(self, tmp_path):
        from repro.common.errors import MessagingError

        bus = DurableBus(str(tmp_path / "bus"))
        bus.create_topic("t", 1)
        with pytest.raises(MessagingError):
            bus.publish("t", None, object(), 1)
