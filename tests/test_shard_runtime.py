"""Shard runtime tests: wire protocol, worker, supervisor, ParallelCluster.

The process-parallel engine must be observably identical to the
single-process engine: same reply values for the same events, same
aggregate stats — through worker crashes (restart + replay of the
uncommitted tail, no duplicated client reply), rebalances (workers
added/removed mid-stream), schema evolution across the process boundary,
and checkpoint reporting.
"""

from __future__ import annotations

import time

import pytest

from repro.common.errors import EngineError
from repro.engine.catalog import MetricDef, StreamDef
from repro.engine.cluster import RailgunCluster, create_cluster
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.consumer import PartitionView
from repro.messaging.log import TopicPartition
from repro.shard import wire
from repro.shard.parallel import ParallelCluster
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import ShardWorker

STREAM_KW = dict(partitions=4, schema={"cardId": "string", "amount": "float"})
METRIC = (
    "SELECT sum(amount), count(*), avg(amount) FROM tx GROUP BY cardId "
    "OVER sliding 5 minutes"
)


def make_events(count, prefix="e", start_ts=1000):
    return [
        Event(
            f"{prefix}{i}", start_ts + i,
            {"cardId": f"c{i % 5}", "amount": float(i % 17)},
        )
        for i in range(count)
    ]


def single_process_results(events, metrics=(METRIC,), evolve_at=None):
    """Ground truth: the cooperative engine, one event at a time."""
    cluster = RailgunCluster(nodes=1, processor_units=2)
    cluster.create_stream("tx", ["cardId"], **STREAM_KW)
    for metric in metrics:
        cluster.create_metric(metric)
    cluster.run_until_quiet()
    results = []
    for index, event in enumerate(events):
        if evolve_at is not None and index == evolve_at:
            cluster.evolve_schema("tx", {"country": "string"})
            cluster.run_until_quiet()
        results.append(cluster.send("tx", event=event).results)
    return results


# -- wire protocol ------------------------------------------------------------


class TestWireProtocol:
    def roundtrip(self, msg):
        return wire.decode(wire.encode(msg))

    def test_control_messages_roundtrip(self):
        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 4
        )
        metric = MetricDef(3, METRIC, "tx", "tx.cardId", True)
        for msg in [
            wire.CreateStream(stream),
            wire.CreateMetric(metric),
            wire.DeleteMetric(7),
            wire.EvolveSchema("tx", (("country", "string"),)),
            wire.AddPartitioner("tx", "country"),
            wire.AssignPartitions(
                (TopicPartition("tx.cardId", 0), TopicPartition("tx.cardId", 3))
            ),
            wire.CheckpointRequest(12),
            wire.Shutdown(),
            wire.Crash(),
            wire.WorkerError("boom\n  at line 1"),
        ]:
            assert self.roundtrip(msg) == msg

    def test_work_batch_roundtrip_preserves_events(self):
        records = [
            (10, Event("a", 5, {"cardId": "c1", "amount": 2.5})),
            (11, Event("b", 6, {"cardId": None, "amount": -17})),
            (12, Event("ç🚂", 7, {"amount": 1e-9, "flag": True, "blob": b"\x00\xff"})),
        ]
        decoded = self.roundtrip(wire.WorkBatch(TopicPartition("t", 1), 11, records))
        assert decoded.tp == TopicPartition("t", 1)
        assert decoded.reply_from == 11
        assert [(o, e) for o, e in decoded.records] == records
        # Field insertion order survives the string-table interning.
        assert decoded.records[2][1].field_names() == ["amount", "flag", "blob"]

    def test_batch_done_roundtrip_preserves_results(self):
        replies = [
            (4, {0: {"sum(amount)": 1.5, "count(*)": 2}, 1: {"max(amount)": None}}),
            (5, None),
            (6, {0: {"sum(amount)": -3, "count(*)": 0}}),
        ]
        msg = wire.BatchDone(TopicPartition("t", 0), 7, 3, replies)
        decoded = self.roundtrip(msg)
        assert decoded.next_offset == 7
        assert decoded.processed == 3
        assert decoded.replies == replies

    def test_unknown_tag_rejected(self):
        from repro.common.errors import SerdeError

        with pytest.raises(SerdeError):
            wire.decode(b"\xee")
        with pytest.raises(SerdeError):
            wire.decode(b"")


# -- worker (in-process) ------------------------------------------------------


class TestShardWorker:
    def worker_with_stream(self):
        worker = ShardWorker("w0")
        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 2
        )
        worker.handle_control(wire.CreateStream(stream))
        worker.handle_control(
            wire.CreateMetric(MetricDef(0, METRIC, "tx", "tx.cardId", False))
        )
        tp = TopicPartition("tx.cardId", 0)
        worker.handle_control(wire.AssignPartitions((tp,)))
        return worker, tp

    def test_work_produces_replies_above_watermark(self):
        worker, tp = self.worker_with_stream()
        records = list(enumerate(make_events(10)))
        done = worker.handle_work(wire.WorkBatch(tp, 4, records))
        assert done.next_offset == 10
        assert done.processed == 10
        assert [offset for offset, _ in done.replies] == [4, 5, 6, 7, 8, 9]
        assert all(results is not None for _, results in done.replies)

    def test_unknown_topic_raises(self):
        worker = ShardWorker("w0")
        with pytest.raises(KeyError):
            worker.handle_work(
                wire.WorkBatch(TopicPartition("nope", 0), 0, [(0, Event("x", 1, {}))])
            )

    def test_revoked_tasks_dropped(self):
        worker, tp = self.worker_with_stream()
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(make_events(5)))))
        assert tp in worker.task_processors
        worker.handle_control(wire.AssignPartitions(()))
        assert not worker.task_processors

    def test_checkpoint_offsets(self):
        worker, tp = self.worker_with_stream()
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(make_events(7)))))
        assert worker.checkpoint_offsets() == {tp: 7}


# -- supervisor ---------------------------------------------------------------


class TestShardSupervisor:
    def test_sticky_assignment_across_worker_changes(self):
        with ShardSupervisor(workers=2) as supervisor:
            tasks = [TopicPartition("t", i) for i in range(8)]
            first = supervisor.assign(tasks)
            assert sorted(len(owned) for owned in first.values()) == [4, 4]
            supervisor.add_worker()
            second = supervisor.assign(tasks)
            # Sticky: at most the rebalanced-away tasks moved.
            for worker_id, owned in first.items():
                assert len(owned & second[worker_id]) >= 2
            assert set().union(*second.values()) == set(tasks)

    def test_worker_error_is_captured_and_worker_restarted(self):
        with ShardSupervisor(workers=1) as supervisor:
            tp = TopicPartition("ghost", 0)
            supervisor.assign([tp])
            supervisor.submit(tp, [(0, Event("x", 1, {}))], 0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not supervisor.restarts:
                supervisor.poll(timeout=0.05)
            assert supervisor.restarts == 1
            assert any("ghost" in err for err in supervisor.worker_errors)


# -- PartitionView ------------------------------------------------------------


class TestPartitionView:
    def test_poll_commit_seek(self):
        bus = MessageBus()
        bus.create_topic("t", partitions=1)
        tp = TopicPartition("t", 0)
        for i in range(5):
            bus.publish("t", key=None, value=i, timestamp=i)
        view = PartitionView(bus, "g")
        view.set_assignment([tp])
        messages = view.poll_one(tp, 3)
        assert [m.value for m in messages] == [0, 1, 2]
        assert view.position(tp) == 3
        view.commit(tp, 3)
        assert view.committed(tp) == 3
        assert view.lag() == 2
        view.seek(tp, 0)
        assert [m.value for m in view.poll_one(tp, 10)] == [0, 1, 2, 3, 4]
        # A fresh view starts at the committed offset (cross-restart).
        fresh = PartitionView(bus, "g")
        fresh.set_assignment([tp])
        assert fresh.position(tp) == 3


# -- ParallelCluster ----------------------------------------------------------


class TestParallelClusterEquivalence:
    def test_replies_and_stats_match_single_process(self):
        events = make_events(120)
        expected = single_process_results(events)
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            replies = cluster.send_batch("tx", events)
            assert [r.results for r in replies] == expected
            assert [r.event for r in replies] == events
            # Same aggregate stats: every event processed exactly once.
            assert cluster.total_messages_processed() == len(events)
            assert sum(
                stats["replies_sent"]
                for stats in cluster.supervisor.stats().values()
            ) == len(events)

    def test_single_event_send_and_field_mapping(self):
        with ParallelCluster(workers=1) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric("SELECT count(*) FROM tx GROUP BY cardId "
                                  "OVER sliding 1 minutes")
            first = cluster.send("tx", fields={"cardId": "c1", "amount": 1.0})
            second = cluster.send("tx", fields={"cardId": "c1", "amount": 2.0})
            assert first.value(0, "count(*)") == 1
            assert second.value(0, "count(*)") == 2

    def test_delete_metric_applies_to_workers(self):
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            metric_id = cluster.create_metric(METRIC)
            keep = cluster.create_metric(
                "SELECT count(*) FROM tx GROUP BY cardId OVER sliding 1 minutes"
            )
            cluster.send_batch("tx", make_events(20))
            cluster.delete_metric(metric_id)
            reply = cluster.send(
                "tx", event=Event("after", 5000, {"cardId": "c0", "amount": 1.0})
            )
            assert metric_id not in reply.results
            assert keep in reply.results

    def test_factory_modes(self):
        single = create_cluster("single", nodes=1, processor_units=1)
        assert isinstance(single, RailgunCluster)
        with create_cluster("process", workers=1) as parallel:
            assert isinstance(parallel, ParallelCluster)
        with pytest.raises(EngineError):
            create_cluster("threads")


class TestParallelClusterFailures:
    def test_worker_crash_mid_batch_replays_uncommitted(self):
        events = make_events(300)
        expected = single_process_results(events)
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            # Publish everything up front, then crash a worker while its
            # batches are in flight: the fan-out is on the bus, half the
            # replies are not.
            correlations = cluster.frontend.send_batch("tx", events)
            while len(cluster.frontend.completed) < 80:
                cluster.pump()
            victim = cluster.worker_ids()[0]
            cluster.kill_worker(victim)
            deadline = time.monotonic() + 30.0
            while (
                len(cluster.frontend.completed) < len(events)
                and time.monotonic() < deadline
            ):
                cluster.pump()
            results = [
                cluster.frontend.take_completed(c).results for c in correlations
            ]
            assert results == expected
            assert cluster.supervisor.restarts == 1
            # The uncommitted tail replayed: the restarted worker
            # reprocessed its partitions from offset zero.
            assert cluster.total_messages_processed() > len(events)
            # ... but no client reply was duplicated.
            assert not cluster.frontend.completed
            # Replayed sub-watermark offsets never re-enter the pending
            # map (their replies are suppressed, so they'd leak).
            cluster.run_until_quiet()
            assert not cluster._pending

    def test_fault_injected_crash_is_equivalent(self):
        events = make_events(150)
        expected = single_process_results(events)
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events[:70])]
            cluster.supervisor.crash_worker(cluster.worker_ids()[1])
            results += [r.results for r in cluster.send_batch("tx", events[70:])]
            assert results == expected
            assert cluster.supervisor.restarts == 1

    def test_rebalance_mid_stream_grow_and_shrink(self):
        events = make_events(200)
        expected = single_process_results(events)
        with ParallelCluster(workers=1) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events[:80])]
            grown = cluster.add_worker()
            results += [r.results for r in cluster.send_batch("tx", events[80:150])]
            cluster.remove_worker(grown)
            results += [r.results for r in cluster.send_batch("tx", events[150:])]
            assert results == expected
            assert cluster.rebalance_count >= 3

    def test_schema_evolution_across_process_boundary(self):
        plain = make_events(40)
        evolved = [
            Event(f"n{i}", 5000 + i,
                  {"cardId": f"c{i % 5}", "amount": 2.0, "country": "PT"})
            for i in range(40)
        ]
        expected = single_process_results(plain + evolved, evolve_at=40)
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", plain)]
            cluster.evolve_schema("tx", {"country": "string"})
            results += [r.results for r in cluster.send_batch("tx", evolved)]
            assert results == expected

    def test_checkpoint_offsets_cover_every_event(self):
        events = make_events(90)
        with ParallelCluster(workers=3) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            cluster.send_batch("tx", events)
            offsets = cluster.checkpoint_offsets()
            assert sum(offsets.values()) == len(events)
            assert {tp.topic for tp in offsets} == {"tx.cardId"}
