"""Shard runtime tests: wire protocol, worker, supervisor, ParallelCluster.

The process-parallel engine must be observably identical to the
single-process engine: same reply values for the same events, same
aggregate stats — through worker crashes (checkpointed restart + replay
of only the uncheckpointed tail, no duplicated client reply), rebalances
(workers added/removed mid-stream, with checkpoint handoff), schema
evolution across the process boundary, and checkpoint shipping.
"""

from __future__ import annotations

import pytest

from repro.common.errors import EngineError
from repro.common.timesource import default_time_source
from repro.engine.catalog import MetricDef, StreamDef
from repro.engine.cluster import RailgunCluster, create_cluster
from repro.engine.processor import UnitConfig
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.consumer import PartitionView
from repro.messaging.log import TopicPartition
from repro.reservoir.reservoir import ReservoirConfig
from repro.shard import wire
from repro.shard.parallel import ParallelCluster
from repro.shard.supervisor import CheckpointStore, ShardSupervisor
from repro.shard.worker import ShardWorker

STREAM_KW = dict(partitions=4, schema={"cardId": "string", "amount": "float"})
METRIC = (
    "SELECT sum(amount), count(*), avg(amount) FROM tx GROUP BY cardId "
    "OVER sliding 5 minutes"
)


def make_events(count, prefix="e", start_ts=1000):
    return [
        Event(
            f"{prefix}{i}", start_ts + i,
            {"cardId": f"c{i % 5}", "amount": float(i % 17)},
        )
        for i in range(count)
    ]


def single_process_results(events, metrics=(METRIC,), evolve_at=None):
    """Ground truth: the cooperative engine, one event at a time."""
    cluster = RailgunCluster(nodes=1, processor_units=2)
    cluster.create_stream("tx", ["cardId"], **STREAM_KW)
    for metric in metrics:
        cluster.create_metric(metric)
    cluster.run_until_quiet()
    results = []
    for index, event in enumerate(events):
        if evolve_at is not None and index == evolve_at:
            cluster.evolve_schema("tx", {"country": "string"})
            cluster.run_until_quiet()
        results.append(cluster.send("tx", event=event).results)
    return results


# -- wire protocol ------------------------------------------------------------


class TestWireProtocol:
    def roundtrip(self, msg):
        return wire.decode(wire.encode(msg))

    def test_control_messages_roundtrip(self):
        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 4
        )
        metric = MetricDef(3, METRIC, "tx", "tx.cardId", True)
        for msg in [
            wire.CreateStream(stream),
            wire.CreateMetric(metric),
            wire.DeleteMetric(7),
            wire.EvolveSchema("tx", (("country", "string"),)),
            wire.AddPartitioner("tx", "country"),
            wire.AssignPartitions(
                (TopicPartition("tx.cardId", 0), TopicPartition("tx.cardId", 3))
            ),
            wire.CheckpointRequest(12),
            wire.CheckpointRequest(
                13,
                with_state=True,
                known_files=(
                    (TopicPartition("tx.cardId", 0), ("seg-1", "sst-a")),
                    (TopicPartition("tx.cardId", 1), ()),
                ),
            ),
            wire.Shutdown(),
            wire.Crash(),
            wire.WorkerError("boom\n  at line 1"),
        ]:
            assert self.roundtrip(msg) == msg

    def test_checkpoint_frames_roundtrip(self):
        """A full TaskCheckpoint survives the wire in both directions."""
        worker, tp = TestShardWorker().worker_with_stream()
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(make_events(50)))))
        frame = worker.build_checkpoints()[0]
        ack = wire.CheckpointAck(3, {tp: 50}, [frame])
        decoded = self.roundtrip(ack)
        assert decoded.request_id == 3
        assert decoded.offsets == {tp: 50}
        restored = decoded.frames[0].checkpoint
        original = frame.checkpoint
        assert restored.tp == tp and restored.offset == 50
        assert restored.reservoir_meta == original.reservoir_meta
        assert restored.reservoir_files == original.reservoir_files
        assert restored.reservoir_sealed == original.reservoir_sealed
        assert restored.state_checkpoint == original.state_checkpoint
        assert restored.state_files == original.state_files
        assert restored.iterator_positions == original.iterator_positions
        assert restored.metric_ids == original.metric_ids
        restore = self.roundtrip(wire.RestoreTask(frame))
        assert restore.frame.checkpoint == original

    def test_work_batch_roundtrip_preserves_events(self):
        records = [
            (10, Event("a", 5, {"cardId": "c1", "amount": 2.5})),
            (11, Event("b", 6, {"cardId": None, "amount": -17})),
            (12, Event("ç🚂", 7, {"amount": 1e-9, "flag": True, "blob": b"\x00\xff"})),
        ]
        decoded = self.roundtrip(wire.WorkBatch(TopicPartition("t", 1), 11, records))
        assert decoded.tp == TopicPartition("t", 1)
        assert decoded.reply_from == 11
        assert [(o, e) for o, e in decoded.records] == records
        # Field insertion order survives the string-table interning.
        assert decoded.records[2][1].field_names() == ["amount", "flag", "blob"]

    def test_batch_done_roundtrip_preserves_results(self):
        replies = [
            (4, {0: {"sum(amount)": 1.5, "count(*)": 2}, 1: {"max(amount)": None}}),
            (5, None),
            (6, {0: {"sum(amount)": -3, "count(*)": 0}}),
        ]
        msg = wire.BatchDone(TopicPartition("t", 0), 7, 3, replies)
        decoded = self.roundtrip(msg)
        assert decoded.next_offset == 7
        assert decoded.processed == 3
        assert decoded.replies == replies

    def test_unknown_tag_rejected(self):
        from repro.common.errors import SerdeError

        with pytest.raises(SerdeError):
            wire.decode(b"\xee")
        with pytest.raises(SerdeError):
            wire.decode(b"")


# -- worker (in-process) ------------------------------------------------------


class TestShardWorker:
    def worker_with_stream(self):
        worker = ShardWorker("w0")
        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 2
        )
        worker.handle_control(wire.CreateStream(stream))
        worker.handle_control(
            wire.CreateMetric(MetricDef(0, METRIC, "tx", "tx.cardId", False))
        )
        tp = TopicPartition("tx.cardId", 0)
        worker.handle_control(wire.AssignPartitions((tp,)))
        return worker, tp

    def test_work_produces_replies_above_watermark(self):
        worker, tp = self.worker_with_stream()
        records = list(enumerate(make_events(10)))
        done = worker.handle_work(wire.WorkBatch(tp, 4, records))
        assert done.next_offset == 10
        assert done.processed == 10
        assert [offset for offset, _ in done.replies] == [4, 5, 6, 7, 8, 9]
        assert all(results is not None for _, results in done.replies)

    def test_unknown_topic_raises(self):
        worker = ShardWorker("w0")
        with pytest.raises(KeyError):
            worker.handle_work(
                wire.WorkBatch(TopicPartition("nope", 0), 0, [(0, Event("x", 1, {}))])
            )

    def test_revoked_tasks_dropped(self):
        worker, tp = self.worker_with_stream()
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(make_events(5)))))
        assert tp in worker.task_processors
        worker.handle_control(wire.AssignPartitions(()))
        assert not worker.task_processors

    def test_checkpoint_offsets(self):
        worker, tp = self.worker_with_stream()
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(make_events(7)))))
        assert worker.checkpoint_offsets() == {tp: 7}

    def test_restore_task_resumes_at_checkpoint_offset(self):
        worker, tp = self.worker_with_stream()
        events = make_events(80)
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(events))))
        frame = worker.build_checkpoints()[0]
        fresh, _ = self.worker_with_stream()
        fresh.restore_task(frame)
        assert fresh.task_processors[tp].next_offset == 80
        probe = Event("probe", 5000, {"cardId": "c1", "amount": 3.0})
        original = worker.handle_work(wire.WorkBatch(tp, 0, [(80, probe)]))
        restored = fresh.handle_work(wire.WorkBatch(tp, 0, [(80, probe)]))
        assert restored.replies == original.replies

    def test_delta_frames_omit_known_files(self):
        """Steady-state checkpoints ship only files the store lacks."""
        config = UnitConfig(
            reservoir=ReservoirConfig(chunk_max_events=8, file_max_chunks=2)
        )
        worker = ShardWorker("w0", config)
        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 2
        )
        worker.handle_control(wire.CreateStream(stream))
        worker.handle_control(
            wire.CreateMetric(MetricDef(0, METRIC, "tx", "tx.cardId", False))
        )
        tp = TopicPartition("tx.cardId", 0)
        worker.handle_control(wire.AssignPartitions((tp,)))
        events = make_events(200)
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(events[:120]))))
        store = CheckpointStore()
        first = worker.build_checkpoints()[0]
        assert first.checkpoint.reservoir_sealed  # tiny chunks force seals
        first_files = set(first.checkpoint.reservoir_files) | set(
            first.checkpoint.state_files
        )
        assert store.ingest(first)
        worker.handle_work(
            wire.WorkBatch(
                tp, 0, [(120 + i, e) for i, e in enumerate(events[120:])]
            )
        )
        known = {tp: frozenset(store.known_files(tp))}
        second = worker.build_checkpoints(known)[0]
        shipped = set(second.checkpoint.reservoir_files) | set(
            second.checkpoint.state_files
        )
        # Immutable files already held by the store were omitted ...
        held_immutables = set(store.known_files(tp))
        omitted = (
            second.checkpoint.reservoir_sealed
            | second.checkpoint.state_checkpoint.all_files()
        ) - shipped
        assert omitted  # the delta actually omitted something
        assert omitted <= held_immutables
        assert shipped != first_files
        # ... and the store still materializes a full, restorable state.
        assert store.ingest(second)
        stored = store.get(tp)
        assert stored.offset == 200
        assert stored.reservoir_sealed <= set(stored.reservoir_files)
        assert stored.state_checkpoint.all_files() <= set(stored.state_files)
        fresh = ShardWorker("w1", config)
        fresh.handle_control(wire.CreateStream(stream))
        fresh.handle_control(
            wire.CreateMetric(MetricDef(0, METRIC, "tx", "tx.cardId", False))
        )
        fresh.handle_control(wire.AssignPartitions((tp,)))
        fresh.restore_task(wire.TaskCheckpointFrame(stored))
        probe = Event("probe", 9000, {"cardId": "c2", "amount": 1.5})
        original = worker.handle_work(wire.WorkBatch(tp, 0, [(200, probe)]))
        restored = fresh.handle_work(wire.WorkBatch(tp, 0, [(200, probe)]))
        assert restored.replies == original.replies

    def test_checkpoint_store_rejects_unmaterializable_frame(self):
        """A delta frame whose base files are missing is refused; the
        previous checkpoint stays authoritative."""
        worker, tp = self.worker_with_stream()
        worker.handle_work(wire.WorkBatch(tp, 0, list(enumerate(make_events(30)))))
        frame = worker.build_checkpoints()[0]
        store = CheckpointStore()
        assert store.ingest(frame)
        worker.handle_work(
            wire.WorkBatch(
                tp, 0, [(30 + i, e) for i, e in enumerate(make_events(30, "f"))]
            )
        )
        # Pretend the store held files it does not have: the worker
        # omits them, and ingest must reject the hole.
        bogus = {tp: frozenset({"sst-aggstate-L9-99999999.sst"})}
        broken = worker.build_checkpoints(bogus)[0]
        broken.checkpoint.state_files = {}
        broken.checkpoint.state_checkpoint.files.setdefault("aggstate", [[]])[
            0
        ].append("sst-aggstate-L9-99999999.sst")
        assert not store.ingest(broken)
        assert store.offset(tp) == 30  # previous checkpoint retained


# -- supervisor ---------------------------------------------------------------


class TestShardSupervisor:
    def test_sticky_assignment_across_worker_changes(self):
        with ShardSupervisor(workers=2) as supervisor:
            tasks = [TopicPartition("t", i) for i in range(8)]
            first = supervisor.assign(tasks)
            assert sorted(len(owned) for owned in first.values()) == [4, 4]
            supervisor.add_worker()
            second = supervisor.assign(tasks)
            # Sticky: at most the rebalanced-away tasks moved.
            for worker_id, owned in first.items():
                assert len(owned & second[worker_id]) >= 2
            assert set().union(*second.values()) == set(tasks)

    def test_worker_error_is_captured_and_worker_restarted(self):
        with ShardSupervisor(workers=1) as supervisor:
            tp = TopicPartition("ghost", 0)
            supervisor.assign([tp])
            supervisor.submit(tp, [(0, Event("x", 1, {}))], 0)
            default_time_source().wait_until(
                lambda: (supervisor.poll(timeout=0.05), supervisor.restarts)[1],
                timeout=10.0,
                poll=0.0,
            )
            assert supervisor.restarts == 1
            assert any("ghost" in err for err in supervisor.worker_errors)

    def _stream_controls(self, supervisor):
        stream = StreamDef(
            "tx", (("cardId", "string"), ("amount", "float")), ("cardId",), 4
        )
        supervisor.broadcast_control(wire.CreateStream(stream))
        supervisor.broadcast_control(
            wire.CreateMetric(MetricDef(0, METRIC, "tx", "tx.cardId", False))
        )

    def test_remove_worker_purges_buffered_frames_and_owners(self):
        """Satellite regression: a retired handle leaves nothing behind.

        A ``BatchDone`` parked in the internal buffer while
        ``request_checkpoints`` drained the pipes must not be delivered
        by a later ``poll`` (it would mutate a dead handle's counters),
        and ``_owners`` must stop routing at the removed worker — an
        interleaved ``submit`` gets a clean "not assigned" error, not
        "unknown shard worker".
        """
        with ShardSupervisor(workers=1) as supervisor:
            self._stream_controls(supervisor)
            tp = TopicPartition("tx.cardId", 0)
            supervisor.assign([tp])
            victim = supervisor.worker_ids()[0]
            supervisor.submit(tp, list(enumerate(make_events(10))), 0)
            # Pipe FIFO: the BatchDone precedes the ack, so by the time
            # the ack lands the BatchDone has been drained and parked.
            supervisor.request_checkpoints()
            assert any(
                isinstance(msg, wire.BatchDone) for msg, _ in supervisor._buffered
            )
            supervisor.add_worker()
            supervisor.remove_worker(victim)
            assert supervisor.poll() == []  # parked frame was purged
            assert supervisor.owner_of(tp) is None
            with pytest.raises(EngineError, match="not assigned"):
                supervisor.submit(tp, [(10, make_events(1, "y")[0])], 0)
            stats = supervisor.stats()
            assert victim not in stats
            assert all(s["processed"] == 0 for s in stats.values())

    def test_request_checkpoints_reaps_dead_worker_without_timeout(self):
        """Satellite regression: a crash during the wait costs one reap,
        not the full timeout, and no EngineError."""
        with ShardSupervisor(workers=2) as supervisor:
            self._stream_controls(supervisor)
            tasks = [TopicPartition("tx.cardId", i) for i in range(4)]
            supervisor.assign(tasks)
            victim = supervisor.handles[supervisor.worker_ids()[0]]
            victim.process.kill()
            victim.process.join(timeout=5.0)
            clock = default_time_source()
            started = clock.monotonic()
            offsets = supervisor.request_checkpoints(timeout=30.0)
            elapsed = clock.monotonic() - started
            assert elapsed < 20.0  # did not burn the timeout
            assert supervisor.restarts == 1
            assert offsets == {}  # no worker had processed anything yet

    def test_late_checkpoint_acks_are_counted_and_stored(self):
        """Satellite regression: a checkpoint ack answering a request
        nobody waits for still lands in the store, and is counted."""
        with ShardSupervisor(workers=1) as supervisor:
            self._stream_controls(supervisor)
            tp = TopicPartition("tx.cardId", 0)
            supervisor.assign([tp])
            supervisor.submit(tp, list(enumerate(make_events(25))), 0)
            worker_id = supervisor.worker_ids()[0]
            handle = supervisor.handles[worker_id]
            # A with-state request with an id the supervisor never
            # registered: its ack is by definition late.
            handle.conn.send_bytes(
                wire.encode(wire.CheckpointRequest(999, with_state=True))
            )
            default_time_source().wait_until(
                lambda: (supervisor.poll(timeout=0.05), len(supervisor.checkpoints))[1],
                timeout=10.0,
                poll=0.0,
            )
            assert supervisor.checkpoints.offset(tp) == 25
            assert supervisor.late_checkpoint_acks == 1
            assert supervisor.stats()[worker_id]["late_checkpoint_acks"] == 1

    def test_periodic_checkpoint_cadence_fills_the_store(self):
        """checkpoint_interval drives fire-and-forget with-state
        requests through poll(); acks are counted as expected, not late."""
        with ShardSupervisor(workers=1, checkpoint_interval=20) as supervisor:
            self._stream_controls(supervisor)
            tp = TopicPartition("tx.cardId", 0)
            supervisor.assign([tp])
            supervisor.submit(tp, list(enumerate(make_events(30))), 0)
            default_time_source().wait_until(
                lambda: (supervisor.poll(timeout=0.05), len(supervisor.checkpoints))[1],
                timeout=10.0,
                poll=0.0,
            )
            worker_id = supervisor.worker_ids()[0]
            assert supervisor.checkpoints.offset(tp) == 30
            assert supervisor.stats()[worker_id]["checkpoint_acks"] >= 1
            assert supervisor.late_checkpoint_acks == 0


# -- PartitionView ------------------------------------------------------------


class TestPartitionView:
    def test_poll_commit_seek(self):
        bus = MessageBus()
        bus.create_topic("t", partitions=1)
        tp = TopicPartition("t", 0)
        for i in range(5):
            bus.publish("t", key=None, value=i, timestamp=i)
        view = PartitionView(bus, "g")
        view.set_assignment([tp])
        messages = view.poll_one(tp, 3)
        assert [m.value for m in messages] == [0, 1, 2]
        assert view.position(tp) == 3
        view.commit(tp, 3)
        assert view.committed(tp) == 3
        assert view.lag() == 2
        view.seek(tp, 0)
        assert [m.value for m in view.poll_one(tp, 10)] == [0, 1, 2, 3, 4]
        # A fresh view starts at the committed offset (cross-restart).
        fresh = PartitionView(bus, "g")
        fresh.set_assignment([tp])
        assert fresh.position(tp) == 3


# -- ParallelCluster ----------------------------------------------------------


class TestParallelClusterEquivalence:
    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_replies_and_stats_match_single_process(self, transport):
        events = make_events(120)
        expected = single_process_results(events)
        with ParallelCluster(workers=2, transport=transport) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            replies = cluster.send_batch("tx", events)
            assert [r.results for r in replies] == expected
            assert [r.event for r in replies] == events
            # Same aggregate stats: every event processed exactly once.
            assert cluster.total_messages_processed() == len(events)
            assert sum(
                stats["replies_sent"]
                for stats in cluster.supervisor.stats().values()
            ) == len(events)

    def test_single_event_send_and_field_mapping(self):
        with ParallelCluster(workers=1) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric("SELECT count(*) FROM tx GROUP BY cardId "
                                  "OVER sliding 1 minutes")
            first = cluster.send("tx", fields={"cardId": "c1", "amount": 1.0})
            second = cluster.send("tx", fields={"cardId": "c1", "amount": 2.0})
            assert first.value(0, "count(*)") == 1
            assert second.value(0, "count(*)") == 2

    def test_delete_metric_applies_to_workers(self):
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            metric_id = cluster.create_metric(METRIC)
            keep = cluster.create_metric(
                "SELECT count(*) FROM tx GROUP BY cardId OVER sliding 1 minutes"
            )
            cluster.send_batch("tx", make_events(20))
            cluster.delete_metric(metric_id)
            reply = cluster.send(
                "tx", event=Event("after", 5000, {"cardId": "c0", "amount": 1.0})
            )
            assert metric_id not in reply.results
            assert keep in reply.results

    def test_factory_modes(self):
        single = create_cluster("single", nodes=1, processor_units=1)
        assert isinstance(single, RailgunCluster)
        with create_cluster("process", workers=1) as parallel:
            assert isinstance(parallel, ParallelCluster)
        with pytest.raises(EngineError):
            create_cluster("threads")


class TestParallelClusterFailures:
    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_worker_crash_mid_batch_replays_uncommitted(self, transport):
        events = make_events(300)
        expected = single_process_results(events)
        with ParallelCluster(workers=2, transport=transport) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            # Publish everything up front, then crash a worker while its
            # batches are in flight: the fan-out is on the bus, half the
            # replies are not.
            correlations = cluster.frontend.send_batch("tx", events)
            while len(cluster.frontend.completed) < 80:
                cluster.pump()
            victim = cluster.worker_ids()[0]
            cluster.kill_worker(victim)
            default_time_source().wait_until(
                lambda: (
                    cluster.pump(),
                    len(cluster.frontend.completed) >= len(events),
                )[1],
                timeout=30.0,
                poll=0.0,
            )
            results = [
                cluster.frontend.take_completed(c).results for c in correlations
            ]
            assert results == expected
            # Shm reply-ring salvage can complete the batch before the
            # supervisor reaps the corpse — wait for the restart and
            # its replay rather than racing them.
            default_time_source().wait_until(
                lambda: (
                    cluster.pump(),
                    cluster.supervisor.restarts >= 1
                    and cluster.total_messages_processed() > len(events),
                )[1],
                timeout=30.0,
                poll=0.0,
            )
            assert cluster.supervisor.restarts == 1
            # The uncommitted tail replayed: the restarted worker
            # reprocessed its partitions from offset zero.
            assert cluster.total_messages_processed() > len(events)
            # ... but no client reply was duplicated.
            assert not cluster.frontend.completed
            # Replayed sub-watermark offsets never re-enter the pending
            # map (their replies are suppressed, so they'd leak).
            cluster.run_until_quiet()
            assert not cluster._pending

    def test_fault_injected_crash_is_equivalent(self):
        events = make_events(150)
        expected = single_process_results(events)
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events[:70])]
            cluster.supervisor.crash_worker(cluster.worker_ids()[1])
            results += [r.results for r in cluster.send_batch("tx", events[70:])]
            assert results == expected
            assert cluster.supervisor.restarts == 1

    def test_rebalance_mid_stream_grow_and_shrink(self):
        events = make_events(200)
        expected = single_process_results(events)
        with ParallelCluster(workers=1) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events[:80])]
            grown = cluster.add_worker()
            results += [r.results for r in cluster.send_batch("tx", events[80:150])]
            cluster.remove_worker(grown)
            results += [r.results for r in cluster.send_batch("tx", events[150:])]
            assert results == expected
            assert cluster.rebalance_count >= 3

    def test_schema_evolution_across_process_boundary(self):
        plain = make_events(40)
        evolved = [
            Event(f"n{i}", 5000 + i,
                  {"cardId": f"c{i % 5}", "amount": 2.0, "country": "PT"})
            for i in range(40)
        ]
        expected = single_process_results(plain + evolved, evolve_at=40)
        with ParallelCluster(workers=2) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", plain)]
            cluster.evolve_schema("tx", {"country": "string"})
            results += [r.results for r in cluster.send_batch("tx", evolved)]
            assert results == expected

    def test_checkpoint_offsets_cover_every_event(self):
        events = make_events(90)
        with ParallelCluster(workers=3) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            cluster.send_batch("tx", events)
            offsets = cluster.checkpoint_offsets()
            assert sum(offsets.values()) == len(events)
            assert {tp.topic for tp in offsets} == {"tx.cardId"}


class TestCheckpointedRecovery:
    """The recovery matrix: every path restarts from a checkpoint."""

    ONE_PARTITION = dict(partitions=1, schema={"cardId": "string", "amount": "float"})

    def ground_truth(self, events):
        """Single-process engine on a one-partition stream."""
        cluster = RailgunCluster(nodes=1, processor_units=2)
        cluster.create_stream("tx", ["cardId"], **self.ONE_PARTITION)
        cluster.create_metric(METRIC)
        cluster.run_until_quiet()
        return [cluster.send("tx", event=event).results for event in events]

    def await_restart(self, cluster, count=1, timeout=30.0):
        default_time_source().wait_until(
            lambda: (cluster.pump(), cluster.supervisor.restarts >= count)[1],
            timeout=timeout,
            poll=0.0,
        )
        assert cluster.supervisor.restarts == count
        cluster.run_until_quiet()

    @pytest.mark.parametrize("transport", ["socket", "shm"])
    def test_crash_after_checkpoint_replays_exactly_the_tail(self, transport):
        """Acceptance: N events, checkpoint at C, crash -> exactly N-C
        records replay, and replies stay byte-identical."""
        events = make_events(90)
        probe = Event("probe", 9000, {"cardId": "c1", "amount": 2.0})
        expected = self.ground_truth(events + [probe])
        checkpoint_at = 60
        tp = TopicPartition("tx.cardId", 0)
        with ParallelCluster(
            workers=1, checkpoint_every=None, transport=transport
        ) as cluster:
            cluster.create_stream("tx", ["cardId"], **self.ONE_PARTITION)
            cluster.create_metric(METRIC)
            results = [
                r.results
                for r in cluster.send_batch("tx", events[:checkpoint_at])
            ]
            assert cluster.checkpoint_now() == {tp: checkpoint_at}
            assert cluster.supervisor.checkpoints.offset(tp) == checkpoint_at
            results += [
                r.results
                for r in cluster.send_batch("tx", events[checkpoint_at:])
            ]
            assert cluster.total_messages_processed() == len(events)
            cluster.kill_worker(cluster.worker_ids()[0])
            self.await_restart(cluster)
            # Recovery replayed exactly the uncheckpointed tail.
            assert cluster.total_messages_processed() == len(events) + (
                len(events) - checkpoint_at
            )
            # ... without duplicating a single client reply.
            assert not cluster.frontend.completed
            results.append(cluster.send("tx", event=probe).results)
            assert results == expected

    def test_crash_mid_checkpoint_falls_back_to_previous_checkpoint(self):
        """A crash racing an in-flight checkpoint request recovers from
        whichever checkpoint last made it into the store — never worse
        than the previous one, never wrong."""
        events = make_events(100)
        probe = Event("probe", 9000, {"cardId": "c3", "amount": 1.0})
        expected = self.ground_truth(events + [probe])
        tp = TopicPartition("tx.cardId", 0)
        with ParallelCluster(workers=1, checkpoint_every=None) as cluster:
            cluster.create_stream("tx", ["cardId"], **self.ONE_PARTITION)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events[:40])]
            assert cluster.checkpoint_now() == {tp: 40}
            results += [r.results for r in cluster.send_batch("tx", events[40:])]
            cluster.supervisor.begin_checkpoint()  # in flight ...
            cluster.kill_worker(cluster.worker_ids()[0])  # ... and crash
            self.await_restart(cluster)
            # The store holds the old checkpoint (the ack died with the
            # worker) or the new one (it won the race); recovery works
            # from either and replay is bounded by the older one.
            assert cluster.supervisor.checkpoints.offset(tp) in (40, 100)
            replayed = cluster.total_messages_processed() - len(events)
            assert 0 <= replayed <= 60
            # The interrupted request does not leak its in-flight entry:
            # the restart stopped expecting the dead worker's ack.
            assert cluster.supervisor._inflight_checkpoints == {}
            results.append(cluster.send("tx", event=probe).results)
            assert results == expected

    def test_rebalance_handoff_replays_nothing(self):
        """Grow/shrink hands task state over through the checkpoint
        store: byte-identical replies and zero replayed records."""
        events = make_events(160)
        expected = single_process_results(events)
        with ParallelCluster(workers=1) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events[:80])]
            grown = cluster.add_worker()
            # Handoff restored from checkpoints: nothing replayed.
            assert cluster.total_messages_processed() == 80
            results += [
                r.results for r in cluster.send_batch("tx", events[80:120])
            ]
            cluster.remove_worker(grown)
            assert cluster.total_messages_processed() == 120
            results += [r.results for r in cluster.send_batch("tx", events[120:])]
            assert results == expected
            assert cluster.total_messages_processed() == len(events)

    def test_periodic_cadence_bounds_crash_replay(self):
        """With the cadence on, a crash never replays the whole log."""
        events = make_events(300)
        expected = single_process_results(events)
        with ParallelCluster(workers=2, checkpoint_every=64) as cluster:
            cluster.create_stream("tx", ["cardId"], **STREAM_KW)
            cluster.create_metric(METRIC)
            results = [r.results for r in cluster.send_batch("tx", events)]
            assert results == expected
            # The cadence fired; pump until its acks filled the store.
            default_time_source().wait_until(
                lambda: (cluster.pump(), len(cluster.supervisor.checkpoints))[1],
                timeout=10.0,
                poll=0.0,
            )
            stored = sum(
                cluster.supervisor.checkpoints.offset(tp)
                for tp in cluster._watermarks
            )
            assert stored > 0
            cluster.kill_worker(cluster.worker_ids()[0])
            self.await_restart(cluster)
            replayed = cluster.total_messages_processed() - len(events)
            # Bounded replay: at most the uncheckpointed remainder.
            assert replayed <= len(events) - stored
