"""Query language (Figure 4 grammar) parser tests."""

import pytest

from repro.common.clock import DAYS, HOURS, MINUTES, SECONDS
from repro.common.errors import QueryError
from repro.query import parse_query
from repro.windows import WindowKind


class TestSelectClause:
    def test_single_aggregation(self):
        query = parse_query("SELECT sum(amount) FROM s OVER infinite")
        assert query.metric_names() == ["sum(amount)"]
        assert query.aggregations[0].field == "amount"

    def test_multiple_aggregations(self):
        query = parse_query(
            "SELECT sum(a), count(*), avg(b) FROM s OVER sliding 1 minute"
        )
        assert query.metric_names() == ["sum(a)", "count(*)", "avg(b)"]

    def test_count_star(self):
        query = parse_query("SELECT count(*) FROM s OVER infinite")
        assert query.aggregations[0].field is None

    def test_star_only_for_count(self):
        with pytest.raises(QueryError):
            parse_query("SELECT sum(*) FROM s OVER infinite")

    @pytest.mark.parametrize(
        "name",
        ["count", "sum", "avg", "stdDev", "max", "min", "last", "prev", "countDistinct"],
    )
    def test_all_figure4_aggregations(self, name):
        query = parse_query(f"SELECT {name}(f) FROM s OVER infinite")
        assert query.aggregations[0].name == name

    def test_aggregation_names_case_insensitive(self):
        query = parse_query("SELECT COUNTDISTINCT(f) FROM s OVER infinite")
        assert query.aggregations[0].name == "countDistinct"

    def test_unknown_aggregation(self):
        with pytest.raises(QueryError, match="unknown aggregation"):
            parse_query("SELECT median(f) FROM s OVER infinite")


class TestWhereClause:
    def test_filter_parsed(self):
        query = parse_query(
            "SELECT count(*) FROM s WHERE amount > 10 && flag OVER infinite"
        )
        assert query.where is not None
        assert query.where.referenced_fields() == {"amount", "flag"}

    def test_no_filter_is_none(self):
        assert parse_query("SELECT count(*) FROM s OVER infinite").where is None

    def test_filter_with_parens_and_strings(self):
        query = parse_query(
            "SELECT count(*) FROM s WHERE (channel == 'ecom' || channel == 'pos') "
            "GROUP BY cardId OVER sliding 5 minutes"
        )
        assert query.where is not None
        assert query.group_by == ("cardId",)


class TestGroupBy:
    def test_single_field(self):
        query = parse_query("SELECT count(*) FROM s GROUP BY cardId OVER infinite")
        assert query.group_by == ("cardId",)

    def test_multiple_fields(self):
        query = parse_query(
            "SELECT count(*) FROM s GROUP BY cardId, merchantId OVER infinite"
        )
        assert query.group_by == ("cardId", "merchantId")

    def test_missing_by_keyword(self):
        with pytest.raises(QueryError):
            parse_query("SELECT count(*) FROM s GROUP cardId OVER infinite")


class TestWindowClause:
    @pytest.mark.parametrize(
        "text,kind,size",
        [
            ("sliding 5 minutes", WindowKind.SLIDING, 5 * MINUTES),
            ("sliding 30 seconds", WindowKind.SLIDING, 30 * SECONDS),
            ("tumbling 1 hour", WindowKind.TUMBLING, 1 * HOURS),
            ("sliding 7 days", WindowKind.SLIDING, 7 * DAYS),
        ],
    )
    def test_window_kinds(self, text, kind, size):
        query = parse_query(f"SELECT count(*) FROM s OVER {text}")
        assert query.window.kind is kind
        assert query.window.size_ms == size

    def test_infinite(self):
        query = parse_query("SELECT count(*) FROM s OVER infinite")
        assert query.window.kind is WindowKind.INFINITE
        assert query.window.size_ms is None

    def test_delayed(self):
        query = parse_query(
            "SELECT count(*) FROM s OVER sliding 5 minutes delayed by 30 seconds"
        )
        assert query.window.delay_ms == 30 * SECONDS

    def test_delayed_infinite(self):
        query = parse_query("SELECT count(*) FROM s OVER infinite delayed by 1 minute")
        assert query.window.kind is WindowKind.INFINITE
        assert query.window.delay_ms == 1 * MINUTES

    def test_hopping_not_supported(self):
        # Railgun deliberately has no hopping windows (§3.4).
        with pytest.raises(QueryError):
            parse_query("SELECT count(*) FROM s OVER hopping 5 minutes")

    def test_missing_window_size(self):
        with pytest.raises(QueryError):
            parse_query("SELECT count(*) FROM s OVER sliding")

    def test_bad_duration_unit(self):
        with pytest.raises(QueryError):
            parse_query("SELECT count(*) FROM s OVER sliding 5 parsecs")


class TestClauseOrder:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT count(*) OVER infinite FROM s",
            "SELECT count(*) FROM s GROUP BY a WHERE x > 1 OVER infinite",
            "SELECT count(*) FROM s OVER infinite GROUP BY a",
            "FROM s SELECT count(*) OVER infinite",
        ],
    )
    def test_strict_order_enforced(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT count(*) FROM s OVER infinite LIMIT 5")

    def test_missing_over_rejected(self):
        with pytest.raises(QueryError):
            parse_query("SELECT count(*) FROM s")


class TestKeywordsCaseInsensitive:
    def test_lowercase_statement(self):
        query = parse_query(
            "select sum(a) from s where a > 1 group by k over sliding 1 minute"
        )
        assert query.stream == "s"
        assert query.group_by == ("k",)


class TestDescribe:
    def test_describe_roundtrips_structure(self):
        text = (
            "SELECT sum(amount), count(*) FROM payments WHERE amount > 0 "
            "GROUP BY cardId OVER sliding 5 minutes"
        )
        description = parse_query(text).describe()
        assert "sum(amount)" in description
        assert "GROUP BY cardId" in description
        assert "sliding 5m" in description

    def test_raw_text_preserved(self):
        text = "SELECT count(*) FROM s OVER infinite"
        assert parse_query(text).raw_text == text
