"""Cluster-wide exactness: every aggregator, random workload, vs oracle.

The A in MAD: whatever happens inside the cluster — chunk closures,
multi-partition routing, checkpoints — per-event replies must equal a
brute-force recomputation over the full history.
"""

import math
import random
import statistics

import pytest

from repro.common.clock import MINUTES
from repro.engine import RailgunCluster
from repro.engine.processor import UnitConfig

WINDOW_MS = 5 * MINUTES


@pytest.fixture(scope="module")
def run():
    """One shared random run; individual tests check different metrics."""
    cluster = RailgunCluster(
        nodes=2,
        processor_units=2,
        replication_factor=1,
        brokers=2,
        unit_config=UnitConfig(checkpoint_interval=25),
    )
    cluster.create_stream(
        "payments",
        partitioners=["cardId"],
        partitions=4,
        schema=[("cardId", "string"), ("amount", "float"), ("city", "string")],
    )
    metrics = {
        "sum": cluster.create_metric(
            "SELECT sum(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        ),
        "avg": cluster.create_metric(
            "SELECT avg(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        ),
        "minmax": cluster.create_metric(
            "SELECT min(amount), max(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        ),
        "stddev": cluster.create_metric(
            "SELECT stdDev(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        ),
        "distinct": cluster.create_metric(
            "SELECT countDistinct(city) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        ),
        "lastprev": cluster.create_metric(
            "SELECT last(amount), prev(amount) FROM payments GROUP BY cardId OVER sliding 5 minutes"
        ),
    }
    rng = random.Random(99)
    history = []
    observations = []
    ts = 0
    for i in range(120):
        ts += rng.randrange(5_000, 45_000)
        card = f"c{rng.randrange(3)}"
        amount = float(rng.randrange(1, 100))
        city = f"city{rng.randrange(4)}"
        reply = cluster.send(
            "payments",
            {"cardId": card, "amount": amount, "city": city},
            timestamp=ts,
        )
        history.append((ts, card, amount, city))
        window = [
            (t, c, a, ci) for t, c, a, ci in history
            if c == card and t > ts - WINDOW_MS
        ]
        observations.append((reply, window))
    return metrics, observations


class TestClusterExactness:
    def test_sum(self, run):
        metrics, observations = run
        for reply, window in observations:
            expected = sum(a for _, _, a, _ in window)
            assert reply.value(metrics["sum"], "sum(amount)") == pytest.approx(expected)

    def test_avg(self, run):
        metrics, observations = run
        for reply, window in observations:
            expected = sum(a for _, _, a, _ in window) / len(window)
            assert reply.value(metrics["avg"], "avg(amount)") == pytest.approx(expected)

    def test_min_max(self, run):
        metrics, observations = run
        for reply, window in observations:
            amounts = [a for _, _, a, _ in window]
            assert reply.value(metrics["minmax"], "min(amount)") == min(amounts)
            assert reply.value(metrics["minmax"], "max(amount)") == max(amounts)

    def test_stddev(self, run):
        metrics, observations = run
        for reply, window in observations:
            amounts = [a for _, _, a, _ in window]
            got = reply.value(metrics["stddev"], "stdDev(amount)")
            if len(amounts) < 2:
                assert got is None
            else:
                assert got == pytest.approx(statistics.stdev(amounts), rel=1e-6)

    def test_count_distinct(self, run):
        metrics, observations = run
        for reply, window in observations:
            cities = {ci for _, _, _, ci in window}
            assert reply.value(metrics["distinct"], "countDistinct(city)") == len(cities)

    def test_last_prev(self, run):
        metrics, observations = run
        for reply, window in observations:
            ordered = sorted(window)
            assert reply.value(metrics["lastprev"], "last(amount)") == ordered[-1][2]
            expected_prev = ordered[-2][2] if len(ordered) > 1 else None
            assert reply.value(metrics["lastprev"], "prev(amount)") == expected_prev
