"""Event model and schema tests (encoding, validation, evolution)."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SchemaError
from repro.events import Event, FieldType, Schema, SchemaField, SchemaRegistry


def _schema(*fields):
    return Schema([SchemaField(name, ftype) for name, ftype in fields])


PAYMENTS = _schema(
    ("cardId", FieldType.STRING),
    ("amount", FieldType.FLOAT),
    ("count", FieldType.INT),
    ("flag", FieldType.BOOL),
)


class TestEvent:
    def test_field_access(self):
        event = Event("e1", 5, {"a": 1, "b": "x"})
        assert event["a"] == 1
        assert event.get("b") == "x"
        assert event.get("missing") is None
        assert "a" in event
        assert "z" not in event

    def test_fields_copy_is_isolated(self):
        event = Event("e1", 5, {"a": 1})
        copy = event.fields
        copy["a"] = 2
        assert event["a"] == 1

    def test_negative_timestamp_rejected(self):
        with pytest.raises(ValueError):
            Event("e1", -1, {})

    def test_with_timestamp(self):
        event = Event("e1", 5, {"a": 1})
        moved = event.with_timestamp(9)
        assert moved.timestamp == 9
        assert moved.event_id == "e1"
        assert moved["a"] == 1
        assert event.timestamp == 5

    def test_equality(self):
        assert Event("e", 1, {"a": 1}) == Event("e", 1, {"a": 1})
        assert Event("e", 1, {"a": 1}) != Event("e", 1, {"a": 2})
        assert Event("e", 1, {}) != Event("f", 1, {})

    def test_repr_previews_fields(self):
        event = Event("e1", 5, {"a": 1, "b": 2, "c": 3, "d": 4})
        assert "e1" in repr(event)
        assert "..." in repr(event)


class TestFieldType:
    @pytest.mark.parametrize(
        "ftype,good,bad",
        [
            (FieldType.BOOL, True, 1),
            (FieldType.INT, 3, True),
            (FieldType.INT, 3, 3.0),
            (FieldType.FLOAT, 3.5, "x"),
            (FieldType.STRING, "x", 3),
        ],
    )
    def test_validation(self, ftype, good, bad):
        assert ftype.validate(good)
        assert not ftype.validate(bad)

    def test_none_always_valid(self):
        assert all(ftype.validate(None) for ftype in FieldType)

    def test_float_accepts_int(self):
        assert FieldType.FLOAT.validate(3)


class TestSchema:
    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            _schema(("a", FieldType.INT), ("a", FieldType.INT))

    def test_validate_event_accepts_partial(self):
        PAYMENTS.validate_event(Event("e", 1, {"cardId": "c"}))

    def test_validate_event_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            PAYMENTS.validate_event(Event("e", 1, {"amount": "not a number"}))

    def test_validate_event_rejects_undeclared(self):
        with pytest.raises(SchemaError):
            PAYMENTS.validate_event(Event("e", 1, {"mystery": 1}))

    def test_encode_decode_roundtrip(self):
        event = Event("e9", 123, {"cardId": "c1", "amount": 9.5, "flag": True})
        buf = bytearray()
        PAYMENTS.encode_event(event, buf)
        decoded, offset = PAYMENTS.decode_event(bytes(buf), 0)
        assert decoded == event
        assert offset == len(buf)

    def test_absent_fields_stay_absent(self):
        event = Event("e9", 1, {"cardId": "c1"})
        buf = bytearray()
        PAYMENTS.encode_event(event, buf)
        decoded, _ = PAYMENTS.decode_event(bytes(buf), 0)
        assert "amount" not in decoded

    @given(
        st.text(max_size=20),
        st.integers(min_value=0, max_value=2**48),
        st.floats(allow_nan=False, allow_infinity=False),
    )
    def test_roundtrip_property(self, card, timestamp, amount):
        event = Event("id", timestamp, {"cardId": card, "amount": amount})
        buf = bytearray()
        PAYMENTS.encode_event(event, buf)
        decoded, _ = PAYMENTS.decode_event(bytes(buf), 0)
        assert decoded == event

    def test_schema_serde_roundtrip(self):
        restored = Schema.from_bytes(PAYMENTS.to_bytes())
        assert restored == PAYMENTS

    def test_compatible_upgrade_appends(self):
        wider = _schema(
            ("cardId", FieldType.STRING),
            ("amount", FieldType.FLOAT),
            ("count", FieldType.INT),
            ("flag", FieldType.BOOL),
            ("extra", FieldType.STRING),
        )
        assert PAYMENTS.is_compatible_upgrade(wider)

    def test_incompatible_upgrades(self):
        renamed = _schema(("cardX", FieldType.STRING))
        retyped = _schema(("cardId", FieldType.INT))
        shorter = _schema(("cardId", FieldType.STRING))
        assert not PAYMENTS.is_compatible_upgrade(renamed)
        assert not PAYMENTS.is_compatible_upgrade(retyped)
        assert not PAYMENTS.is_compatible_upgrade(shorter)


class TestSchemaRegistry:
    def test_register_assigns_incrementing_ids(self):
        registry = SchemaRegistry()
        first = registry.register(_schema(("a", FieldType.INT)))
        second = registry.register(
            _schema(("a", FieldType.INT), ("b", FieldType.INT))
        )
        assert first.schema_id == 0
        assert second.schema_id == 1
        assert registry.current() is second

    def test_identical_reregistration_is_noop(self):
        registry = SchemaRegistry()
        first = registry.register(_schema(("a", FieldType.INT)))
        again = registry.register(_schema(("a", FieldType.INT)))
        assert again is first
        assert len(registry) == 1

    def test_incompatible_evolution_rejected(self):
        registry = SchemaRegistry()
        registry.register(_schema(("a", FieldType.INT)))
        with pytest.raises(SchemaError):
            registry.register(_schema(("a", FieldType.STRING)))

    def test_old_ids_stay_resolvable(self):
        registry = SchemaRegistry()
        registry.register(_schema(("a", FieldType.INT)))
        registry.register(_schema(("a", FieldType.INT), ("b", FieldType.INT)))
        assert registry.get(0).field_names() == ["a"]
        assert registry.get(1).field_names() == ["a", "b"]

    def test_unknown_id(self):
        registry = SchemaRegistry()
        with pytest.raises(SchemaError):
            registry.get(5)

    def test_empty_registry_has_no_current(self):
        with pytest.raises(SchemaError):
            SchemaRegistry().current()

    def test_registry_serde_roundtrip(self):
        registry = SchemaRegistry()
        registry.register(_schema(("a", FieldType.INT)))
        registry.register(_schema(("a", FieldType.INT), ("b", FieldType.STRING)))
        restored = SchemaRegistry.from_bytes(registry.to_bytes())
        assert len(restored) == 2
        assert restored.current().field_names() == ["a", "b"]
        assert restored.get(0).field_names() == ["a"]
