"""Shared-memory data plane units: rings, columnar codec, quarantine.

The cluster-level equivalence of ``transport="shm"`` is covered by the
transport-parametrized suites (``test_shard_runtime``,
``test_sharded_frontends``, ``test_batch_equivalence``); this module
pins the building blocks — the SPSC ring's wraparound and backpressure
contracts, heartbeat-based peer policing, the columnar WorkBatch /
BatchDone codec — and the frontend's quarantine-on-stale-heartbeat
state transition in isolation.
"""

from __future__ import annotations

import multiprocessing
import random
import threading

import pytest

from repro.common.timesource import default_time_source
from repro.events.event import Event
from repro.messaging.log import TopicPartition
from repro.shard import columnar, shm, wire
from repro.shard.router import FrontendEngine
from repro.shard.shm import ShmError, ShmPeerDead, ShmRing


@pytest.fixture
def ring_pair():
    name = shm.ring_name("rgshm-test")
    producer = ShmRing.create("producer", slot_count=8, slot_bytes=64, name=name)
    consumer = ShmRing.attach(name, "consumer")
    yield producer, consumer
    consumer.close()
    producer.close(unlink=True)


class TestShmRing:
    def test_roundtrip_and_wraparound(self, ring_pair):
        """Frames of every size cross the byte-level wrap intact."""
        producer, consumer = ring_pair
        rng = random.Random(7)
        outstanding: list[bytes] = []
        for _ in range(1000):
            # Keep lag under capacity so the single-threaded driver
            # never blocks; sizes span sub-slot to multi-slot frames.
            payload = rng.randbytes(rng.randrange(0, 150))
            producer.send(payload, timeout=1.0)
            outstanding.append(payload)
            # Max 2 frames x 3 slots in flight fits the 8-slot ring.
            while len(outstanding) > 1:
                assert consumer.try_recv() == outstanding.pop(0)
        assert consumer.drain() == outstanding
        assert consumer.try_recv() is None

    def test_full_ring_blocks_producer_no_drop(self, ring_pair):
        """Backpressure: a full ring blocks the producer; nothing drops."""
        producer, consumer = ring_pair
        payloads = [bytes([i]) * 40 for i in range(8)]  # one slot each
        for payload in payloads:
            producer.send(payload)
        with pytest.raises(ShmError):
            producer.send(b"overflow", timeout=0.05)
        # A concurrent consumer unblocks the same send, and every frame
        # (including the one that was blocked) arrives in order.
        received: list[bytes] = []

        def consume():
            def drain():
                frame = consumer.try_recv()
                if frame is not None:
                    received.append(frame)
                return len(received) >= 9

            default_time_source().wait_until(drain, timeout=5.0, poll=0.001)

        thread = threading.Thread(target=consume)
        thread.start()
        producer.send(b"overflow", timeout=5.0)
        thread.join()
        assert received == payloads + [b"overflow"]

    def test_oversized_frame_rejected(self, ring_pair):
        producer, _ = ring_pair
        with pytest.raises(ShmError):
            producer.send(b"x" * (8 * 64))

    def test_peer_closed_fails_send(self, ring_pair):
        producer, consumer = ring_pair
        consumer.close()
        with pytest.raises(ShmPeerDead):
            producer.send(b"into the void")

    def test_stale_heartbeat_detected(self, ring_pair):
        producer, consumer = ring_pair
        consumer.beat()
        assert not producer.peer_stale(10.0)
        assert producer.peer_stale(
            0.01, now_ns=default_time_source().monotonic_ns() + int(0.05 * 1e9)
        )

    def test_unattached_peer_is_never_stale(self):
        """Heartbeat zero means "never attached", not "stale" — link
        setup has its own timeout."""
        name = shm.ring_name("rgshm-test")
        producer = ShmRing.create(
            "producer", slot_count=8, slot_bytes=64, name=name
        )
        try:
            assert producer.peer_heartbeat_ns() == 0
            assert not producer.peer_stale(0.0)
        finally:
            producer.close(unlink=True)

    def test_crc_rejects_corruption(self, ring_pair):
        producer, consumer = ring_pair
        producer.send(b"A" * 50)
        # Flip a payload byte behind the producer's back.
        consumer._buf[shm.HEADER_BYTES + 20] ^= 0xFF
        with pytest.raises(ShmError):
            consumer.try_recv()

    def test_sweep_and_orphans(self):
        name = shm.ring_name("rgshm-orphtest")
        ring = ShmRing.create("producer", name=name)
        ring.close(unlink=False)  # leak deliberately
        assert name in shm.orphans("rgshm-orphtest")
        assert shm.sweep("rgshm-orphtest") == [name]
        assert shm.orphans("rgshm-orphtest") == []


def _random_event(rng: random.Random, index: int) -> Event:
    shapes = [
        ("cardId", "amount"),
        ("cardId", "amount", "country"),
        ("amount",),
        (),
    ]
    values = [
        lambda: rng.randrange(-(2**63), 2**63),
        lambda: rng.random() * 1e6,
        lambda: "v" * rng.randrange(0, 12),
        lambda: "naïve-ünicode-" + str(rng.randrange(100)),
        lambda: None,
        lambda: rng.random() < 0.5,
        lambda: rng.randbytes(5),
    ]
    fields = {
        name: rng.choice(values)() for name in rng.choice(shapes)
    }
    return Event(f"ev-{index}", rng.randrange(0, 2**40), fields)


class TestColumnarCodec:
    def test_work_batch_roundtrip_fuzz(self):
        rng = random.Random(1234)
        for round_index in range(30):
            tp = TopicPartition(f"t{round_index % 3}", rng.randrange(4))
            records = [
                (100 + i, _random_event(rng, i))
                for i in range(rng.randrange(0, 40))
            ]
            msg = wire.WorkBatch(tp, rng.randrange(0, 200), records)
            decoded = columnar.decode(columnar.encode(msg))
            assert decoded == msg
            # Field insertion order survives (dict order is semantic).
            for (_, original), (_, copy) in zip(msg.records, decoded.records):
                assert list(original._fields) == list(copy._fields)
                assert [type(v) for v in original._fields.values()] == [
                    type(v) for v in copy._fields.values()
                ]

    def test_batch_done_roundtrip_fuzz(self):
        rng = random.Random(99)
        for round_index in range(30):
            replies = []
            for i in range(rng.randrange(0, 30)):
                if rng.random() < 0.2:
                    replies.append((200 + i, None))
                    continue
                results = {
                    metric_id: {
                        "sum(amount)": rng.random(),
                        "count(*)": rng.randrange(1000),
                    }
                    for metric_id in range(rng.randrange(1, 4))
                }
                replies.append((200 + i, results))
            msg = wire.BatchDone(
                TopicPartition("t", 0), 500, len(replies), replies
            )
            assert columnar.decode(columnar.encode(msg)) == msg

    def test_non_batch_messages_pass_through(self):
        msg = wire.ShmHello("a-work", "a-reply")
        assert columnar.decode(columnar.encode(msg)) == msg

    def test_columnar_frames_interoperate_with_wire_frames(self):
        """decode() dispatches on the tag byte, so both encodings coexist."""
        msg = wire.WorkBatch(
            TopicPartition("t", 1), 0, [(0, Event("e", 1, {"k": 1}))]
        )
        assert columnar.decode(wire.encode(msg)) == msg
        assert wire.decode(wire.encode(msg)) == columnar.decode(
            columnar.encode(msg)
        )


class TestFrontendQuarantine:
    def test_stale_worker_link_is_quarantined(self):
        """A worker that stops beating is treated like a dead socket."""
        engine = FrontendEngine("fe-test", transport="shm")
        name_work = shm.ring_name("rgshm-quart")
        name_reply = shm.ring_name("rgshm-quart")
        work = ShmRing.create("producer", name=name_work)
        reply = ShmRing.create("consumer", name=name_reply)
        # The "worker" attaches and beats once, then goes silent.
        worker_work = ShmRing.attach(name_work, "consumer")
        worker_reply = ShmRing.attach(name_reply, "producer")
        worker_work.beat()
        worker_reply.beat()
        conn, other = multiprocessing.Pipe()
        engine.rings["w-0"] = (work, reply)
        engine.conns["w-0"] = conn
        engine.outstanding["w-0"] = 1
        try:
            engine.drain_rings(stale_after=60.0)
            assert "w-0" not in engine.down
            default_time_source().sleep(0.05)
            engine.drain_rings(stale_after=0.01)
            assert "w-0" in engine.down
            assert "w-0" not in engine.conns
            assert "w-0" not in engine.rings
            assert engine.outstanding["w-0"] == 0
        finally:
            worker_work.close()
            worker_reply.close()
            other.close()
            shm.sweep("rgshm-quart")

    def test_closed_peer_is_quarantined(self):
        engine = FrontendEngine("fe-test", transport="shm")
        name_work = shm.ring_name("rgshm-quart2")
        name_reply = shm.ring_name("rgshm-quart2")
        work = ShmRing.create("producer", name=name_work)
        reply = ShmRing.create("consumer", name=name_reply)
        worker_work = ShmRing.attach(name_work, "consumer")
        worker_work.close()  # worker shut down cleanly
        conn, other = multiprocessing.Pipe()
        engine.rings["w-0"] = (work, reply)
        engine.conns["w-0"] = conn
        try:
            engine.drain_rings()
            assert "w-0" in engine.down
        finally:
            other.close()
            shm.sweep("rgshm-quart2")


def test_add_partitioner_router_regression():
    """``ClusterRouter.add_partitioner`` used to NameError on the
    (unimported) ``validate_new_partitioner`` helper."""
    from repro.engine.cluster import create_cluster

    cluster = create_cluster("process", workers=2, frontends=2)
    try:
        cluster.create_stream(
            "tx", ["cardId"], partitions=2,
            schema={"cardId": "string", "region": "string", "amount": "float"},
        )
        cluster.add_partitioner("tx", "region")
        reply = cluster.send(
            "tx", {"cardId": "c1", "region": "eu", "amount": 5.0}
        )
        assert reply.results == {}
    finally:
        cluster.close()
