"""Storage backend tests (memory and file parity)."""

import pytest

from repro.common.errors import StorageError
from repro.common.storage import FileStorage, MemoryStorage


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return MemoryStorage()
    return FileStorage(str(tmp_path / "store"))


class TestLifecycle:
    def test_create_and_append(self, storage):
        storage.create("a.seg")
        offset = storage.append("a.seg", b"hello")
        assert offset == 0
        assert storage.append("a.seg", b" world") == 5
        assert storage.read_all("a.seg") == b"hello world"

    def test_create_twice_fails(self, storage):
        storage.create("a.seg")
        with pytest.raises(StorageError):
            storage.create("a.seg")

    def test_read_range(self, storage):
        storage.create("a.seg")
        storage.append("a.seg", b"0123456789")
        assert storage.read("a.seg", 2, 3) == b"234"

    def test_short_read_is_error(self, storage):
        storage.create("a.seg")
        storage.append("a.seg", b"abc")
        with pytest.raises(StorageError):
            storage.read("a.seg", 1, 10)

    def test_size(self, storage):
        storage.create("a.seg")
        storage.append("a.seg", b"abcd")
        assert storage.size("a.seg") == 4

    def test_missing_file_operations(self, storage):
        for operation in (
            lambda: storage.append("nope", b"x"),
            lambda: storage.read("nope", 0, 1),
            lambda: storage.read_all("nope"),
            lambda: storage.size("nope"),
            lambda: storage.seal("nope"),
            lambda: storage.delete("nope"),
        ):
            with pytest.raises(StorageError):
                operation()

    def test_exists(self, storage):
        assert not storage.exists("a.seg")
        storage.create("a.seg")
        assert storage.exists("a.seg")

    def test_list_sorted(self, storage):
        for name in ("c.seg", "a.seg", "b.seg"):
            storage.create(name)
        assert storage.list() == ["a.seg", "b.seg", "c.seg"]

    def test_delete(self, storage):
        storage.create("a.seg")
        storage.delete("a.seg")
        assert not storage.exists("a.seg")
        assert storage.list() == []


class TestSealing:
    def test_sealed_file_rejects_appends(self, storage):
        storage.create("a.seg")
        storage.append("a.seg", b"data")
        storage.seal("a.seg")
        assert storage.is_sealed("a.seg")
        with pytest.raises(StorageError):
            storage.append("a.seg", b"more")

    def test_sealed_file_still_readable(self, storage):
        storage.create("a.seg")
        storage.append("a.seg", b"data")
        storage.seal("a.seg")
        assert storage.read_all("a.seg") == b"data"

    def test_unsealed_by_default(self, storage):
        storage.create("a.seg")
        assert not storage.is_sealed("a.seg")

    def test_delete_sealed(self, storage):
        storage.create("a.seg")
        storage.seal("a.seg")
        storage.delete("a.seg")
        assert not storage.exists("a.seg")


class TestStats:
    def test_counters_track_operations(self, storage):
        storage.create("a.seg")
        storage.append("a.seg", b"12345")
        storage.read_all("a.seg")
        storage.seal("a.seg")
        stats = storage.stats.snapshot()
        assert stats["appends"] == 1
        assert stats["appended_bytes"] == 5
        assert stats["reads"] == 1
        assert stats["read_bytes"] == 5
        assert stats["seals"] == 1


class TestFileStorageSpecifics:
    def test_persists_across_instances(self, tmp_path):
        root = str(tmp_path / "store")
        first = FileStorage(root)
        first.create("a.seg")
        first.append("a.seg", b"persisted")
        first.seal("a.seg")
        second = FileStorage(root)
        assert second.read_all("a.seg") == b"persisted"
        assert second.is_sealed("a.seg")

    def test_subdirectory_names(self, tmp_path):
        storage = FileStorage(str(tmp_path / "store"))
        storage.create("sub/dir/file.seg")
        storage.append("sub/dir/file.seg", b"x")
        assert storage.list() == ["sub/dir/file.seg"]
