"""Chunk, index and cache unit tests (reservoir building blocks)."""

import pytest

from repro.common.compression import codec_by_name
from repro.common.errors import SerdeError
from repro.events import Event, FieldType, Schema, SchemaField
from repro.reservoir import Chunk, ChunkCache, ChunkMeta, ChunkState, ReservoirIndex

SCHEMA = Schema(
    [SchemaField("v", FieldType.INT), SchemaField("s", FieldType.STRING)],
    schema_id=0,
)
CODEC = codec_by_name("zlib:6")


def _event(i, ts=None):
    return Event(f"e{i}", ts if ts is not None else i * 10, {"v": i, "s": f"x{i}"})


class TestChunk:
    def test_append_in_order(self):
        chunk = Chunk(0, 0)
        for i in range(5):
            assert chunk.append(_event(i)) == i
        assert chunk.first_ts == 0
        assert chunk.last_ts == 40

    def test_late_insert_keeps_order(self):
        chunk = Chunk(0, 0)
        chunk.append(_event(0, ts=10))
        chunk.append(_event(1, ts=30))
        position = chunk.append(_event(2, ts=20))
        assert position == 1
        assert [e.timestamp for e in chunk.events] == [10, 20, 30]

    def test_equal_ts_inserts_after(self):
        chunk = Chunk(0, 0)
        chunk.append(_event(0, ts=10))
        chunk.append(_event(1, ts=30))
        position = chunk.append(_event(2, ts=10))
        assert position == 1  # after the existing ts=10 event

    def test_lifecycle_transitions(self):
        chunk = Chunk(0, 0)
        chunk.append(_event(0))
        assert chunk.state is ChunkState.OPEN
        chunk.mark_transition(now_ms=100)
        assert chunk.state is ChunkState.TRANSITION
        assert chunk.closed_at_ms == 100
        chunk.append(_event(1, ts=5))  # transition chunks accept late data
        chunk.mark_closed()
        with pytest.raises(ValueError):
            chunk.append(_event(2))

    def test_double_transition_rejected(self):
        chunk = Chunk(0, 0)
        chunk.mark_transition(1)
        with pytest.raises(ValueError):
            chunk.mark_transition(2)

    def test_serialize_roundtrip(self):
        chunk = Chunk(7, 0)
        for i in range(20):
            chunk.append(_event(i))
        payload = chunk.serialize(SCHEMA, CODEC)
        restored = Chunk.deserialize(payload, lambda sid: SCHEMA)
        assert restored.chunk_id == 7
        assert restored.state is ChunkState.CLOSED
        assert restored.events == chunk.events

    def test_serialize_wrong_schema_rejected(self):
        chunk = Chunk(0, 3)
        with pytest.raises(SerdeError):
            chunk.serialize(SCHEMA, CODEC)  # schema_id 0 != 3

    def test_compression_shrinks(self):
        chunk = Chunk(0, 0)
        for i in range(200):
            chunk.append(Event(f"e{i}", i, {"v": 1, "s": "same-string"}))
        compressed = chunk.serialize(SCHEMA, codec_by_name("zlib:6"))
        raw = chunk.serialize(SCHEMA, codec_by_name("none"))
        assert len(compressed) < len(raw) / 2


class TestReservoirIndex:
    def _meta(self, chunk_id, first, last):
        return ChunkMeta(chunk_id, f"f{chunk_id}", 0, 10, first, last, 5)

    def test_ordering_enforced(self):
        index = ReservoirIndex()
        index.add(self._meta(0, 0, 10))
        with pytest.raises(ValueError):
            index.add(self._meta(0, 20, 30))  # duplicate id
        with pytest.raises(ValueError):
            index.add(self._meta(1, 5, 30))  # overlapping range

    def test_position_of_chunk(self):
        index = ReservoirIndex()
        for i in range(5):
            index.add(self._meta(i * 2, i * 100, i * 100 + 50))
        assert index.position_of_chunk(4) == 2
        assert index.position_of_chunk(5) is None

    def test_first_position_covering(self):
        index = ReservoirIndex()
        index.add(self._meta(0, 0, 50))
        index.add(self._meta(1, 100, 150))
        assert index.first_position_covering(25) == 0
        assert index.first_position_covering(75) == 1  # gap -> next chunk
        assert index.first_position_covering(125) == 1
        assert index.first_position_covering(500) == 2  # past everything

    def test_covering_before_all_data(self):
        index = ReservoirIndex()
        index.add(self._meta(0, 100, 150))
        assert index.first_position_covering(10) == 0

    def test_total_events(self):
        index = ReservoirIndex()
        index.add(self._meta(0, 0, 10))
        index.add(self._meta(1, 20, 30))
        assert index.total_events() == 10

    def test_serde_roundtrip(self):
        index = ReservoirIndex()
        for i in range(4):
            index.add(self._meta(i, i * 100, i * 100 + 50))
        restored = ReservoirIndex.from_bytes(index.to_bytes())
        assert len(restored) == 4
        assert restored.get(2).first_ts == 200


class TestChunkCache:
    def test_lru_eviction_order(self):
        cache = ChunkCache(2)
        cache.put_demand(1, ["a"])
        cache.put_demand(2, ["b"])
        cache.get(1)  # refresh 1
        cache.put_demand(3, ["c"])  # evicts 2
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_get_miss_counts(self):
        cache = ChunkCache(2)
        assert cache.get(9) is None
        assert cache.stats.demand_misses == 1

    def test_prefetch_accounting(self):
        cache = ChunkCache(2)
        cache.put_prefetch(1, ["a"])
        assert cache.stats.prefetch_loads == 1
        assert cache.get(1) == ["a"]
        assert cache.stats.hits == 1

    def test_wasted_prefetch_detected(self):
        cache = ChunkCache(1)
        cache.put_prefetch(1, ["a"])
        cache.put_demand(2, ["b"])  # evicts 1 before any use
        assert cache.stats.prefetch_wasted == 1

    def test_used_prefetch_not_wasted(self):
        cache = ChunkCache(1)
        cache.put_prefetch(1, ["a"])
        cache.get(1)
        cache.put_demand(2, ["b"])
        assert cache.stats.prefetch_wasted == 0

    def test_peek_does_not_touch_stats(self):
        cache = ChunkCache(2)
        cache.put_demand(1, ["a"])
        assert cache.peek(1)
        assert not cache.peek(9)
        assert cache.stats.hits == 0
        assert cache.stats.demand_misses == 0

    def test_invalidate(self):
        cache = ChunkCache(2)
        cache.put_demand(1, ["a"])
        cache.invalidate(1)
        assert 1 not in cache

    def test_miss_rate(self):
        cache = ChunkCache(2)
        cache.get(1)
        cache.put_demand(1, ["a"])
        cache.get(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ChunkCache(0)

    def test_duplicate_prefetch_ignored(self):
        cache = ChunkCache(2)
        cache.put_prefetch(1, ["a"])
        cache.put_prefetch(1, ["a"])
        assert cache.stats.prefetch_loads == 1
