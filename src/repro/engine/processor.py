"""Processor units — Algorithm 1.

A processor unit single-threadedly (here: cooperatively, one
``run_once`` per pump) handles operational requests, polls its active
and replica consumers, routes messages to task processors, and replies
for active tasks. It keeps revoked task processors around as **stale**
data leftovers, which the sticky strategy (Figure 7) exploits to turn
future reassignments into cheap delta recoveries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import EngineError
from repro.engine.catalog import (
    CHECKPOINTS_TOPIC,
    OPERATIONS_TOPIC,
    REPLY_TOPIC_PREFIX,
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
)
from repro.engine.envelope import EventEnvelope, ReplyEnvelope
from repro.engine.task import TaskCheckpoint, TaskProcessor
from repro.lsm.db import LsmConfig
from repro.messaging.broker import MessageBus
from repro.messaging.consumer import Consumer
from repro.messaging.groups import GroupCoordinator
from repro.messaging.log import TopicPartition
from repro.messaging.producer import Producer
from repro.reservoir.reservoir import ReservoirConfig

if TYPE_CHECKING:  # pragma: no cover - circular-import guard
    from repro.engine.cluster import RailgunCluster

#: consumer group shared by every active-task consumer (§3.3: "all
#: Railgun active task consumers belong to the same consumer group")
ACTIVE_GROUP = "railgun-active"


def replica_group(unit_id: str) -> str:
    """Each unit's replica consumer gets its own group (§3.3)."""
    return f"railgun-replica.{unit_id}"


@dataclass
class RecoveryStats:
    """Counters for the recovery/ablation benches."""

    recoveries: int = 0
    delta_recoveries: int = 0
    fresh_starts: int = 0
    promotions: int = 0
    bytes_transferred: int = 0
    checkpoints_taken: int = 0


@dataclass
class UnitConfig:
    """Per-unit tuning."""

    checkpoint_interval: int = 200  # messages per task between checkpoints
    poll_max_records: int = 64
    reservoir: ReservoirConfig = field(default_factory=ReservoirConfig)
    lsm: LsmConfig = field(default_factory=LsmConfig)
    max_stale_tasks: int = 16


class ProcessorUnit:
    """One back-end worker: a set of task processors on one thread."""

    def __init__(
        self,
        unit_id: str,
        node_id: str,
        bus: MessageBus,
        coordinator: GroupCoordinator,
        clock,
        cluster: "RailgunCluster | None" = None,
        config: UnitConfig | None = None,
    ) -> None:
        self.unit_id = unit_id
        self.node_id = node_id
        self.bus = bus
        self.clock = clock
        self.cluster = cluster
        self.config = config if config is not None else UnitConfig()
        self.catalog = Catalog()
        self.stats = RecoveryStats()
        self._ops_offset = 0
        self._ops_tp = TopicPartition(OPERATIONS_TOPIC, 0)
        self.producer = Producer(bus, clock)
        self.active_consumer = Consumer(bus, coordinator, ACTIVE_GROUP, unit_id, clock)
        self.replica_consumer = Consumer(
            bus, coordinator, replica_group(unit_id), unit_id, clock
        )
        self.task_processors: dict[TopicPartition, TaskProcessor] = {}
        self.stale: dict[TopicPartition, TaskProcessor] = {}
        self._known_active: set[TopicPartition] = set()
        self._known_replica: set[TopicPartition] = set()
        self._checkpoint_counters: dict[TopicPartition, int] = {}
        self.checkpoints: dict[TopicPartition, TaskCheckpoint] = {}
        self.messages_processed = 0
        self.replies_sent = 0

    def subscribe(self, topics: list[str]) -> None:
        """Join the active and replica groups for the event topics."""
        self.active_consumer.subscribe(topics, strategy=_keep_previous_assignor)
        self.replica_consumer.subscribe(topics, strategy=_keep_previous_assignor)

    # -- Algorithm 1 -----------------------------------------------------------------

    def run_once(self) -> int:
        """One loop iteration; returns the number of messages handled.

        The consumers are drained in per-partition batches: each batch
        goes through the task processor's batch-apply entry point (which
        amortizes the reservoir bookkeeping over in-order runs), then
        replies stream out in the original per-message order.
        """
        self._process_operational_requests()
        self._reconcile_assignments()
        handled = 0
        active_tps = set(self.active_consumer.assignment())
        active_batches = self.active_consumer.poll_batches(self.config.poll_max_records)
        replica_batches = self.replica_consumer.poll_batches(self.config.poll_max_records)
        for tp, records in active_batches + replica_batches:
            event_records = [
                record for record in records if isinstance(record.value, EventEnvelope)
            ]
            if not event_records:
                continue
            processor = self._processor_for(tp)
            answers = processor.process_batch(
                [(record.offset, record.value.event) for record in event_records]
            )
            handled += len(event_records)
            self.messages_processed += len(event_records)
            self._note_processed(tp, processor, len(event_records))
            if tp in active_tps:
                for record, answer in zip(event_records, answers):
                    if answer is not None:
                        self._send_reply(record.value, tp, answer)
        if active_batches:
            # Advance the group's committed offsets so a future owner
            # knows which messages already got replies.
            self.active_consumer.commit()
        return handled

    # -- operational requests (Algorithm 1 line 2) --------------------------------------

    def _process_operational_requests(self) -> None:
        records = self.bus.read(self._ops_tp, self._ops_offset, 1000)
        for message in records:
            self._ops_offset = message.offset + 1
            op = message.value
            self.catalog.apply(op)
            if isinstance(op, CreateMetricOp):
                for tp, processor in self.task_processors.items():
                    if tp.topic == op.metric.topic:
                        processor.add_metric(op.metric)
            elif isinstance(op, DeleteMetricOp):
                for processor in self.task_processors.values():
                    processor.remove_metric(op.metric_id)
            elif isinstance(op, EvolveSchemaOp):
                stream = self.catalog.streams[op.stream]
                for tp, processor in self.task_processors.items():
                    if processor.stream_name == op.stream:
                        processor.evolve_schema(stream)
            elif isinstance(op, (CreateStreamOp, AddPartitionerOp)):
                pass  # topics/partitions handled by the cluster harness

    # -- assignment reconciliation ---------------------------------------------------------

    def _reconcile_assignments(self) -> None:
        current_active = set(self.active_consumer.assignment())
        current_replica = set(self.replica_consumer.assignment())
        owned = current_active | current_replica

        # Revocations: keep data as stale leftovers.
        for tp in (self._known_active | self._known_replica) - owned:
            processor = self.task_processors.pop(tp, None)
            if processor is not None:
                self.stale[tp] = processor
                self._trim_stale()

        # Additions: initialize task processors (recovery if needed).
        for tp in current_active - self._known_active:
            self._initialize_task(tp, as_active=True)
        for tp in current_replica - self._known_replica:
            if tp not in self.task_processors:
                self._initialize_task(tp, as_active=False)

        self._known_active = current_active
        self._known_replica = current_replica

    def _trim_stale(self) -> None:
        while len(self.stale) > self.config.max_stale_tasks:
            oldest = next(iter(self.stale))
            del self.stale[oldest]

    def _initialize_task(self, tp: TopicPartition, as_active: bool) -> None:
        consumer = self.active_consumer if as_active else self.replica_consumer
        existing = self.task_processors.get(tp)
        if existing is not None:
            # Promotion: a live replica became active (or vice versa);
            # no data copy is needed (§4.2: "recovered immediate").
            consumer.seek(tp, existing.next_offset)
            self.stats.promotions += 1
            return
        stream = self.catalog.stream_of_topic(tp.topic)
        if stream is None:
            # The catalogue may lag the topic creation; retry next loop.
            return
        metrics = self.catalog.metrics_for_topic(tp.topic)
        donor_checkpoint = None
        if self.cluster is not None:
            donor_checkpoint = self.cluster.request_recovery_data(
                tp, exclude_unit=self.unit_id,
                local_sealed=self._stale_sealed_files(tp),
            )
        if donor_checkpoint is not None:
            local_files = self._stale_files(tp)
            processor = TaskProcessor.restore(
                donor_checkpoint,
                stream,
                metrics,
                reservoir_config=self.config.reservoir,
                lsm_config=self.config.lsm,
                local_files=local_files,
            )
            self.stats.recoveries += 1
            if tp in self.stale:
                self.stats.delta_recoveries += 1
            self.stats.bytes_transferred += donor_checkpoint.data_bytes()
            if as_active:
                # Resume where replies are owed: messages the previous
                # owner committed (replied to) need no re-send, but the
                # stretch between the committed offset and the donor's
                # head may have been processed without a reply.
                committed = self.bus.committed_offset(ACTIVE_GROUP, tp)
                consumer.seek(tp, min(committed, processor.next_offset))
            else:
                consumer.seek(tp, processor.next_offset)
        else:
            processor = TaskProcessor.build(
                tp,
                stream,
                metrics,
                reservoir_config=self.config.reservoir,
                lsm_config=self.config.lsm,
            )
            self.stats.fresh_starts += 1
            consumer.seek(tp, 0)
        self.stale.pop(tp, None)
        self.task_processors[tp] = processor

    def _stale_files(self, tp: TopicPartition) -> dict[str, bytes]:
        processor = self.stale.get(tp)
        if processor is None:
            return {}
        files: dict[str, bytes] = {}
        for storage in (processor.reservoir.storage, processor.state.db.storage):
            for name in storage.list():
                files[name] = storage.read_all(name)
        return files

    def _stale_sealed_files(self, tp: TopicPartition) -> set[str]:
        processor = self.stale.get(tp)
        if processor is None:
            return set()
        sealed = set()
        storage = processor.reservoir.storage
        for name in storage.list():
            if storage.is_sealed(name):
                sealed.add(name)
        state_storage = processor.state.db.storage
        for name in state_storage.list():
            if name.endswith(".sst"):
                sealed.add(name)
        return sealed

    def _processor_for(self, tp: TopicPartition) -> TaskProcessor:
        processor = self.task_processors.get(tp)
        if processor is None:
            # Message for a task we were just assigned but have not yet
            # initialized (catalogue lag) — initialize now.
            self._initialize_task(
                tp, as_active=tp in set(self.active_consumer.assignment())
            )
            processor = self.task_processors.get(tp)
            if processor is None:
                raise EngineError(
                    f"unit {self.unit_id} polled message for uninitializable task {tp}"
                )
        return processor

    # -- replies & checkpoints ---------------------------------------------------------------

    def _send_reply(self, envelope: EventEnvelope, tp: TopicPartition, results) -> None:
        reply = ReplyEnvelope(
            correlation_id=envelope.correlation_id,
            event_id=envelope.event.event_id,
            task=tp,
            results=results,
        )
        self.producer.send(
            REPLY_TOPIC_PREFIX + envelope.origin_node,
            key=None,
            value=reply,
            timestamp=self.clock.now(),
        )
        self.replies_sent += 1

    def _note_processed(
        self, tp: TopicPartition, processor: TaskProcessor, count: int
    ) -> None:
        """Advance the checkpoint counter by ``count`` processed messages.

        A checkpoint is taken (at a message boundary, so it is still
        consistent) whenever the counter crosses a multiple of the
        interval; a batch crossing several multiples checkpoints once —
        the later checkpoint subsumes the earlier ones.
        """
        if count <= 0:
            return
        counter = self._checkpoint_counters.get(tp, 0)
        advanced = counter + count
        self._checkpoint_counters[tp] = advanced
        interval = self.config.checkpoint_interval
        if advanced // interval == counter // interval:
            return
        checkpoint = processor.checkpoint()
        self.checkpoints[tp] = checkpoint
        self.stats.checkpoints_taken += 1
        self.producer.send(
            CHECKPOINTS_TOPIC,
            key=str(tp),
            value=(self.unit_id, self.node_id, str(tp), checkpoint.offset),
            timestamp=self.clock.now(),
        )

    # -- recovery donor side ------------------------------------------------------------------

    def donate_checkpoint(self, tp: TopicPartition, exclude_files: set[str]) -> TaskCheckpoint | None:
        """Serve a (fresh) checkpoint of a task this unit has data for.

        Live task processors are preferred (a consistent checkpoint is
        taken on the spot); stale leftovers serve their last state.
        ``exclude_files`` implements the delta copy: immutable files the
        receiver already holds are stripped from the payload.
        """
        processor = self.task_processors.get(tp) or self.stale.get(tp)
        if processor is None:
            return None
        checkpoint = processor.checkpoint()
        if exclude_files:
            checkpoint.reservoir_files = {
                name: data
                for name, data in checkpoint.reservoir_files.items()
                if not (name in exclude_files and name in checkpoint.reservoir_sealed)
            }
            checkpoint.state_files = {
                name: data
                for name, data in checkpoint.state_files.items()
                if name not in exclude_files
            }
        return checkpoint

    def data_offset_for(self, tp: TopicPartition) -> int | None:
        """Highest offset this unit holds data for (donor ranking)."""
        processor = self.task_processors.get(tp) or self.stale.get(tp)
        return processor.next_offset if processor is not None else None


def _keep_previous_assignor(subscriptions, partitions, previous):
    """Placeholder strategy: engine installs assignments externally.

    Keeps whatever each member had (minus partitions that vanished), so
    the coordinator's internal rebalance never fights the Figure 7
    authority. Marked ``allows_incomplete``: partitions may be briefly
    unowned until the authority installs the real assignment.
    """
    valid = set(partitions)
    return {
        member: {tp for tp in previous.get(member, set()) if tp in valid}
        for member in subscriptions
    }


_keep_previous_assignor.allows_incomplete = True  # type: ignore[attr-defined]
