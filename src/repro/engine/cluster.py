"""The Railgun cluster harness and client facade.

Owns the world: the message bus, the group coordinator, all nodes, the
rebalance authority (running the Figure 7 strategy across the active and
replica consumer groups) and the recovery brokerage between processor
units. The harness is cooperative/step-driven: ``pump()`` advances the
whole cluster by one loop iteration per component, which keeps every
multi-node test deterministic.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.common.clock import ManualClock
from repro.common.errors import EngineError
from repro.engine.assignment import (
    Assignment,
    PreviousState,
    ProcessorInfo,
    StickyAssignmentStrategy,
)
from repro.engine.catalog import (
    CHECKPOINTS_TOPIC,
    GLOBAL_PARTITIONER,
    OPERATIONS_TOPIC,
    REPLY_TOPIC_PREFIX,
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    MetricDef,
    StreamDef,
    topic_name,
)
from repro.engine.node import RailgunNode
from repro.engine.processor import ACTIVE_GROUP, UnitConfig, replica_group
from repro.engine.task import TaskCheckpoint
from repro.events.event import Event
from repro.events.schema import Schema
from repro.messaging.broker import MessageBus
from repro.messaging.groups import GroupCoordinator
from repro.messaging.log import TopicPartition
from repro.messaging.producer import Producer
from repro.query.parser import parse_query


@dataclass
class Reply:
    """A completed client response."""

    event: Event
    stream: str
    results: dict[int, dict[str, Any]]
    latency_ms: int

    def metric(self, metric_id: int) -> dict[str, Any]:
        """All columns of one metric."""
        return self.results.get(metric_id, {})

    def value(self, metric_id: int, column: str) -> Any:
        """One aggregation value, e.g. ``reply.value(0, "sum(amount)")``."""
        return self.results.get(metric_id, {}).get(column)


def _normalize_fields(schema: object) -> tuple[tuple[str, str], ...]:
    """Accept a Schema, mapping, or (name, type) iterable."""
    if isinstance(schema, Schema):
        return tuple((f.name, f.field_type.value) for f in schema.fields)
    if isinstance(schema, Mapping):
        return tuple((name, str(type_name)) for name, type_name in schema.items())
    return tuple((name, str(type_name)) for name, type_name in schema)


def build_stream_def(
    catalog: Catalog,
    name: str,
    partitioners: Iterable[str],
    partitions: int,
    schema: object,
    with_global_partitioner: bool,
) -> StreamDef:
    """Validate and build a stream definition against a catalogue.

    Shared by the cooperative single-process cluster and the
    process-parallel cluster so both enforce identical DDL rules.
    """
    if name in catalog.streams:
        raise EngineError(f"stream {name!r} already exists")
    partitioner_list = list(partitioners)
    if with_global_partitioner:
        partitioner_list.append(GLOBAL_PARTITIONER)
    if not partitioner_list:
        raise EngineError("a stream needs at least one partitioner")
    fields = _normalize_fields(schema)
    declared = {field_name for field_name, _ in fields}
    for partitioner in partitioner_list:
        if partitioner != GLOBAL_PARTITIONER and partitioner not in declared:
            raise EngineError(f"partitioner {partitioner!r} is not a schema field")
    return StreamDef(name, fields, tuple(partitioner_list), partitions)


def build_metric_def(
    catalog: Catalog, query_text: str, backfill: bool = False
) -> MetricDef:
    """Parse, validate and route a Figure 4 metric against a catalogue.

    Shared by every cluster facade (cooperative, process-parallel,
    sharded frontends) so all three enforce identical metric rules and
    routing; the caller applies the returned definition to its
    catalogue and replicates it to its back-end.
    """
    query = parse_query(query_text)
    if query.as_of is not None:
        raise EngineError(
            "AS OF is a read-time clause; a metric definition has no "
            "read instant — use query_as_of() on the spliced metric"
        )
    if query.stream not in catalog.streams:
        raise EngineError(f"unknown stream {query.stream!r}")
    validate_metric_fields(catalog, query)
    return MetricDef(
        metric_id=catalog.next_metric_id,
        query_text=query_text,
        stream=query.stream,
        topic=catalog.route_metric(query),
        backfill=backfill,
    )


def validate_new_partitioner(
    catalog: Catalog, stream: str, partitioner: str
) -> StreamDef | None:
    """Validate a §4 post-creation partitioner addition.

    Shared by every cluster facade so all three enforce identical DDL
    rules. Returns the stream definition, or ``None`` when the
    partitioner is already present (the addition is an idempotent
    no-op); raises for unknown streams and undeclared fields.
    """
    stream_def = catalog.streams.get(stream)
    if stream_def is None:
        raise EngineError(f"unknown stream {stream!r}")
    if partitioner in stream_def.partitioners:
        return None
    declared = {name for name, _ in stream_def.fields}
    if partitioner != GLOBAL_PARTITIONER and partitioner not in declared:
        raise EngineError(f"partitioner {partitioner!r} is not a schema field")
    return stream_def


def validate_metric_fields(catalog: Catalog, query) -> None:
    """Reject metrics referencing fields their stream does not declare."""
    stream = catalog.streams[query.stream]
    declared = {name for name, _ in stream.fields}
    for agg in query.aggregations:
        if agg.field is not None and agg.field not in declared:
            raise EngineError(
                f"aggregation field {agg.field!r} not in stream {query.stream!r}"
            )
    for field_name in query.group_by:
        if field_name not in declared:
            raise EngineError(
                f"group-by field {field_name!r} not in stream {query.stream!r}"
            )
    if query.where is not None:
        for field_name in query.where.referenced_fields():
            if field_name not in declared:
                raise EngineError(
                    f"filter field {field_name!r} not in stream {query.stream!r}"
                )


def create_cluster(execution: str = "single", **kwargs):
    """Cluster factory: ``single`` (cooperative) or ``process`` (parallel).

    ``single`` returns the step-driven :class:`RailgunCluster`.
    ``process`` runs the back-end in shard worker processes with
    byte-identical reply semantics; the ``frontends`` keyword picks the
    coordinator topology:

    - ``frontends=1`` (default): one in-process coordinator — a
      :class:`~repro.shard.parallel.ParallelCluster`.
    - ``frontends=N >= 2``: the coordinator itself is sharded over N
      frontend processes behind a
      :class:`~repro.shard.router.ClusterRouter`, each owning a sticky
      slice of the partition space and shipping work to the workers
      over its own data sockets (see ``docs/ARCHITECTURE.md``).

    Both ``process`` topologies accept ``transport="shm"``: work
    batches and replies then flow columnar-packed through fixed-slot
    shared-memory ring buffers (one SPSC ring per direction per link)
    instead of serde-framed pipe/socket messages, with the pipe or
    socket reduced to a control channel plus per-publish doorbells —
    see ``docs/PERFORMANCE.md`` for the layout and when to pick which.
    The default ``transport="socket"`` remains the portable fallback
    (and the only option for cross-host links). Crash semantics are
    identical: a dead peer's ring is detected via heartbeats or the
    closed flag and quarantined exactly like a dead socket, then
    replayed from the durable log/checkpoint watermarks.

    Every topology accepts ``durable_dir=<path>``: partition logs then
    live in disk-backed segment files
    (:class:`~repro.messaging.durable.DurableBus`), the shard
    topologies persist their checkpoint store next to them, and
    checkpoint-aware truncation deletes segments below every stored
    checkpoint offset. Reopening a single-coordinator ``process``-mode
    cluster (``frontends=1``) over the same directory recovers
    catalogue, logs and checkpoints from disk and replays only each
    task's uncheckpointed tail; in the sharded-frontend topology the
    durable recovery unit is the *frontend process* (crashed frontends
    reopen their on-disk logs), while a full ``ClusterRouter`` reopen
    still requires re-issuing DDL (see the "Durability" section of
    ``docs/ARCHITECTURE.md``).

    Every topology also accepts ``serve="tcp://host:port"`` (port 0 for
    an ephemeral port): the cluster is then additionally exposed over
    TCP through the asyncio front door
    (:func:`repro.server.server.serve_cluster`); the handle is attached
    as ``cluster.server`` and stopped automatically by
    ``cluster.close()``.

    Unknown keyword arguments raise :class:`ValueError` naming the bad
    keywords and the full matrix of valid ones for each topology —
    a silently ignored typo (``checkpoint_evry=...``) is a misconfigured
    cluster that looks healthy until it isn't.
    """
    serve = kwargs.pop("serve", None)
    if execution == "single":
        cls, label = RailgunCluster, 'execution="single"'
    elif execution == "process":
        frontends = kwargs.get("frontends", 1)
        if frontends is not None and frontends > 1:
            from repro.shard.router import ClusterRouter

            cls, label = ClusterRouter, 'execution="process", frontends>=2'
        else:
            from repro.shard.parallel import ParallelCluster

            kwargs.pop("frontends", None)
            cls, label = ParallelCluster, 'execution="process", frontends=1'
    else:
        raise EngineError(f"unknown execution mode {execution!r}")
    valid = [
        name
        for name in inspect.signature(cls.__init__).parameters
        if name != "self"
    ]
    unknown = sorted(set(kwargs) - set(valid))
    if unknown:
        raise ValueError(
            f"unknown create_cluster keyword(s) {', '.join(map(repr, unknown))} "
            f"for {label} ({cls.__name__}); valid keywords are: "
            f"{', '.join(valid)} "
            "(plus 'frontends' to pick the process-mode topology and "
            "'serve' to expose the cluster over TCP)"
        )
    cluster = cls(**kwargs)
    if serve is not None:
        from repro.server.server import serve_cluster

        try:
            cluster.server = serve_cluster(cluster, serve)
        except Exception:
            cluster.close()
            raise
        original_close = cluster.close

        def _close_with_server(*args, **close_kwargs):
            cluster.server.stop()
            original_close(*args, **close_kwargs)

        cluster.close = _close_with_server
    return cluster


class RailgunCluster:
    """N equal Railgun nodes over one message bus (Figure 3)."""

    def __init__(
        self,
        nodes: int = 1,
        processor_units: int = 2,
        replication_factor: int = 0,
        brokers: int = 1,
        session_timeout_ms: int = 10_000,
        unit_config: UnitConfig | None = None,
        tick_ms: int = 1,
        assignment_strategy: object | None = None,
        durable_dir: str | None = None,
        durable_fsync: str = "batch",
    ) -> None:
        if nodes <= 0:
            raise EngineError(f"need at least one node: {nodes}")
        from repro.telemetry import MetricsRegistry

        #: single-process registry; :meth:`telemetry` is the merged
        #: (here: merge-of-one) stable-schema view all facades share.
        self.metrics = MetricsRegistry("engine")
        self.clock = ManualClock(start_ms=1)
        self.durable_dir = durable_dir
        if durable_dir is not None:
            from repro.messaging.durable import DurableBus

            self.bus = DurableBus(durable_dir, brokers=brokers, fsync=durable_fsync)
        else:
            self.bus = MessageBus(brokers=brokers)
        self.coordinator = GroupCoordinator(self.bus, session_timeout_ms)
        self.coordinator.external_authority = self._on_group_change
        # Any object with .assign(tasks, processors, previous) works —
        # the ablation bench swaps in the non-sticky baseline here.
        self.strategy = (
            assignment_strategy
            if assignment_strategy is not None
            else StickyAssignmentStrategy(replication_factor)
        )
        self.replication_factor = replication_factor
        self.unit_config = unit_config if unit_config is not None else UnitConfig()
        self.tick_ms = tick_ms
        self.catalog = Catalog()
        self.nodes: dict[str, RailgunNode] = {}
        self._backfills: list = []
        self._assignment_dirty = False
        self._last_assignment: Assignment | None = None
        self._next_node = 0
        self._rr_cursor = 0
        self.rebalance_count = 0

        self.bus.create_topic(OPERATIONS_TOPIC, partitions=1)
        self.bus.create_topic(CHECKPOINTS_TOPIC, partitions=1)
        self._ops_producer = Producer(self.bus, self.clock)
        for _ in range(nodes):
            self.add_node(processor_units)

    # -- topology -------------------------------------------------------------------

    def add_node(self, processor_units: int = 2) -> str:
        """Add (and start) a node; returns its id."""
        if processor_units <= 0:
            # Frontend-only nodes exist only in the process-parallel
            # engine; a cooperative node must do back-end work.
            raise ValueError(f"need at least one processor unit: {processor_units}")
        node_id = f"node-{self._next_node}"
        self._next_node += 1
        self.bus.create_topic(REPLY_TOPIC_PREFIX + node_id, partitions=1)
        node = RailgunNode(
            node_id,
            self.bus,
            self.coordinator,
            self.clock,
            processor_units,
            cluster=self,
            unit_config=self.unit_config,
        )
        self.nodes[node_id] = node
        node.subscribe_units(self._event_topics())
        self._assignment_dirty = True
        return node_id

    def kill_node(self, node_id: str) -> None:
        """Fail-stop a node; detection happens via heartbeat expiry."""
        self._node(node_id).kill()

    def fail_node(self, node_id: str) -> None:
        """Kill a node and advance past the session timeout + rebalance."""
        self.kill_node(node_id)
        self.advance(self.coordinator.session_timeout_ms + 1)
        self.pump()

    def revive_node(self, node_id: str) -> None:
        """Bring a failed node back; it rejoins groups on next pump."""
        self._node(node_id).revive()
        self._assignment_dirty = True

    def alive_nodes(self) -> list[RailgunNode]:
        """Nodes currently up."""
        return [node for node in self.nodes.values() if node.alive]

    def _node(self, node_id: str) -> RailgunNode:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise EngineError(f"unknown node {node_id!r}") from None

    # -- DDL ----------------------------------------------------------------------------

    def create_stream(
        self,
        name: str,
        partitioners: Iterable[str],
        partitions: int = 4,
        schema: object = (),
        replication: int = 1,
        with_global_partitioner: bool = False,
    ) -> None:
        """Register a stream: schema + partitioners + topic creation."""
        stream = build_stream_def(
            self.catalog, name, partitioners, partitions, schema,
            with_global_partitioner,
        )
        for partitioner in stream.partitioners:
            count = 1 if partitioner == GLOBAL_PARTITIONER else partitions
            self.bus.create_topic(
                topic_name(name, partitioner), partitions=count,
                replication=min(self.bus.broker_count, 1 + self.replication_factor),
            )
        self._publish_op(CreateStreamOp(stream))
        self._sync_subscriptions()
        self._assignment_dirty = True

    def create_metric(self, query_text: str, backfill: bool = False) -> int:
        """Register a metric from a Figure 4 statement; returns metric id."""
        metric = build_metric_def(self.catalog, query_text, backfill)
        self._publish_op(CreateMetricOp(metric))
        return metric.metric_id

    def delete_metric(self, metric_id: int) -> None:
        """Remove a metric cluster-wide."""
        self._publish_op(DeleteMetricOp(metric_id))

    # -- replay & backfill ----------------------------------------------------------

    def backfill_metric(self, query_text: str) -> int:
        """Define a metric *after the fact* and materialize it from the log.

        The metric id is reserved immediately; a background
        :class:`~repro.replay.backfill.CooperativeBackfill` job (stepped
        from :meth:`pump`, so ingest never pauses) replays each
        partition's log through a shadow processor and splices the
        result into the live task processors at their exact consumption
        offsets. Once every holder is spliced the ``CreateMetricOp``
        goes out on the operations topic and the metric behaves like any
        other. Use :meth:`backfill_status` to observe completion.
        """
        from repro.replay.backfill import CooperativeBackfill

        metric = build_metric_def(self.catalog, query_text)
        self.catalog.apply(CreateMetricOp(metric))
        self._backfills.append(CooperativeBackfill(self, metric))
        return metric.metric_id

    def backfill_status(self, metric_id: int) -> str:
        """``"running"``, ``"complete"``, or ``"unknown"`` for an id."""
        for job in self._backfills:
            if job.metric.metric_id == metric_id:
                return "complete" if job.done else "running"
        return "unknown"

    def metric_values(self, metric_id: int) -> dict[tuple, dict[str, Any]]:
        """A metric's current per-group values, merged across partitions.

        Per partition the furthest-ahead holder answers (the active
        owner, or its equal after a quiesce).
        """
        metric = self.catalog.metrics.get(metric_id)
        if metric is None:
            raise EngineError(f"unknown metric id {metric_id}")
        merged: dict[tuple, dict[str, Any]] = {}
        for tp in self.bus.topic_partitions(metric.topic):
            best = None
            for node in self.alive_nodes():
                for unit in node.units:
                    processor = unit.task_processors.get(tp)
                    if processor is None or not processor.has_metric(metric_id):
                        continue
                    if best is None or processor.next_offset > best.next_offset:
                        best = processor
            if best is not None:
                merged.update(best.metric_values(metric_id))
        return merged

    def query_as_of(self, metric_id: int, as_of: int):
        """Time-travel read: the metric's values at event time ``as_of``
        (:func:`repro.replay.asof.as_of_values` over this cluster's bus)."""
        from repro.replay.asof import as_of_values

        metric = self.catalog.metrics.get(metric_id)
        if metric is None:
            raise EngineError(f"unknown metric id {metric_id}")
        return as_of_values(
            self.bus,
            self.bus.topic_partitions(metric.topic),
            self.catalog.streams[metric.stream],
            self.catalog.metrics_for_topic(metric.topic),
            metric_id,
            as_of,
            reservoir_config=self.unit_config.reservoir,
            lsm_config=self.unit_config.lsm,
        )

    def evolve_schema(self, stream: str, new_fields: object) -> None:
        """Append fields to a stream schema (old chunks stay readable)."""
        self._publish_op(EvolveSchemaOp(stream, _normalize_fields(new_fields)))

    def add_partitioner(self, stream: str, partitioner: str) -> None:
        """Add a top-level partitioner after stream creation (§4).

        Creates the new topic and triggers a rebalance; existing topics'
        processing is unaffected thanks to sticky assignment.
        """
        stream_def = validate_new_partitioner(self.catalog, stream, partitioner)
        if stream_def is None:
            return
        count = 1 if partitioner == GLOBAL_PARTITIONER else stream_def.partitions
        self.bus.create_topic(topic_name(stream, partitioner), partitions=count)
        self._publish_op(AddPartitionerOp(stream, partitioner))
        self._sync_subscriptions()
        self._assignment_dirty = True

    def _publish_op(self, op: object) -> None:
        self.catalog.apply(op)
        self._ops_producer.send(OPERATIONS_TOPIC, key=None, value=op)

    def _event_topics(self) -> list[str]:
        return sorted(
            topic
            for stream in self.catalog.streams.values()
            for topic in stream.topics()
        )

    def _sync_subscriptions(self) -> None:
        topics = self._event_topics()
        for node in self.alive_nodes():
            for unit in node.units:
                if unit.active_consumer.is_member():
                    unit.active_consumer.update_subscription(topics)
                if unit.replica_consumer.is_member():
                    unit.replica_consumer.update_subscription(topics)

    # -- the data path --------------------------------------------------------------------

    def send(
        self,
        stream: str,
        fields: Mapping[str, Any] | None = None,
        timestamp: int | None = None,
        event: Event | None = None,
        event_id: str | None = None,
        node_id: str | None = None,
        max_rounds: int = 500,
    ) -> Reply:
        """Send one event and pump the world until its reply completes."""
        metrics = self.metrics
        batch_started = metrics.now()
        correlation, frontend = self.send_async(
            stream, fields=fields, timestamp=timestamp, event=event,
            event_id=event_id, node_id=node_id,
        )
        metrics.counter_add("engine_batches_in_total")
        metrics.counter_add("engine_events_in_total")
        for _ in range(max_rounds):
            completed = frontend.take_completed(correlation)
            if completed is not None:
                metrics.counter_add("engine_replies_out_total")
                metrics.observe_since("engine_batch_ms", batch_started)
                return Reply(
                    event=completed.event,
                    stream=completed.stream,
                    results=completed.results,
                    latency_ms=completed.latency_ms,
                )
            self.pump()
        raise EngineError(
            f"reply for correlation {correlation} did not complete within "
            f"{max_rounds} pump rounds"
        )

    def send_async(
        self,
        stream: str,
        fields: Mapping[str, Any] | None = None,
        timestamp: int | None = None,
        event: Event | None = None,
        event_id: str | None = None,
        node_id: str | None = None,
    ):
        """Publish an event without waiting; returns (corr_id, frontend)."""
        if event is None:
            if fields is None:
                raise EngineError("either fields or event is required")
            if timestamp is None:
                timestamp = self.clock.now()
            if event_id is None:
                event_id = f"client-{self.bus.messages_published:012d}"
            event = Event(event_id, timestamp, fields)
        node = self._pick_node(node_id)
        correlation = node.frontend.send(stream, event)
        return correlation, node.frontend

    def send_batch(
        self,
        stream: str,
        batch: Iterable[Mapping[str, Any] | Event],
        node_id: str | None = None,
        max_rounds: int = 2000,
    ) -> list[Reply]:
        """Send a batch through one frontend and pump until all replies land.

        ``batch`` items are either :class:`Event` instances or field
        mappings (timestamped with the current clock). Returns replies in
        input order. This is the client-side mirror of the engine's
        batched ingestion path: the fan-out is published in one shot and
        the cluster then pumps until every fan-in completes.
        """
        metrics = self.metrics
        batch_started = metrics.now()
        with metrics.time_stage("engine_ingest_ms"):
            events: list[Event] = []
            base_id = self.bus.messages_published
            for index, item in enumerate(batch):
                if isinstance(item, Event):
                    events.append(item)
                else:
                    # Offsetting by the index keeps ids unique within the
                    # batch and ahead of every id a previous send() minted.
                    events.append(
                        Event(
                            f"client-{base_id + index:012d}",
                            self.clock.now(),
                            item,
                        )
                    )
            node = self._pick_node(node_id)
            correlations = node.frontend.send_batch(stream, events)
        metrics.counter_add("engine_batches_in_total")
        metrics.counter_add("engine_events_in_total", len(events))
        outstanding = set(correlations)
        for _ in range(max_rounds):
            if not outstanding:
                break
            self.pump()
            for correlation in list(outstanding):
                if correlation in node.frontend.completed:
                    outstanding.discard(correlation)
        if outstanding:
            raise EngineError(
                f"{len(outstanding)} of {len(correlations)} batched replies did "
                f"not complete within {max_rounds} pump rounds"
            )
        replies: list[Reply] = []
        with metrics.time_stage("engine_reply_ms"):
            for correlation in correlations:
                completed = node.frontend.take_completed(correlation)
                replies.append(
                    Reply(
                        event=completed.event,
                        stream=completed.stream,
                        results=completed.results,
                        latency_ms=completed.latency_ms,
                    )
                )
        metrics.counter_add("engine_replies_out_total", len(replies))
        metrics.observe_since("engine_batch_ms", batch_started)
        return replies

    def _pick_node(self, node_id: str | None) -> RailgunNode:
        if node_id is not None:
            node = self._node(node_id)
            if not node.alive:
                raise EngineError(f"node {node_id!r} is down")
            return node
        alive = self.alive_nodes()
        if not alive:
            raise EngineError("no alive nodes")
        node = alive[self._rr_cursor % len(alive)]
        self._rr_cursor += 1
        return node

    # -- the world loop ----------------------------------------------------------------------

    def pump(self) -> int:
        """One cooperative step of every component; returns work count."""
        self.clock.advance(self.tick_ms)
        self.coordinator.tick(self.clock.now())
        self._ensure_membership()
        if self._assignment_dirty:
            self._rebalance()
        handled = 0
        # Backfills step first: no unit is mid-batch here, so processor
        # offsets are exact splice points.
        for job in self._backfills:
            if not job.done:
                handled += job.step()
        # One cooperative step is dispatch and processing in one: the
        # single-process engine has no finer per-hop boundary to time.
        with self.metrics.time_stage("engine_dispatch_ms"):
            for node in self.alive_nodes():
                handled += node.pump()
        return handled

    def run_until_quiet(self, max_rounds: int = 300, quiet_rounds: int = 3) -> int:
        """Pump until nothing happens for ``quiet_rounds`` consecutive steps."""
        total = 0
        quiet = 0
        for _ in range(max_rounds):
            handled = self.pump()
            total += handled
            pending = sum(len(n.frontend.pending) for n in self.alive_nodes())
            if handled == 0 and pending == 0:
                quiet += 1
                if quiet >= quiet_rounds:
                    return total
            else:
                quiet = 0
        return total

    def advance(self, ms: int) -> None:
        """Advance the virtual clock (e.g. past the session timeout)."""
        self.clock.advance(ms)

    def _ensure_membership(self) -> None:
        """Revived nodes rejoin their groups; dead nodes stay out."""
        topics = self._event_topics()
        from repro.engine.processor import _keep_previous_assignor

        for node in self.alive_nodes():
            for unit in node.units:
                if not unit.active_consumer.is_member():
                    unit.active_consumer.rejoin(topics, strategy=_keep_previous_assignor)
                    self._assignment_dirty = True
                if not unit.replica_consumer.is_member():
                    unit.replica_consumer.rejoin(topics, strategy=_keep_previous_assignor)

    # -- the Figure 7 authority ---------------------------------------------------------------

    def _on_group_change(self, group_id: str) -> None:
        if group_id == ACTIVE_GROUP or group_id.startswith("railgun-replica."):
            self._assignment_dirty = True

    def _rebalance(self) -> None:
        self._assignment_dirty = False
        tasks = [
            tp
            for topic in self._event_topics()
            for tp in self.bus.topic_partitions(topic)
        ]
        processors: list[ProcessorInfo] = []
        units_by_id = {}
        for node in self.alive_nodes():
            for unit in node.units:
                if unit.active_consumer.is_member():
                    processors.append(ProcessorInfo(unit.unit_id, node.node_id))
                    units_by_id[unit.unit_id] = unit
        if not processors or not tasks:
            self._last_assignment = None
            return
        previous = PreviousState()
        for info in processors:
            unit = units_by_id[info.processor_id]
            previous.active[info.processor_id] = self.coordinator.assignment_of(
                ACTIVE_GROUP, info.processor_id
            )
            previous.replica[info.processor_id] = self.coordinator.assignment_of(
                replica_group(info.processor_id), info.processor_id
            )
            # Any local data counts as leftovers for stickiness: revoked
            # tasks (stale dict) and still-live processors whose group
            # membership was lost (e.g. after a mass heartbeat expiry).
            previous.stale[info.processor_id] = set(unit.stale) | set(
                unit.task_processors
            )
        assignment = self.strategy.assign(tasks, processors, previous)
        self._last_assignment = assignment
        self.rebalance_count += 1
        self.coordinator.set_assignment(
            ACTIVE_GROUP,
            {info.processor_id: assignment.active.get(info.processor_id, set())
             for info in processors},
        )
        for info in processors:
            self.coordinator.set_assignment(
                replica_group(info.processor_id),
                {info.processor_id: assignment.replica.get(info.processor_id, set())},
            )

    # -- recovery brokerage ----------------------------------------------------------------------

    def request_recovery_data(
        self,
        tp: TopicPartition,
        exclude_unit: str,
        local_sealed: set[str],
    ) -> TaskCheckpoint | None:
        """Find the best donor for a task and fetch its checkpoint (§4.2).

        Donors are ranked by how far their data reaches (highest next
        offset); the receiver's sealed files are excluded from the
        payload (delta copy for stale holders).
        """
        best_unit = None
        best_offset = -1
        for node in self.alive_nodes():
            for unit in node.units:
                if unit.unit_id == exclude_unit:
                    continue
                offset = unit.data_offset_for(tp)
                if offset is not None and offset > best_offset:
                    best_offset = offset
                    best_unit = unit
        if best_unit is None:
            return None
        return best_unit.donate_checkpoint(tp, exclude_files=local_sealed)

    # -- introspection ------------------------------------------------------------------------------

    def assignment_snapshot(self) -> dict[str, dict[str, list[str]]]:
        """Human-readable owner/replica map per task (for tests/examples)."""
        snapshot: dict[str, dict[str, list[str]]] = {}
        assignment = self._last_assignment
        if assignment is None:
            return snapshot
        tasks = {
            tp
            for tps in list(assignment.active.values()) + list(assignment.replica.values())
            for tp in tps
        }
        for tp in sorted(tasks, key=str):
            snapshot[str(tp)] = {
                "active": [assignment.owner_of(tp) or "?"],
                "replicas": assignment.replicas_of(tp),
            }
        return snapshot

    # -- durability -----------------------------------------------------------------

    def flush_logs(self) -> None:
        """Write out the durable bus's buffers (no-op without ``durable_dir``)."""
        if self.durable_dir is not None:
            self.bus.flush()

    def truncate_logs_below_committed(self) -> None:
        """Checkpoint-aware retention for the cooperative topology.

        Deletes whole segments below the active group's committed offset
        per event task. Deliberately explicit (not wired to a cadence):
        the cooperative engine's replica consumers may still rewind
        further than the committed offset, so truncation is a policy the
        embedder opts into.
        """
        if self.durable_dir is None:
            return
        self.bus.flush()
        offsets = {}
        from repro.engine.processor import ACTIVE_GROUP

        for topic in self._event_topics():
            for tp in self.bus.topic_partitions(topic):
                committed = self.bus.committed_offset(ACTIVE_GROUP, tp)
                if committed:
                    offsets[tp] = committed
        self.bus.truncate_below(offsets)

    def close(self) -> None:
        """Flush and release the durable bus (no-op when in-memory)."""
        for job in self._backfills:
            job.close()
        if self.durable_dir is not None:
            self.bus.close()

    def total_messages_processed(self) -> int:
        """Sum over all units (actives + replicas double-count by design)."""
        return sum(
            unit.messages_processed
            for node in self.nodes.values()
            for unit in node.units
        )

    def telemetry(self) -> dict:
        """One merged, stable-schema telemetry snapshot (merge of one:
        every component runs in this process). Same schema as the
        parallel facades — see docs/OBSERVABILITY.md."""
        from repro.telemetry import merge_snapshots

        return merge_snapshots([self.metrics.snapshot()])

    def recovery_stats(self) -> dict[str, int]:
        """Aggregated recovery counters across all units."""
        totals = {
            "recoveries": 0,
            "delta_recoveries": 0,
            "fresh_starts": 0,
            "promotions": 0,
            "bytes_transferred": 0,
            "checkpoints_taken": 0,
        }
        for node in self.nodes.values():
            for unit in node.units:
                totals["recoveries"] += unit.stats.recoveries
                totals["delta_recoveries"] += unit.stats.delta_recoveries
                totals["fresh_starts"] += unit.stats.fresh_starts
                totals["promotions"] += unit.stats.promotions
                totals["bytes_transferred"] += unit.stats.bytes_transferred
                totals["checkpoints_taken"] += unit.stats.checkpoints_taken
        return totals
