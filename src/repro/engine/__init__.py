"""The Railgun engine (paper §3–§4).

A :class:`RailgunCluster` hosts N equal nodes, each with a front-end
layer (event routing + reply collection) and a back-end layer of
processor units running Algorithm 1. Tasks — (topic, partition) pairs —
are assigned to processor units by the Figure 7 sticky strategy with
replica-aware invariants; task processors own an event reservoir, a
metric state store and a shared task-plan DAG. Checkpoints pair
reservoir + state snapshots with message offsets; recovery copies data
(delta-aware for stale holders) and replays the log tail.
"""

from repro.engine.assignment import (
    Assignment,
    ProcessorInfo,
    StickyAssignmentStrategy,
    round_robin_task_strategy,
)
from repro.engine.catalog import Catalog, MetricDef, StreamDef
from repro.engine.cluster import RailgunCluster, Reply, create_cluster
from repro.engine.node import RailgunNode
from repro.engine.processor import ProcessorUnit
from repro.engine.task import TaskProcessor

__all__ = [
    "Assignment",
    "ProcessorInfo",
    "StickyAssignmentStrategy",
    "round_robin_task_strategy",
    "Catalog",
    "MetricDef",
    "StreamDef",
    "TaskProcessor",
    "ProcessorUnit",
    "RailgunNode",
    "RailgunCluster",
    "Reply",
    "create_cluster",
]
