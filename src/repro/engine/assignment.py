"""The Figure 7 sticky assignment strategy.

Assigns every task (topic, partition) to exactly one *active* processor
unit and ``replication_factor`` *replica* units, protecting two
invariants (§4.2):

1. **node exclusivity** — a physical node holds at most one copy of a
   task per rebalance (losing a node must not lose multiple copies);
2. **budget** — no processor exceeds ``ceil(total copies / processors)``
   (weighted when task weights are provided — the paper's future-work
   extension).

Preference order (active pass): previous active holder -> previous
replica holders (least loaded first) -> previous stale holders (data
leftovers) -> least loaded. Replica pass: previous replica -> stale ->
least loaded. Active tasks are assigned first so they land on processors
that already hold the data and recover instantly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import EngineError
from repro.messaging.log import TopicPartition


@dataclass(frozen=True)
class ProcessorInfo:
    """Identity and locality of one processor unit."""

    processor_id: str
    node_id: str


@dataclass
class PreviousState:
    """What each processor held before this rebalance."""

    active: dict[str, set[TopicPartition]] = field(default_factory=dict)
    replica: dict[str, set[TopicPartition]] = field(default_factory=dict)
    stale: dict[str, set[TopicPartition]] = field(default_factory=dict)


@dataclass
class Assignment:
    """The outcome: per-processor active and replica task sets."""

    active: dict[str, set[TopicPartition]]
    replica: dict[str, set[TopicPartition]]
    unplaced_replicas: list[TopicPartition] = field(default_factory=list)

    def owner_of(self, task: TopicPartition) -> str | None:
        """Active processor of a task (None when unassigned)."""
        for processor_id, tasks in self.active.items():
            if task in tasks:
                return processor_id
        return None

    def replicas_of(self, task: TopicPartition) -> list[str]:
        """Replica processors of a task, sorted."""
        return sorted(
            processor_id
            for processor_id, tasks in self.replica.items()
            if task in tasks
        )

    def load_of(self, processor_id: str) -> int:
        """Task copies (active + replica) on a processor."""
        return len(self.active.get(processor_id, set())) + len(
            self.replica.get(processor_id, set())
        )

    def moved_from(self, previous: PreviousState) -> int:
        """Copies that landed on a processor which had no data for them.

        The data-shuffle metric the sticky strategy minimizes; the
        assignment ablation bench reports it.
        """
        moves = 0
        for processor_id, tasks in self.active.items():
            had = (
                previous.active.get(processor_id, set())
                | previous.replica.get(processor_id, set())
                | previous.stale.get(processor_id, set())
            )
            moves += sum(1 for task in tasks if task not in had)
        for processor_id, tasks in self.replica.items():
            had = (
                previous.active.get(processor_id, set())
                | previous.replica.get(processor_id, set())
                | previous.stale.get(processor_id, set())
            )
            moves += sum(1 for task in tasks if task not in had)
        return moves


class StickyAssignmentStrategy:
    """The greedy two-pass algorithm of Figure 7."""

    def __init__(self, replication_factor: int = 0, task_weights: dict[TopicPartition, int] | None = None) -> None:
        if replication_factor < 0:
            raise EngineError(f"replication factor cannot be negative: {replication_factor}")
        self.replication_factor = replication_factor
        self._weights = task_weights or {}

    def _weight(self, task: TopicPartition) -> int:
        return self._weights.get(task, 1)

    def assign(
        self,
        tasks: list[TopicPartition],
        processors: list[ProcessorInfo],
        previous: PreviousState | None = None,
    ) -> Assignment:
        """Compute a full cluster assignment."""
        if not processors:
            return Assignment(active={}, replica={}, unplaced_replicas=list(tasks))
        previous = previous or PreviousState()
        ids = [p.processor_id for p in processors]
        if len(set(ids)) != len(ids):
            raise EngineError("duplicate processor ids")
        node_of = {p.processor_id: p.node_id for p in processors}

        total_weight = sum(self._weight(t) for t in tasks) * (1 + self.replication_factor)
        budget = -(-total_weight // len(processors))  # ceil, reset per rebalance
        if tasks:
            # A single task heavier than the fair share must still fit
            # somewhere; the budget can never be below the heaviest task.
            budget = max(budget, max(self._weight(t) for t in tasks))

        load: dict[str, int] = {p: 0 for p in ids}
        node_tasks: dict[str, set[TopicPartition]] = {p.node_id: set() for p in processors}
        active: dict[str, set[TopicPartition]] = {p: set() for p in ids}
        replica: dict[str, set[TopicPartition]] = {p: set() for p in ids}

        def can_take(processor_id: str, task: TopicPartition) -> bool:
            if load[processor_id] + self._weight(task) > budget:
                return False
            return task not in node_tasks[node_of[processor_id]]

        def place(processor_id: str, task: TopicPartition, as_active: bool) -> None:
            (active if as_active else replica)[processor_id].add(task)
            load[processor_id] += self._weight(task)
            node_tasks[node_of[processor_id]].add(task)

        def by_load(candidates: list[str]) -> list[str]:
            return sorted(candidates, key=lambda p: (load[p], p))

        ordered_tasks = sorted(tasks, key=str)

        # -- active pass (Figure 7, left) ---------------------------------
        for task in ordered_tasks:
            placed = False
            prev_active = [
                p for p in ids if task in previous.active.get(p, set())
            ]
            for candidate in by_load(prev_active):
                if can_take(candidate, task):
                    place(candidate, task, as_active=True)
                    placed = True
                    break
            if not placed:
                prev_replicas = [
                    p for p in ids if task in previous.replica.get(p, set())
                ]
                for candidate in by_load(prev_replicas):
                    if can_take(candidate, task):
                        place(candidate, task, as_active=True)
                        placed = True
                        break
            if not placed:
                prev_stale = [
                    p for p in ids if task in previous.stale.get(p, set())
                ]
                for candidate in by_load(prev_stale):
                    if can_take(candidate, task):
                        place(candidate, task, as_active=True)
                        placed = True
                        break
            if not placed:
                for candidate in by_load(ids):
                    if can_take(candidate, task):
                        place(candidate, task, as_active=True)
                        placed = True
                        break
            if not placed:
                raise EngineError(
                    f"no processor can take active task {task} "
                    f"(budget {budget}, processors {len(ids)})"
                )

        # -- replica pass (Figure 7, right) --------------------------------
        unplaced: list[TopicPartition] = []
        for task in ordered_tasks:
            for _ in range(self.replication_factor):
                placed = False
                prev_replicas = [
                    p for p in ids if task in previous.replica.get(p, set())
                ]
                for candidate in by_load(prev_replicas):
                    if can_take(candidate, task):
                        place(candidate, task, as_active=False)
                        placed = True
                        break
                if not placed:
                    prev_stale = [
                        p for p in ids if task in previous.stale.get(p, set())
                    ]
                    for candidate in by_load(prev_stale):
                        if can_take(candidate, task):
                            place(candidate, task, as_active=False)
                            placed = True
                            break
                if not placed:
                    for candidate in by_load(ids):
                        if can_take(candidate, task):
                            place(candidate, task, as_active=False)
                            placed = True
                            break
                if not placed:
                    # Not enough distinct nodes (or budget) for full
                    # replication; availability degrades but the cluster
                    # keeps running.
                    unplaced.append(task)
        return Assignment(active=active, replica=replica, unplaced_replicas=unplaced)


def round_robin_task_strategy(
    tasks: list[TopicPartition],
    processors: list[ProcessorInfo],
    previous: PreviousState | None = None,
    replication_factor: int = 0,
) -> Assignment:
    """Naive non-sticky baseline for the assignment ablation bench.

    Ignores history entirely: deterministic round-robin of actives, then
    replicas on the next processors (distinct nodes).
    """
    if not processors:
        return Assignment(active={}, replica={}, unplaced_replicas=list(tasks))
    ids = [p.processor_id for p in processors]
    node_of = {p.processor_id: p.node_id for p in processors}
    active: dict[str, set[TopicPartition]] = {p: set() for p in ids}
    replica: dict[str, set[TopicPartition]] = {p: set() for p in ids}
    unplaced: list[TopicPartition] = []
    ordered = sorted(tasks, key=str)
    for index, task in enumerate(ordered):
        owner = ids[index % len(ids)]
        active[owner].add(task)
        owner_nodes = {node_of[owner]}
        placed = 0
        for step in range(1, len(ids)):
            if placed >= replication_factor:
                break
            candidate = ids[(index + step) % len(ids)]
            if node_of[candidate] in owner_nodes:
                continue
            replica[candidate].add(task)
            owner_nodes.add(node_of[candidate])
            placed += 1
        for _ in range(replication_factor - placed):
            unplaced.append(task)
    return Assignment(active=active, replica=replica, unplaced_replicas=unplaced)
