"""A Railgun node: front-end + a set of processor units (Figure 3).

"All Railgun nodes are equal and composed by layers": the front-end
talks to clients and routes events; the back-end's processor units
compute aggregations. Killing a node stops its heartbeats and polls —
the coordinator notices via session timeout exactly as Kafka would.
"""

from __future__ import annotations

from repro.engine.frontend import FrontEnd
from repro.engine.processor import ProcessorUnit, UnitConfig
from repro.messaging.broker import MessageBus
from repro.messaging.groups import GroupCoordinator


class RailgunNode:
    """One physical node hosting a front-end and N processor units."""

    def __init__(
        self,
        node_id: str,
        bus: MessageBus,
        coordinator: GroupCoordinator | None,
        clock,
        processor_units: int,
        cluster=None,
        unit_config: UnitConfig | None = None,
    ) -> None:
        if processor_units < 0:
            raise ValueError(f"negative processor unit count: {processor_units}")
        if processor_units == 0:
            # Frontend-only node: the process-parallel engine hosts the
            # client entry point in the coordinator process while shard
            # workers do the back-end work in their own processes.
            coordinator = None
        elif coordinator is None:
            raise ValueError("processor units need a group coordinator")
        self.node_id = node_id
        self.alive = True
        self.frontend = FrontEnd(node_id, bus, clock)
        self.units = [
            ProcessorUnit(
                unit_id=f"{node_id}/pu{index}",
                node_id=node_id,
                bus=bus,
                coordinator=coordinator,
                clock=clock,
                cluster=cluster,
                config=unit_config,
            )
            for index in range(processor_units)
        ]

    def subscribe_units(self, topics: list[str]) -> None:
        """Join all processor units to the event topics."""
        for unit in self.units:
            unit.subscribe(topics)

    def pump(self) -> int:
        """One cooperative step for the whole node; returns work done."""
        if not self.alive:
            return 0
        handled = 0
        for unit in self.units:
            handled += unit.run_once()
        self.frontend.poll_replies()
        return handled

    def kill(self) -> None:
        """Fail-stop the node (heartbeats cease; data stays on 'disk')."""
        self.alive = False

    def revive(self) -> None:
        """Bring a failed node back (rejoins groups on next pump).

        Units keep their on-disk data, so the sticky strategy can hand
        their old tasks back cheaply (stale recovery).
        """
        self.alive = True
