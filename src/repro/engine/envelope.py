"""Message envelopes flowing through the bus (Figure 3).

Events travel from a front-end to event topics wrapped in
:class:`EventEnvelope` (steps 2–3); task processors answer to the origin
node's reply topic with :class:`ReplyEnvelope` (steps 4–5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.events.event import Event
from repro.messaging.log import TopicPartition


@dataclass(frozen=True)
class EventEnvelope:
    """An event published to one (stream, partitioner) topic."""

    stream: str
    event: Event
    origin_node: str
    correlation_id: int
    fanout: int  # how many topics this event was published to


@dataclass(frozen=True)
class ReplyEnvelope:
    """Aggregation results from one task processor for one event."""

    correlation_id: int
    event_id: str
    task: TopicPartition
    results: dict[int, dict[str, Any]]  # metric id -> column -> value
