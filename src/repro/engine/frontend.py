"""The front-end layer (paper §3.1, Figure 3 steps 1–2 and 5–6).

Receives client events, fans them out to every partitioner topic of the
stream (keyed by the partitioner field so entity locality holds), then
collects the per-task replies from the node's dedicated reply topic and
assembles the final client response once all expected replies arrived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.errors import EngineError
from repro.engine.catalog import (
    GLOBAL_PARTITIONER,
    OPERATIONS_TOPIC,
    REPLY_TOPIC_PREFIX,
    Catalog,
    topic_name,
)
from repro.engine.envelope import EventEnvelope, ReplyEnvelope
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.log import TopicPartition
from repro.messaging.producer import Producer


@dataclass
class PendingRequest:
    """A client request awaiting its fan-in of task replies."""

    correlation_id: int
    event: Event
    stream: str
    expected: int
    sent_at_ms: int
    results: dict[int, dict[str, Any]] = field(default_factory=dict)
    received: int = 0

    @property
    def complete(self) -> bool:
        return self.received >= self.expected


@dataclass
class CompletedReply:
    """A fully-assembled client response."""

    correlation_id: int
    event: Event
    stream: str
    results: dict[int, dict[str, Any]]
    latency_ms: int


class FrontEnd:
    """Per-node client entry point."""

    def __init__(self, node_id: str, bus: MessageBus, clock) -> None:
        self.node_id = node_id
        self.bus = bus
        self.clock = clock
        self.catalog = Catalog()
        self.producer = Producer(bus, clock)
        self.reply_topic = REPLY_TOPIC_PREFIX + node_id
        self._reply_tp = TopicPartition(self.reply_topic, 0)
        self._reply_offset = 0
        self._ops_tp = TopicPartition(OPERATIONS_TOPIC, 0)
        self._ops_offset = 0
        self._next_correlation = 0
        self.pending: dict[int, PendingRequest] = {}
        self.completed: dict[int, CompletedReply] = {}
        self.events_received = 0

    # -- step 1-2: receive + fan out ----------------------------------------------

    def send(self, stream_name: str, event: Event) -> int:
        """Publish an event to all of its stream's topics; returns corr id."""
        self._consume_ops()
        stream = self.catalog.streams.get(stream_name)
        if stream is None:
            raise EngineError(f"unknown stream {stream_name!r}")
        stream.schema().validate_event(event)
        correlation_id = self._next_correlation
        self._next_correlation += 1
        topics = stream.topics()
        envelope = EventEnvelope(
            stream=stream_name,
            event=event,
            origin_node=self.node_id,
            correlation_id=correlation_id,
            fanout=len(topics),
        )
        for partitioner in stream.partitioners:
            key = (
                "__global__"
                if partitioner == GLOBAL_PARTITIONER
                else event.get(partitioner)
            )
            self.producer.send(
                topic_name(stream_name, partitioner),
                key=key,
                value=envelope,
                timestamp=self.clock.now(),
            )
        self.pending[correlation_id] = PendingRequest(
            correlation_id=correlation_id,
            event=event,
            stream=stream_name,
            expected=len(topics),
            sent_at_ms=self.clock.now(),
        )
        self.events_received += 1
        return correlation_id

    def send_batch(self, stream_name: str, events: Sequence[Event]) -> list[int]:
        """Publish a batch of events; returns their correlation ids.

        One ops-consume, catalogue lookup, schema fetch and clock read
        cover the whole batch; the per-event work shrinks to validation
        plus the keyed fan-out publishes. Reply collection is unchanged —
        each event still gets its own correlation id and fan-in.
        """
        self._consume_ops()
        stream = self.catalog.streams.get(stream_name)
        if stream is None:
            raise EngineError(f"unknown stream {stream_name!r}")
        schema = stream.schema()
        topics = stream.topics()
        fanout = len(topics)
        now = self.clock.now()
        partitioner_topics = [
            (partitioner, topic_name(stream_name, partitioner))
            for partitioner in stream.partitioners
        ]
        send = self.producer.send
        correlation_ids: list[int] = []
        for event in events:
            schema.validate_event(event)
            correlation_id = self._next_correlation
            self._next_correlation += 1
            envelope = EventEnvelope(
                stream=stream_name,
                event=event,
                origin_node=self.node_id,
                correlation_id=correlation_id,
                fanout=fanout,
            )
            for partitioner, topic in partitioner_topics:
                key = (
                    "__global__"
                    if partitioner == GLOBAL_PARTITIONER
                    else event.get(partitioner)
                )
                send(topic, key=key, value=envelope, timestamp=now)
            self.pending[correlation_id] = PendingRequest(
                correlation_id=correlation_id,
                event=event,
                stream=stream_name,
                expected=fanout,
                sent_at_ms=now,
            )
            correlation_ids.append(correlation_id)
        self.events_received += len(correlation_ids)
        return correlation_ids

    # -- step 5-6: collect + respond ---------------------------------------------------

    def poll_replies(self) -> list[CompletedReply]:
        """Drain the reply topic; returns requests completed this call."""
        self._consume_ops()
        finished: list[CompletedReply] = []
        messages = self.bus.read(self._reply_tp, self._reply_offset, 1000)
        for message in messages:
            self._reply_offset = message.offset + 1
            reply = message.value
            if not isinstance(reply, ReplyEnvelope):
                continue
            completed = self.deliver_reply(reply)
            if completed is not None:
                finished.append(completed)
        return finished

    def deliver_reply(self, reply: ReplyEnvelope) -> CompletedReply | None:
        """Fan one task reply into its pending request.

        The reply-topic poll loop funnels through here; the
        process-parallel engine also calls it directly — the coordinator
        process hosts both the shard supervisor and the frontend, so a
        locally-merged reply can skip the bus hop without changing any
        observable fan-in behavior. Returns the completed response when
        this reply was the last one expected.
        """
        request = self.pending.get(reply.correlation_id)
        if request is None:
            return None  # duplicate reply after completion
        for metric_id, values in reply.results.items():
            request.results[metric_id] = values
        request.received += 1
        if not request.complete:
            return None
        del self.pending[request.correlation_id]
        completed = CompletedReply(
            correlation_id=request.correlation_id,
            event=request.event,
            stream=request.stream,
            results=request.results,
            latency_ms=self.clock.now() - request.sent_at_ms,
        )
        self.completed[completed.correlation_id] = completed
        return completed

    def take_completed(self, correlation_id: int) -> CompletedReply | None:
        """Pop a completed response (step 6: reply to the client)."""
        return self.completed.pop(correlation_id, None)

    def _consume_ops(self) -> None:
        if not self.bus.has_topic(OPERATIONS_TOPIC):
            return
        for message in self.bus.read(self._ops_tp, self._ops_offset, 1000):
            self._ops_offset = message.offset + 1
            self.catalog.apply(message.value)
