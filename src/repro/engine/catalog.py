"""Cluster catalogue: streams, partitioners, metrics and DDL operations.

Operational requests (create/delete stream or metric, schema evolution)
are broadcast through an internal operations topic and applied by every
node in log order (§3.3: "to broadcast operational requests triggered by
the client"), so all processor units converge on the same catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import EngineError, QueryError
from repro.events.schema import FieldType, Schema, SchemaField
from repro.query.ast import Query
from repro.query.parser import parse_query

#: Topic that carries DDL operations (single partition: total order).
OPERATIONS_TOPIC = "__operations"
#: Topic that carries checkpoint announcements.
CHECKPOINTS_TOPIC = "__checkpoints"
#: Prefix for per-node reply topics.
REPLY_TOPIC_PREFIX = "__reply."
#: Implicit partitioner used by metrics with no GROUP BY (single partition).
GLOBAL_PARTITIONER = "__all__"


def topic_name(stream: str, partitioner: str) -> str:
    """Event-topic name for one (stream, partitioner) pair."""
    return f"{stream}.{partitioner}"


@dataclass(frozen=True)
class StreamDef:
    """A registered stream: schema fields + partitioners + partitioning."""

    name: str
    fields: tuple[tuple[str, str], ...]  # (field name, FieldType value)
    partitioners: tuple[str, ...]
    partitions: int

    def schema(self) -> Schema:
        """Materialize the stream's (current) schema."""
        return Schema(
            [SchemaField(name, FieldType(type_name)) for name, type_name in self.fields]
        )

    def topics(self) -> list[str]:
        """All event topics of this stream."""
        return [topic_name(self.name, p) for p in self.partitioners]


@dataclass(frozen=True)
class MetricDef:
    """A registered metric: the query plus its routing topic."""

    metric_id: int
    query_text: str
    stream: str
    topic: str
    backfill: bool = False

    def parse(self) -> Query:
        """Re-parse the query text (parsing is deterministic)."""
        return parse_query(self.query_text)


# -- DDL operations (broadcast values on the operations topic) -----------------


@dataclass(frozen=True)
class CreateStreamOp:
    stream: StreamDef


@dataclass(frozen=True)
class CreateMetricOp:
    metric: MetricDef
    #: per-task activation cuts ``(tp, offset)``: the dispatch frontier
    #: of each topic task when the DDL landed. A task restored from a
    #: checkpoint that predates this metric must not fold replayed
    #: records below the cut into it — the original incarnation
    #: processed them without the metric. Empty for metrics defined
    #: before traffic (activation 0) and for backfill completions
    #: (their state rides checkpoints, never a replay).
    activations: tuple = ()


@dataclass(frozen=True)
class DeleteMetricOp:
    metric_id: int


@dataclass(frozen=True)
class EvolveSchemaOp:
    stream: str
    new_fields: tuple[tuple[str, str], ...]  # appended fields


@dataclass(frozen=True)
class AddPartitionerOp:
    stream: str
    partitioner: str


@dataclass
class Catalog:
    """Applied view of the operations log."""

    streams: dict[str, StreamDef] = field(default_factory=dict)
    metrics: dict[int, MetricDef] = field(default_factory=dict)
    next_metric_id: int = 0

    def apply(self, op: object) -> None:
        """Fold one DDL operation into the catalogue (idempotent)."""
        if isinstance(op, CreateStreamOp):
            self.streams.setdefault(op.stream.name, op.stream)
        elif isinstance(op, CreateMetricOp):
            self.metrics.setdefault(op.metric.metric_id, op.metric)
            self.next_metric_id = max(self.next_metric_id, op.metric.metric_id + 1)
        elif isinstance(op, DeleteMetricOp):
            self.metrics.pop(op.metric_id, None)
        elif isinstance(op, EvolveSchemaOp):
            stream = self._stream(op.stream)
            self.streams[op.stream] = StreamDef(
                stream.name,
                stream.fields + op.new_fields,
                stream.partitioners,
                stream.partitions,
            )
        elif isinstance(op, AddPartitionerOp):
            stream = self._stream(op.stream)
            if op.partitioner not in stream.partitioners:
                self.streams[op.stream] = StreamDef(
                    stream.name,
                    stream.fields,
                    stream.partitioners + (op.partitioner,),
                    stream.partitions,
                )
        else:
            raise EngineError(f"unknown operation {op!r}")

    def _stream(self, name: str) -> StreamDef:
        try:
            return self.streams[name]
        except KeyError:
            raise EngineError(f"unknown stream {name!r}") from None

    def metrics_for_topic(self, topic: str) -> list[MetricDef]:
        """Metrics computed by task processors of ``topic``, id order."""
        return sorted(
            (m for m in self.metrics.values() if m.topic == topic),
            key=lambda m: m.metric_id,
        )

    def stream_of_topic(self, topic: str) -> StreamDef | None:
        """The stream a topic belongs to (None for internal topics)."""
        for stream in self.streams.values():
            if topic in stream.topics():
                return stream
        return None

    def route_metric(self, query: Query) -> str:
        """Pick the topic for a metric: a partitioner ⊆ its group-by keys.

        "Accurate metrics only need events to be hashed by a subset of
        their group by keys" (§4): any partitioner among the group-by
        fields keeps an entity's events in one task. Metrics without a
        group-by need the global (single-partition) partitioner.
        """
        stream = self._stream(query.stream)
        if not query.group_by:
            if GLOBAL_PARTITIONER not in stream.partitioners:
                raise QueryError(
                    f"metric without GROUP BY needs stream {stream.name!r} created "
                    f"with the global partitioner"
                )
            return topic_name(stream.name, GLOBAL_PARTITIONER)
        for partitioner in stream.partitioners:
            if partitioner in query.group_by:
                return topic_name(stream.name, partitioner)
        raise QueryError(
            f"no partitioner of stream {stream.name!r} ({', '.join(stream.partitioners)}) "
            f"is among the metric's group-by fields ({', '.join(query.group_by)})"
        )
