"""Task processors (paper §4.1).

"Each task processor is designed to share nothing, and work
independently of other task processors": it owns its event reservoir,
its metric state store, and the shared task-plan DAG for all metrics of
its (topic, partition). Checkpoints capture reservoir + state + iterator
positions + the next message offset atomically (taken between messages),
so recovery is: copy data, seek the consumer, replay the tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.common.errors import CheckpointError
from repro.common.storage import MemoryStorage
from repro.engine.catalog import MetricDef, StreamDef
from repro.events.event import Event
from repro.events.schema import SchemaRegistry
from repro.lsm.db import Checkpoint, LsmConfig, LsmDb
from repro.messaging.log import TopicPartition
from repro.plan.dag import TaskPlan
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig
from repro.state.store import MetricStateStore


@dataclass
class TaskCheckpoint:
    """A consistent snapshot of one task processor."""

    tp: TopicPartition
    offset: int  # next message offset to consume after restore
    reservoir_meta: bytes
    reservoir_files: dict[str, bytes]
    reservoir_sealed: set[str]
    state_checkpoint: Checkpoint
    state_files: dict[str, bytes]
    iterator_positions: dict[str, tuple[int, int]]
    metric_ids: tuple[int, ...]

    def data_bytes(self, exclude_files: set[str] | None = None) -> int:
        """Transfer size in bytes, optionally after delta exclusion."""
        exclude = exclude_files or set()
        total = len(self.reservoir_meta)
        for name, data in self.reservoir_files.items():
            if name not in exclude:
                total += len(data)
        for name, data in self.state_files.items():
            if name not in exclude:
                total += len(data)
        return total

    def transferable_files(self) -> set[str]:
        """Immutable files a stale holder may already have (delta copy)."""
        return set(self.reservoir_sealed) | set(self.state_files)


@dataclass
class BackfillState:
    """A backfilled metric's transferable state (see
    :meth:`TaskProcessor.export_backfill`)."""

    metric_id: int
    state_rows: list[tuple[bytes, bytes]]
    distinct_rows: list[tuple[bytes, bytes]]
    iterator_positions: dict[str, tuple[int, int]]


class TaskProcessor:
    """Computation of all metrics for one (topic, partition)."""

    def __init__(
        self,
        tp: TopicPartition,
        stream: StreamDef,
        reservoir_config: ReservoirConfig | None = None,
        lsm_config: LsmConfig | None = None,
    ) -> None:
        self.tp = tp
        self.stream_name = stream.name
        registry = SchemaRegistry()
        registry.register(stream.schema())
        self._reservoir_config = reservoir_config
        self._lsm_config = lsm_config
        self.reservoir = EventReservoir(
            registry, MemoryStorage(), reservoir_config
        )
        self.state = MetricStateStore(LsmDb(MemoryStorage(), lsm_config))
        self.plan = TaskPlan(self.reservoir, self.state)
        self._metric_defs: dict[int, MetricDef] = {}
        self.next_offset = 0
        self.messages_processed = 0
        self.replays_skipped = 0
        #: Optional telemetry registry hook (a shard worker attaches its
        #: own when measurement is on): times reservoir batch appends
        #: without the engine depending on the telemetry package.
        self.telemetry = None

    @classmethod
    def build(
        cls,
        tp: TopicPartition,
        stream: StreamDef,
        metrics: Sequence[MetricDef],
        reservoir_config: ReservoirConfig | None = None,
        lsm_config: LsmConfig | None = None,
    ) -> "TaskProcessor":
        """A fresh task processor with ``metrics`` registered in id order.

        Shared by the in-process engine's fresh-start path and the shard
        workers, so both runtimes build byte-identical processors.
        """
        processor = cls(
            tp, stream, reservoir_config=reservoir_config, lsm_config=lsm_config
        )
        for metric in sorted(metrics, key=lambda m: m.metric_id):
            processor.add_metric(metric)
        return processor

    # -- metric management -----------------------------------------------------------

    def add_metric(self, metric: MetricDef) -> None:
        """Register a metric (idempotent on metric id)."""
        if metric.metric_id in self._metric_defs:
            return
        self._metric_defs[metric.metric_id] = metric
        self.plan.add_metric(
            metric.parse(), backfill=metric.backfill, metric_id=metric.metric_id
        )

    def remove_metric(self, metric_id: int) -> None:
        """Unregister a metric."""
        if metric_id in self._metric_defs:
            del self._metric_defs[metric_id]
            self.plan.remove_metric(metric_id)

    def evolve_schema(self, stream: StreamDef) -> None:
        """Register an evolved stream schema with the reservoir registry."""
        self.reservoir.registry.register(stream.schema())

    def metric_ids(self) -> tuple[int, ...]:
        """Registered metric ids, sorted."""
        return tuple(sorted(self._metric_defs))

    def has_metric(self, metric_id: int) -> bool:
        """True when the metric is registered on this processor."""
        return metric_id in self._metric_defs

    def metric_values(self, metric_id: int) -> dict[tuple, dict[str, Any]]:
        """Current per-group results of one registered metric."""
        handle = self.plan._metrics[metric_id]
        agg_specs = [
            (node.agg_index, node.spec.name, node.display_name)
            for node in handle.aggregators
        ]
        return self.state.metric_values(metric_id, agg_specs)

    # -- backfill splice -------------------------------------------------------

    def export_backfill(self, metric_id: int) -> "BackfillState":
        """One metric's graftable state: its rows in both column
        families plus this plan's iterator positions.

        Called on a *shadow* processor that replayed the partition log
        with only this metric registered: reservoir chunking, dedup and
        iterator motion are deterministic functions of the arrival
        sequence, so the shadow's rows and cursor positions are exactly
        what a processor that had the metric from offset 0 would hold.
        """
        state_rows, distinct_rows = self.state.export_metric_rows(metric_id)
        return BackfillState(
            metric_id=metric_id,
            state_rows=state_rows,
            distinct_rows=distinct_rows,
            iterator_positions=self.plan.iterator_positions(),
        )

    def apply_backfill(self, metric: MetricDef, state: "BackfillState") -> None:
        """Splice a backfilled metric into this live processor.

        Must run exactly when ``next_offset`` equals the offset the
        shadow replayed to — then registering the metric, replacing its
        rows wholesale and overwriting its iterator positions leaves the
        processor byte-identical to one that carried the metric from
        offset 0. Share-key collisions are harmless: a shared iterator's
        shadow position equals the live position by the same determinism.
        """
        self.add_metric(metric)
        self.state.import_metric_rows(
            metric.metric_id, state.state_rows, state.distinct_rows
        )
        self.plan.set_iterator_positions(state.iterator_positions)

    # -- the data path ------------------------------------------------------------------

    def process(self, offset: int, event: Event) -> dict[int, dict[str, Any]] | None:
        """Process one message; returns per-metric replies.

        Offsets below ``next_offset`` are replays of messages whose
        effects are already in the restored state (recovery overlap):
        state is **not** mutated again — exactly-once on top of the
        log's at-least-once delivery — but a read-only reply is still
        produced, because the original reply may never have been sent
        (e.g. the active owner failed between processing and replying).
        """
        if offset < self.next_offset:
            self.replays_skipped += 1
            return self.plan.process_event_readonly(event)
        self.next_offset = offset + 1
        self.messages_processed += 1
        result = self.reservoir.append(event)
        if result.stored:
            return self.plan.process_event(result.event)
        # Duplicates / discarded out-of-order events still get a reply
        # with the entity's current values — but must not mutate state.
        return self.plan.process_event_readonly(event)

    def process_batch(
        self, records: Sequence[tuple[int, Event]]
    ) -> list[dict[int, dict[str, Any]] | None]:
        """Process consecutive ``(offset, event)`` messages as a batch.

        Equivalent to calling :meth:`process` per record — same replies,
        same reservoir bytes, same iterator positions — but runs of
        *fresh* messages (non-replay offsets, non-decreasing timestamps
        ahead of the reservoir frontier, unseen event ids) are appended
        through the reservoir's amortized batch path before the plan
        advances once per event. Replays, duplicates and out-of-order
        events fall back to the per-event path, which handles them
        bit-for-bit as before.

        Timestamp-tie semantics (pinned here, mirrored from the
        per-event path): within a tie group the *k*-th event's reply
        window contains tie members ``0..k`` and excludes members
        ``k+1..`` — each event sees everything appended before it plus
        itself, never later arrivals. Tie runs therefore batch through
        the reservoir like strict runs, while the plan advance passes
        ``tie_cap=1`` so each turn consumes exactly its own event at
        the evaluation timestamp. A tie that lands exactly on a sealed
        chunk boundary follows the out-of-order policy (rewrite or
        discard), again matching :meth:`process` byte-for-byte via the
        reservoir's per-event append results.
        """
        replies: list[dict[int, dict[str, Any]] | None] = []
        reservoir = self.reservoir
        plan = self.plan
        index, count = 0, len(records)
        while index < count:
            offset, event = records[index]
            if not self._batchable(offset, event):
                replies.append(self.process(offset, event))
                index += 1
                continue
            # Grow the run while each message stays fresh and in-order
            # (ties allowed: equal timestamps keep the run alive).
            run_end = index + 1
            last_offset, last_ts = offset, event.timestamp
            run_ids = {event.event_id}
            while run_end < count:
                next_offset, next_event = records[run_end]
                if (
                    next_offset <= last_offset
                    or next_event.timestamp < last_ts
                    or next_event.event_id in run_ids
                    or reservoir.has_event_id(next_event.event_id)
                ):
                    break
                run_ids.add(next_event.event_id)
                last_offset, last_ts = next_offset, next_event.timestamp
                run_end += 1
            run = records[index:run_end]
            telemetry = self.telemetry
            if telemetry is None:
                results = reservoir.append_batch([e for _, e in run])
            else:
                append_started = telemetry.now()
                results = reservoir.append_batch([e for _, e in run])
                telemetry.observe_since(
                    "worker_reservoir_append_ms", append_started
                )
            for (run_offset, run_event), result in zip(run, results):
                self.next_offset = run_offset + 1
                self.messages_processed += 1
                if result.stored:
                    # In-order events see eval_ts == the stored event's
                    # timestamp on the per-event path (its own, or the
                    # rewrite target for a sealed-boundary tie); pin it
                    # because the batch append already advanced the
                    # reservoir frontier.
                    stored = result.event
                    replies.append(
                        plan.process_event(
                            stored, eval_ts=stored.timestamp, tie_cap=1
                        )
                    )
                else:
                    # Discarded sealed-boundary tie: reply read-only,
                    # exactly like the per-event path.
                    replies.append(plan.process_event_readonly(run_event))
            index = run_end
        return replies

    def _batchable(self, offset: int, event: Event) -> bool:
        """True when a message can open a batched fast run."""
        return (
            offset >= self.next_offset
            and event.timestamp > self.reservoir.max_seen_ts
            and not self.reservoir.has_event_id(event.event_id)
        )

    # -- checkpoint / restore --------------------------------------------------------------

    def checkpoint(self, exclude_files: set[str] | None = None) -> TaskCheckpoint:
        """Snapshot reservoir + state + cursors + offset, atomically.

        ``exclude_files`` names immutable files the receiver already
        holds (sealed reservoir segments, LSM tables): they stay
        referenced by the metadata but their contents are neither read
        nor copied, so a delta checkpoint costs O(new state), not
        O(total state). Mutable (unsealed) files always ship.
        """
        exclude = exclude_files or set()
        reservoir_meta = self.reservoir.checkpoint_metadata()
        reservoir_storage = self.reservoir.storage
        names = reservoir_storage.list()
        sealed = {name for name in names if reservoir_storage.is_sealed(name)}
        reservoir_files = {
            name: reservoir_storage.read_all(name)
            for name in names
            if name not in exclude or name not in sealed
        }
        state_cp = self.state.checkpoint()
        state_files = self.state.export_checkpoint(state_cp, exclude=exclude)
        return TaskCheckpoint(
            tp=self.tp,
            offset=self.next_offset,
            reservoir_meta=reservoir_meta,
            reservoir_files=reservoir_files,
            reservoir_sealed=sealed,
            state_checkpoint=state_cp,
            state_files=state_files,
            iterator_positions=self.plan.iterator_positions(),
            metric_ids=self.metric_ids(),
        )

    @classmethod
    def restore(
        cls,
        checkpoint: TaskCheckpoint,
        stream: StreamDef,
        metrics: list[MetricDef],
        reservoir_config: ReservoirConfig | None = None,
        lsm_config: LsmConfig | None = None,
        local_files: dict[str, bytes] | None = None,
    ) -> "TaskProcessor":
        """Rebuild a task processor from a checkpoint.

        ``local_files`` supplies file contents the receiving processor
        already holds (stale data), enabling delta transfers: the
        checkpoint may omit those files.
        """
        processor = cls.__new__(cls)
        processor.tp = checkpoint.tp
        processor.stream_name = stream.name
        processor._reservoir_config = reservoir_config
        processor._lsm_config = lsm_config
        processor._metric_defs = {}
        processor.next_offset = checkpoint.offset
        processor.messages_processed = 0
        processor.replays_skipped = 0
        processor.telemetry = None

        merged: dict[str, bytes] = dict(local_files or {})
        merged.update(checkpoint.reservoir_files)
        reservoir_storage = MemoryStorage()
        for name, data in merged.items():
            if name in checkpoint.reservoir_files or name in checkpoint.reservoir_sealed:
                reservoir_storage.create(name)
                reservoir_storage.append(name, data)
                if name in checkpoint.reservoir_sealed:
                    reservoir_storage.seal(name)
        missing = [
            meta_name
            for meta_name in checkpoint.reservoir_sealed
            if not reservoir_storage.exists(meta_name)
        ]
        if missing:
            raise CheckpointError(f"missing reservoir files after transfer: {missing}")
        processor.reservoir = EventReservoir.restore(
            checkpoint.reservoir_meta, reservoir_storage, reservoir_config
        )
        # The stream schema may have evolved past the checkpoint.
        processor.reservoir.registry.register(stream.schema())

        state_files: dict[str, bytes] = {
            name: data
            for name, data in (local_files or {}).items()
            if name in checkpoint.state_checkpoint.all_files()
        }
        state_files.update(checkpoint.state_files)
        processor.state = MetricStateStore.restore(
            checkpoint.state_checkpoint, state_files, config=lsm_config
        )
        processor.plan = TaskPlan(processor.reservoir, processor.state)
        for metric in sorted(metrics, key=lambda m: m.metric_id):
            processor._metric_defs[metric.metric_id] = metric
            processor.plan.add_metric(
                metric.parse(), backfill=False, metric_id=metric.metric_id
            )
        processor.plan.set_iterator_positions(checkpoint.iterator_positions)
        return processor
