"""Experiment harness regenerating every figure of the paper (§5).

Each experiment module exposes ``run(fast=True)`` returning a result
dict and ``render(result)`` returning the printable report with the
paper-expected vs measured comparison. The pytest-benchmark targets in
``benchmarks/`` call these; they are also runnable directly::

    python -m repro.bench.experiments.fig8_flink_vs_railgun
"""

from repro.bench.report import ascii_chart, format_percentile_table, format_table

__all__ = ["ascii_chart", "format_percentile_table", "format_table"]
