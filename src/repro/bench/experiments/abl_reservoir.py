"""Ablation (§4.1.1) — reservoir chunk size, compression and prefetch.

Real measurements on the actual reservoir:

- chunk size sweep: append + window-iteration throughput and I/O ops;
- codec sweep (none / zlib levels): bytes on disk vs (de)serialization
  cost — the paper compresses "aggressively" because events replicate
  across task processors;
- prefetch on/off: demand-miss counts seen by a long-window tail.
"""

from __future__ import annotations

import random
import time

from repro.bench.report import check_expectations, format_table
from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig


def _registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.register(
        Schema(
            [
                SchemaField("cardId", FieldType.STRING),
                SchemaField("amount", FieldType.FLOAT),
                SchemaField("merchantId", FieldType.STRING),
            ]
        )
    )
    return registry


def _events(count: int, seed: int = 3) -> list[Event]:
    rng = random.Random(seed)
    return [
        Event(
            f"e{i}",
            i * 20,
            {
                "cardId": f"c{rng.randrange(500):04d}",
                "amount": round(rng.uniform(1, 500), 2),
                "merchantId": f"m{rng.randrange(50):03d}",
            },
        )
        for i in range(count)
    ]


def _run_config(events: list[Event], config: ReservoirConfig, window_ms: int) -> dict[str, float]:
    reservoir = EventReservoir(_registry(), config=config)
    head = reservoir.new_iterator(0, "head")
    tail = reservoir.new_iterator(window_ms, "tail")
    started = time.perf_counter()
    for event in events:
        reservoir.append(event)
        head.advance_upto(event.timestamp)
        tail.advance_upto(event.timestamp - window_ms)
    elapsed = time.perf_counter() - started
    disk_bytes = sum(reservoir.storage.size(name) for name in reservoir.storage.list())
    return {
        "events_per_sec": len(events) / elapsed,
        "disk_bytes": float(disk_bytes),
        "io_appends": float(reservoir.storage.stats.appends),
        "demand_misses": float(reservoir.cache.stats.demand_misses),
        "prefetch_loads": float(reservoir.cache.stats.prefetch_loads),
    }


def run(fast: bool = True) -> dict:
    count = 6000 if fast else 30_000
    events = _events(count)
    window_ms = count * 20 // 4  # tail stays busy

    chunk_sizes = [64, 256, 1024]
    by_chunk = {
        size: _run_config(events, ReservoirConfig(chunk_max_events=size, cache_capacity=16), window_ms)
        for size in chunk_sizes
    }
    codecs = ["none", "zlib:1", "zlib:6", "zlib:9"]
    by_codec = {
        codec: _run_config(
            events,
            ReservoirConfig(chunk_max_events=256, cache_capacity=16, codec=codec),
            window_ms,
        )
        for codec in codecs
    }
    prefetch = {
        enabled: _run_config(
            events,
            ReservoirConfig(chunk_max_events=128, cache_capacity=4, prefetch=enabled),
            window_ms,
        )
        for enabled in (True, False)
    }

    checks = [
        (
            "larger chunks -> fewer I/O appends",
            by_chunk[1024]["io_appends"] < by_chunk[64]["io_appends"],
        ),
        (
            "compression shrinks disk bytes (zlib:6 < 70% of none)",
            by_codec["zlib:6"]["disk_bytes"] < 0.7 * by_codec["none"]["disk_bytes"],
        ),
        (
            "aggressive zlib:9 is no larger than zlib:1",
            by_codec["zlib:9"]["disk_bytes"] <= by_codec["zlib:1"]["disk_bytes"],
        ),
        (
            "prefetch eliminates demand misses on sequential tails",
            prefetch[True]["demand_misses"] * 5 < max(prefetch[False]["demand_misses"], 1),
        ),
    ]
    return {
        "by_chunk": by_chunk,
        "by_codec": by_codec,
        "prefetch": prefetch,
        "checks": checks,
    }


def render(result: dict) -> str:
    chunk_rows = [
        [size, f"{m['events_per_sec']:,.0f}", int(m["io_appends"]), int(m["disk_bytes"])]
        for size, m in result["by_chunk"].items()
    ]
    codec_rows = [
        [codec, f"{m['events_per_sec']:,.0f}", int(m["disk_bytes"])]
        for codec, m in result["by_codec"].items()
    ]
    prefetch_rows = [
        ["on" if enabled else "off", int(m["demand_misses"]), int(m["prefetch_loads"])]
        for enabled, m in result["prefetch"].items()
    ]
    lines = [
        "Ablation (§4.1.1) — reservoir chunk size / codec / prefetch",
        "chunk size sweep:",
        format_table(["chunk events", "ev/s", "io appends", "disk bytes"], chunk_rows),
        "",
        "codec sweep (chunk=256):",
        format_table(["codec", "ev/s", "disk bytes"], codec_rows),
        "",
        "prefetch (cache=4 chunks, busy tail):",
        format_table(["prefetch", "demand misses", "prefetch loads"], prefetch_rows),
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
