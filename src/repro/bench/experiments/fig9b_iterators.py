"""Figure 9b (§5.2b) — latency vs number of reservoir iterators.

Three metrics (sum/avg/count of amount per card) over 10..120
deliberately *misaligned* windows (different sizes and delays), forcing
20..240 distinct iterators against a chunk cache of 220 entries. While
iterators fit comfortably, prefetching hides every chunk load; as the
iterator count approaches the cache capacity, prefetched chunks get
evicted before use (demand misses -> latency spikes), and at 240 the
pinned-chunk heap pressure adds GC pauses — the paper's cliff.

The experiment instruments the *real* chunk cache under the same
iterator-to-capacity ratios to measure the demand-miss rates, then
feeds those mechanisms into the latency simulation.
"""

from __future__ import annotations

import random

from repro.bench.report import (
    ascii_chart,
    check_expectations,
    format_percentile_table,
    format_table,
)
from repro.common.clock import MINUTES
from repro.common.percentiles import PERCENTILE_GRID
from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.plan.dag import TaskPlan
from repro.query.parser import parse_query
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig
from repro.sim import (
    GcConfig,
    KafkaConfig,
    KafkaModel,
    PipelineConfig,
    RailgunServiceConfig,
    RailgunServiceModel,
    simulate_pipeline,
)
from repro.state.store import MetricStateStore

RATE = 500.0
SLO_MS = 250.0
CACHE_CAPACITY = 220  # the paper's setting
ITERATOR_COUNTS = [20, 40, 60, 110, 210, 240]
#: estimated bytes pinned per live iterator (chunk + decode buffers)
PINNED_BYTES_PER_ITERATOR = 28e6


def _real_cache_missrate(iterators: int, fast: bool = True) -> dict[str, float]:
    """Drive the real reservoir with N misaligned windows; measure cache.

    Windows get distinct (size, delay) pairs so nothing shares iterators
    — mirroring the paper's "we force iterator misalignment by using
    windows with different window sizes and window delays".
    """
    registry = SchemaRegistry()
    registry.register(
        Schema([SchemaField("cardId", FieldType.STRING), SchemaField("amount", FieldType.FLOAT)])
    )
    # A small cache, scaled by the same iterators/capacity ratio, keeps
    # the real-component run cheap while preserving the contention.
    scale = 16
    capacity = max(2, CACHE_CAPACITY // scale)
    windows = max(1, iterators // 2)
    config = ReservoirConfig(chunk_max_events=32, cache_capacity=capacity)
    reservoir = EventReservoir(registry, config=config)
    plan = TaskPlan(reservoir, MetricStateStore())
    base = 20 * MINUTES
    for index in range(max(1, windows // scale)):
        size = base + index * 7 * MINUTES
        delay = index * 3 * MINUTES
        window_text = f"sliding {size} ms"
        if delay:
            window_text += f" delayed by {delay} ms"
        plan.add_metric(
            parse_query(f"SELECT sum(amount) FROM s GROUP BY cardId OVER {window_text}")
        )
    rng = random.Random(31)
    events = 3000 if fast else 12000
    step = max(1, (2 * base) // events)
    for index in range(events):
        event = Event(
            f"e{index}", index * step,
            {"cardId": f"c{rng.randrange(40)}", "amount": 1.0},
        )
        result = reservoir.append(event)
        plan.process_event(result.event)
    stats = reservoir.cache.stats
    return {
        "iterators": reservoir.iterator_count,
        "demand_miss_rate": stats.miss_rate,
        "prefetch_wasted": float(stats.prefetch_wasted),
    }


def run(fast: bool = True) -> dict:
    """Latency distribution per iterator count (cache capacity 220)."""
    duration_s = 300.0 if fast else 1800.0
    warmup_s = 20.0 if fast else 300.0
    series: dict[str, dict[float, float]] = {}
    gc_majors: dict[str, int] = {}
    for index, iterators in enumerate(ITERATOR_COUNTS):
        pipeline = PipelineConfig(
            rate_ev_s=RATE, duration_s=duration_s, warmup_s=warmup_s,
            processors=1, seed=700 + index,
        )
        kafka = KafkaModel(
            KafkaConfig(), random.Random(1700 + index), total_partitions=11, brokers=1
        )
        service = RailgunServiceConfig(
            state_keys=3,  # sum + avg + count leaves
            iterators=iterators,
            cache_capacity=CACHE_CAPACITY,
        )
        result = simulate_pipeline(
            pipeline,
            lambda rng, c=service: RailgunServiceModel(c, rng),
            kafka,
            gc_config=GcConfig(alloc_per_event_bytes=600e3, minor_pause_median_ms=6.0),
            gc_extra_live_bytes=iterators * PINNED_BYTES_PER_ITERATOR,
        )
        series[str(iterators)] = result.recorder.percentiles(PERCENTILE_GRID)
        gc_majors[str(iterators)] = result.gc_major

    cache_probe = {
        n: _real_cache_missrate(n, fast) for n in (40, 210, 240)
    }

    p999 = {n: series[str(n)][99.9] for n in ITERATOR_COUNTS}
    checks = [
        (
            "20..210 iterators meet <250ms @ 99.9%",
            all(p999[n] < SLO_MS for n in ITERATOR_COUNTS if n <= 210),
        ),
        (
            "240 iterators breach the SLO (cache thrash + GC)",
            p999[240] > SLO_MS,
        ),
        (
            "degradation is monotone from 210 to 240",
            p999[240] > p999[210],
        ),
        (
            "real cache: miss rate at 240-equivalent >> at 40-equivalent",
            cache_probe[240]["demand_miss_rate"]
            > 10 * max(cache_probe[40]["demand_miss_rate"], 1e-6),
        ),
        ("GC majors appear only at 240 iterators",
         gc_majors["240"] > 0 and all(gc_majors[str(n)] == 0 for n in ITERATOR_COUNTS if n <= 210)),
    ]
    return {
        "series": series,
        "cache_probe": cache_probe,
        "gc_majors": gc_majors,
        "checks": checks,
    }


def render(result: dict) -> str:
    grid = [p for p in PERCENTILE_GRID if p >= 50.0]
    chart = {
        f"{name} iters": [values[p] for p in grid]
        for name, values in result["series"].items()
    }
    probe_rows = [
        [f"~{n} iters", f"{p['demand_miss_rate']:.4f}", int(p["prefetch_wasted"])]
        for n, p in result["cache_probe"].items()
    ]
    lines = [
        "Figure 9b (§5.2b) — latency vs iterator count (cache = 220 chunks)",
        format_percentile_table(result["series"], grid),
        "",
        ascii_chart(chart, [f"p{p:g}" for p in grid]),
        "",
        "real chunk-cache contention probe (scaled 1:16):",
        format_table(["iterators", "demand miss rate", "wasted prefetches"], probe_rows),
        f"GC major pauses per run: {result['gc_majors']}",
        "",
        "paper expectation: flat up to ~210 iterators; at 240 (> cache)",
        "prefetches die before use and GC pressure pushes tails past 250ms.",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
