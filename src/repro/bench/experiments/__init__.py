"""One module per paper figure plus the design-choice ablations."""
