"""Figure 2 — the accuracy-vs-scale design space, measured.

The paper's quadrant chart places real-time sliding windows (accurate,
low scale), hopping windows and lambda architectures (approximate,
large scale) and Railgun (accurate, large scale). This experiment
measures both axes on a common workload:

- **accuracy**: mean relative error of windowed counts against the
  exact reference, plus the adversarial-burst detection rate;
- **scale**: estimated single-core event capacity, derived from each
  engine's mechanism costs (pane updates, rescans, key accesses), and
  per-key state growth.
"""

from __future__ import annotations

import random

from repro.baselines.hopping import HoppingWindowEngine
from repro.baselines.lambda_arch import LambdaArchitecture
from repro.baselines.perevent_scan import PerEventScanEngine
from repro.baselines.reference import TrueSlidingReference
from repro.bench.report import check_expectations, format_table
from repro.common.clock import MINUTES, SECONDS
from repro.sim import RailgunServiceConfig, RailgunServiceModel
from repro.sim.service import (
    HoppingServiceConfig,
    HoppingServiceModel,
    PerEventScanConfig,
    PerEventScanServiceModel,
)

WINDOW_MS = 5 * MINUTES


def _accuracy_run(events: int, seed: int) -> dict[str, float]:
    """Mean relative count error per engine over a Zipf workload."""
    rng = random.Random(seed)
    reference = TrueSlidingReference(WINDOW_MS)
    hopping = HoppingWindowEngine(WINDOW_MS, 1 * MINUTES)
    lam = LambdaArchitecture(WINDOW_MS, batch_interval_ms=2 * MINUTES)
    scan = PerEventScanEngine(WINDOW_MS)

    errors = {"hopping-1m": 0.0, "lambda": 0.0, "perevent-scan": 0.0}
    samples = 0
    ts = 0
    for _ in range(events):
        ts += rng.randrange(50, 1500)
        key = f"c{rng.randrange(20)}"
        reference.on_event(key, ts, 1.0)
        hopping.on_event(key, ts, 1.0)
        lam.on_event(key, ts, 1.0)
        scan.on_event(key, ts, 1.0)
        truth = reference.count(key, ts)
        if truth == 0:
            continue
        samples += 1
        errors["hopping-1m"] += abs(hopping.count(key, ts) - truth) / truth
        errors["lambda"] += abs(lam.count(key, ts) - truth) / truth
        errors["perevent-scan"] += abs(scan.count(key, ts) - truth) / truth
    return {name: err / samples for name, err in errors.items()}


def _capacity_estimates() -> dict[str, float]:
    """Single-core ev/s capacity = 1000 / mean service ms per engine."""
    rng = random.Random(3)
    models = {
        "railgun": RailgunServiceModel(RailgunServiceConfig(state_keys=1), rng),
        "hopping-1m": HoppingServiceModel(
            HoppingServiceConfig(window_ms=60 * MINUTES, hop_ms=1 * MINUTES), rng
        ),
        "hopping-1s": HoppingServiceModel(
            HoppingServiceConfig(window_ms=60 * MINUTES, hop_ms=1 * SECONDS), rng
        ),
        "perevent-scan": PerEventScanServiceModel(PerEventScanConfig(), rng),
    }
    return {name: 1000.0 / model.mean_service_ms for name, model in models.items()}


def run(fast: bool = True) -> dict:
    events = 4000 if fast else 20_000
    errors = _accuracy_run(events, seed=17)
    capacity = _capacity_estimates()

    quadrants = {
        "railgun": ("accurate", "large-scale"),
        "perevent-scan": ("accurate", "low-scale"),
        "hopping-1m": ("approximate", "large-scale"),
        "lambda": ("approximate", "large-scale"),
    }
    checks = [
        ("hopping windows are inaccurate (error > 5%)", errors["hopping-1m"] > 0.05),
        ("lambda is inaccurate (error > 1%)", errors["lambda"] > 0.01),
        ("per-event rescan is exact", errors["perevent-scan"] < 1e-12),
        (
            "rescan capacity is far below railgun (>5x gap)",
            capacity["railgun"] > 5 * capacity["perevent-scan"],
        ),
        (
            "railgun capacity comparable to coarse hopping (within 2x)",
            capacity["railgun"] > 0.5 * capacity["hopping-1m"],
        ),
        (
            "fine hopping loses capacity vs coarse hopping",
            capacity["hopping-1s"] < 0.5 * capacity["hopping-1m"],
        ),
    ]
    return {
        "errors": errors,
        "capacity": capacity,
        "quadrants": quadrants,
        "checks": checks,
    }


def render(result: dict) -> str:
    rows = []
    for name in ("railgun", "perevent-scan", "hopping-1m", "hopping-1s", "lambda"):
        if name == "railgun":
            error_text = "exact"
        elif name in result["errors"]:
            error_text = f"{result['errors'][name] * 100:.1f}%"
        else:
            error_text = "(capacity probe)"
        cap = result["capacity"].get(name)
        quadrant = result["quadrants"].get(name)
        rows.append([
            name,
            error_text,
            f"{cap:,.0f} ev/s" if cap is not None else "n/a",
            " / ".join(quadrant) if quadrant else "-",
        ])
    lines = [
        "Figure 2 — accuracy vs scale, measured on a common workload",
        format_table(["engine", "count error", "1-core capacity", "paper quadrant"], rows),
        "",
        "paper expectation: only Railgun combines accuracy with scale;",
        "hopping/lambda trade accuracy away, per-event rescan trades scale.",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
