"""Figure 8 (§5.1) — Flink hopping windows vs Railgun sliding windows.

Setup mirrored from the paper: single computing node, sustained 500
ev/s, one metric (``sum(amount)`` per card) over a 60-minute window.
Flink runs hopping windows with hop sizes from 5 minutes down to 1
second; Railgun runs its real-time sliding window. Reported: the full
latency-percentile distribution per configuration.

Expected shape (paper): hops of 10 s or less cannot sustain 500 ev/s
(latencies diverge); 15–30 s hops breach the 250 ms @ 99.9% SLO; Railgun
stays under the SLO and below every hopping configuration with hop
<= 1 minute.
"""

from __future__ import annotations

import random

from repro.bench.report import ascii_chart, check_expectations, format_percentile_table
from repro.common.clock import MINUTES, SECONDS
from repro.common.percentiles import PERCENTILE_GRID
from repro.sim import (
    GcConfig,
    HoppingServiceConfig,
    HoppingServiceModel,
    KafkaConfig,
    KafkaModel,
    PipelineConfig,
    RailgunServiceConfig,
    RailgunServiceModel,
    simulate_pipeline,
)

WINDOW_MS = 60 * MINUTES
RATE = 500.0
SLO_MS = 250.0
SLO_PCT = 99.9

#: hop sizes from the paper's legend
HOPS_MS = [5 * MINUTES, 1 * MINUTES, 30 * SECONDS, 15 * SECONDS, 10 * SECONDS, 5 * SECONDS]

_HOP_LABELS = {
    5 * MINUTES: "flink-hop-5min",
    1 * MINUTES: "flink-hop-1min",
    30 * SECONDS: "flink-hop-30s",
    15 * SECONDS: "flink-hop-15s",
    10 * SECONDS: "flink-hop-10s",
    5 * SECONDS: "flink-hop-5s",
}


def _kafka(seed: int) -> KafkaModel:
    # Two topics: events (10 partitions) + replies (1), one broker (§5).
    return KafkaModel(KafkaConfig(), random.Random(seed), total_partitions=11, brokers=1)


def run(fast: bool = True) -> dict:
    """Simulate each configuration; returns percentile series."""
    duration_s = 240.0 if fast else 1800.0  # paper: 35 min runs, 5 warmup
    warmup_s = 30.0 if fast else 300.0
    pipeline = PipelineConfig(
        rate_ev_s=RATE, duration_s=duration_s, warmup_s=warmup_s,
        processors=1, seed=11,
    )
    series: dict[str, dict[float, float]] = {}
    diverged: dict[str, bool] = {}

    railgun = simulate_pipeline(
        pipeline,
        lambda rng: RailgunServiceModel(RailgunServiceConfig(state_keys=1), rng),
        _kafka(50),
        gc_config=GcConfig(alloc_per_event_bytes=600e3, minor_pause_median_ms=6.0),
    )
    series["railgun"] = railgun.recorder.percentiles(PERCENTILE_GRID)
    diverged["railgun"] = railgun.diverged

    for hop_ms in HOPS_MS:
        label = _HOP_LABELS[hop_ms]
        config = HoppingServiceConfig(window_ms=WINDOW_MS, hop_ms=hop_ms)
        # Hopping state scales with panes x keys: more GC pressure at
        # small hops (the §2.2 memory story).
        panes = -(-WINDOW_MS // hop_ms)
        gc = GcConfig(
            alloc_per_event_bytes=250e3 + 800.0 * panes,
            baseline_live_bytes=2e9 + 40e3 * config.active_keys * min(panes, 720) / 12,
        )
        result = simulate_pipeline(
            pipeline,
            lambda rng, c=config: HoppingServiceModel(c, rng),
            _kafka(60 + hop_ms % 37),
            gc_config=gc,
        )
        series[label] = result.recorder.percentiles(PERCENTILE_GRID)
        diverged[label] = result.diverged

    checks = [
        (
            f"Railgun meets the M requirement (<{SLO_MS:.0f}ms @ {SLO_PCT}%)",
            series["railgun"][SLO_PCT] < SLO_MS,
        ),
        ("Flink with 10s hop cannot sustain 500 ev/s", diverged["flink-hop-10s"]),
        ("Flink with 5s hop cannot sustain 500 ev/s", diverged["flink-hop-5s"]),
        (
            "Flink needs hops >= 1min to approach the SLO region",
            series["flink-hop-30s"][SLO_PCT] > SLO_MS,
        ),
    ]
    for hop_ms in HOPS_MS:
        if hop_ms <= 1 * MINUTES:
            label = _HOP_LABELS[hop_ms]
            checks.append(
                (
                    f"railgun below {label} at every percentile >= p50",
                    all(
                        series["railgun"][pct] <= series[label][pct] + 1e-9
                        for pct in PERCENTILE_GRID
                        if pct >= 50.0
                    ),
                )
            )
    return {
        "series": series,
        "diverged": diverged,
        "checks": checks,
        "rate": RATE,
        "duration_s": duration_s,
    }


def render(result: dict) -> str:
    grid = [p for p in PERCENTILE_GRID if p >= 50.0]
    chart_series = {
        name: [values[p] for p in grid] for name, values in result["series"].items()
    }
    lines = [
        "Figure 8 (§5.1) — Flink hopping vs Railgun sliding, "
        f"{result['rate']:.0f} ev/s, 60-min window",
        format_percentile_table(result["series"], grid),
        "",
        ascii_chart(chart_series, [f"p{p:g}" for p in grid]),
        "",
        "diverged (could not sustain load): "
        + ", ".join(name for name, d in result["diverged"].items() if d),
        "",
        "paper expectation: hops <=10s diverge; Railgun under 250ms @ p99.9",
        "and below all hopping configs with hop <= 1min at high percentiles.",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
