"""Figure 1 / §2.1 — hopping windows miss in-window bursts.

The motivating example: the rule "block if the number of transactions of
a card in the last 5 minutes is higher than 4" must fire on the fifth
event of any burst that fits inside 5 minutes. A real-time sliding
window always fires; hopping windows miss bursts that straddle hop
boundaries, **regardless of hop size** ("the problem in Figure 1 can
happen regardless of the hop size").

The experiment replays adversarial bursts (packed just inside one
window, randomly phased against the hop grid) through:

- Railgun's actual engine (reservoir + plan + state store),
- hopping engines at several hop sizes,

and reports the detection rate of each.
"""

from __future__ import annotations

from repro.baselines.hopping import HoppingWindowEngine
from repro.baselines.reference import TrueSlidingReference
from repro.bench.report import check_expectations, format_table
from repro.common.clock import MINUTES, SECONDS, format_duration_ms
from repro.events.generators import BurstWorkload
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.plan.dag import TaskPlan
from repro.query.parser import parse_query
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig
from repro.state.store import MetricStateStore

WINDOW_MS = 5 * MINUTES
RULE_THRESHOLD = 4  # fire when count > 4 (i.e. on the 5th event)


def _railgun_engine():
    registry = SchemaRegistry()
    registry.register(
        Schema([SchemaField("cardId", FieldType.STRING), SchemaField("amount", FieldType.FLOAT)])
    )
    reservoir = EventReservoir(registry, config=ReservoirConfig(chunk_max_events=64))
    plan = TaskPlan(reservoir, MetricStateStore())
    handle = plan.add_metric(
        parse_query("SELECT count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes")
    )
    return reservoir, plan, handle


def _detection_rates(bursts: list, hop_sizes: list[int]) -> dict[str, float]:
    reservoir, plan, handle = _railgun_engine()
    reference = TrueSlidingReference(WINDOW_MS)
    hoppers = {hop: HoppingWindowEngine(WINDOW_MS, hop) for hop in hop_sizes}

    detections = {"railgun-sliding": 0, "true-sliding": 0}
    detections.update({f"hopping-{format_duration_ms(h)}": 0 for h in hop_sizes})

    for burst in bursts:
        burst_detected: dict[str, bool] = {name: False for name in detections}
        for event in burst:
            key = event["cardId"]
            result = reservoir.append(event)
            replies = plan.process_event(result.event)
            if replies[handle.metric_id]["count(*)"] > RULE_THRESHOLD:
                burst_detected["railgun-sliding"] = True
            reference.on_event(key, event.timestamp, 1.0)
            if reference.count(key, event.timestamp) > RULE_THRESHOLD:
                burst_detected["true-sliding"] = True
            for hop, engine in hoppers.items():
                engine.on_event(key, event.timestamp, 1.0)
                # Early-trigger semantics: most generous to hopping.
                if engine.max_live_count(key) > RULE_THRESHOLD:
                    burst_detected[f"hopping-{format_duration_ms(hop)}"] = True
        for name, hit in burst_detected.items():
            if hit:
                detections[name] += 1
    return {name: hits / len(bursts) for name, hits in detections.items()}


def run(fast: bool = True) -> dict:
    """Replay bursts; count rule detections per engine."""
    entities = 60 if fast else 400
    hop_sizes = [1 * MINUTES, 30 * SECONDS, 10 * SECONDS, 1 * SECONDS]

    # Part A: random burst spans (50-99.8% of the window) — the general
    # detection-rate-vs-hop-size curve.
    general = _detection_rates(
        list(BurstWorkload(WINDOW_MS, burst_size=5, entities=entities, seed=13).bursts()),
        hop_sizes,
    )
    # Part B: the exact Figure 1 scenario — bursts spanning (almost) the
    # full window. No hop size can place one pane around all 5 events.
    figure1 = _detection_rates(
        list(
            BurstWorkload(
                WINDOW_MS, burst_size=5, entities=entities, seed=29,
                span_range=(0.9995, 0.9999),
            ).bursts()
        ),
        hop_sizes,
    )

    checks = [
        ("Railgun detects every burst (general)", general["railgun-sliding"] == 1.0),
        ("Railgun detects every burst (Figure 1 spans)", figure1["railgun-sliding"] == 1.0),
        ("Railgun matches the brute-force reference", general["railgun-sliding"] == general["true-sliding"]),
    ]
    for hop in hop_sizes:
        name = f"hopping-{format_duration_ms(hop)}"
        if hop >= 10 * SECONDS:
            checks.append((f"{name} misses some bursts (general)", general[name] < 1.0))
        checks.append((f"{name} misses Figure 1 spans", figure1[name] < 0.5))
    # Smaller hops should not detect fewer bursts than larger hops.
    ordered = [general[f"hopping-{format_duration_ms(h)}"] for h in hop_sizes]
    checks.append(("smaller hops detect at least as much", all(
        ordered[i] <= ordered[i + 1] + 1e-9 for i in range(len(ordered) - 1)
    )))
    return {"bursts": entities, "general": general, "figure1": figure1, "checks": checks}


def render(result: dict) -> str:
    rows = [
        [name, f"{result['general'][name]:.3f}", f"{result['figure1'][name]:.3f}"]
        for name in result["general"]
    ]
    lines = [
        "Figure 1 / §2.1 — burst detection (rule: >4 events in 5 min)",
        f"adversarial bursts per scenario: {result['bursts']}",
        format_table(
            ["engine", "random spans", "Figure 1 spans (~full window)"], rows
        ),
        "",
        "paper expectation: sliding windows detect 100% always; hopping",
        "windows miss bursts at any hop size, and near-window-long bursts",
        "(the exact Figure 1 case) are missed at every hop size.",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
