"""Ablation (§4.1.3) — state-store (LSM) behaviour.

Real measurements on the embedded LSM store:

- put/get throughput under a fraud-like keyed update mix;
- memtable size sweep: write amplification (flushes + compactions);
- checkpoint cost: the paper's claim that checkpoints are cheap because
  "only a small amount of data needs to be written to disk at a given
  time" — measured as bytes written at checkpoint versus total data.
"""

from __future__ import annotations

import random
import time

from repro.bench.report import check_expectations, format_table
from repro.lsm.db import LsmConfig, LsmDb


def _mixed_workload(db: LsmDb, operations: int, seed: int) -> dict[str, float]:
    rng = random.Random(seed)
    started = time.perf_counter()
    for index in range(operations):
        key = f"card-{rng.randrange(2000):06d}".encode()
        if rng.random() < 0.5:
            db.put(key, f"state-{index}".encode())
        else:
            db.get(key)
    elapsed = time.perf_counter() - started
    return {
        "ops_per_sec": operations / elapsed,
        "flushes": float(db.stats.flushes),
        "compactions": float(db.stats.compactions),
        "bloom_skips": float(db.stats.bloom_skips),
        "sstable_reads": float(db.stats.sstable_reads),
    }


def run(fast: bool = True) -> dict:
    operations = 8000 if fast else 50_000

    memtable_sizes = [8 * 1024, 64 * 1024, 512 * 1024]
    by_memtable = {}
    for size in memtable_sizes:
        db = LsmDb(config=LsmConfig(memtable_flush_bytes=size))
        by_memtable[size] = _mixed_workload(db, operations, seed=5)

    # Checkpoint cost: fill a store, checkpoint, write a little more,
    # checkpoint again; the second checkpoint should be cheap.
    db = LsmDb(config=LsmConfig(memtable_flush_bytes=32 * 1024))
    rng = random.Random(9)
    for index in range(operations // 2):
        db.put(f"k{rng.randrange(3000):06d}".encode(), f"v{index}".encode())
    appended_before = db.storage.stats.appended_bytes
    first = db.checkpoint()
    first_cost = db.storage.stats.appended_bytes - appended_before
    for index in range(50):
        db.put(f"k{rng.randrange(3000):06d}".encode(), f"w{index}".encode())
    appended_before = db.storage.stats.appended_bytes
    second = db.checkpoint()
    second_cost = db.storage.stats.appended_bytes - appended_before
    total_bytes = sum(db.storage.size(name) for name in db.storage.list())
    db.release_checkpoint(first)
    db.release_checkpoint(second)

    checks = [
        (
            "smaller memtables flush (and compact) more",
            by_memtable[8 * 1024]["flushes"] > by_memtable[512 * 1024]["flushes"],
        ),
        (
            "bloom filters skip most table probes",
            all(
                m["bloom_skips"] >= m["sstable_reads"] * 0.2
                for m in by_memtable.values()
                if m["sstable_reads"] > 0
            ),
        ),
        (
            "incremental checkpoint writes a small fraction of the data",
            second_cost < 0.2 * max(total_bytes, 1),
        ),
    ]
    return {
        "by_memtable": by_memtable,
        "checkpoint": {
            "first_cost": first_cost,
            "second_cost": second_cost,
            "total_bytes": total_bytes,
        },
        "checks": checks,
    }


def render(result: dict) -> str:
    rows = [
        [
            f"{size // 1024}KB",
            f"{m['ops_per_sec']:,.0f}",
            int(m["flushes"]),
            int(m["compactions"]),
            int(m["bloom_skips"]),
        ]
        for size, m in result["by_memtable"].items()
    ]
    cp = result["checkpoint"]
    lines = [
        "Ablation (§4.1.3) — LSM state store",
        format_table(
            ["memtable", "ops/s", "flushes", "compactions", "bloom skips"], rows
        ),
        "",
        f"checkpoint cost: initial={cp['first_cost']}B, "
        f"incremental={cp['second_cost']}B of {cp['total_bytes']}B total",
        "",
        "expectation: checkpoints stay cheap (only recent data flushes).",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
