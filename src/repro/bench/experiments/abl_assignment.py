"""Ablation (§4.2) — sticky, replica-aware assignment vs round-robin.

Runs the *real* cluster twice through the same failure script (load,
kill a node, recover, revive) with (a) the Figure 7 sticky strategy and
(b) a naive round-robin assignor, and compares the recovery bill: task
copies moved to processors with no prior data, bytes transferred, and
promotions (replica-to-active handovers needing zero copy).
"""

from __future__ import annotations

from repro.bench.report import check_expectations, format_table
from repro.engine.assignment import (
    Assignment,
    PreviousState,
    ProcessorInfo,
    StickyAssignmentStrategy,
    round_robin_task_strategy,
)
from repro.engine.cluster import RailgunCluster
from repro.engine.processor import UnitConfig
from repro.events.generators import FraudWorkload


class _RoundRobinAdapter:
    """Round-robin baseline behind the cluster's strategy interface."""

    def __init__(self, replication_factor: int) -> None:
        self.replication_factor = replication_factor

    def assign(self, tasks, processors, previous=None) -> Assignment:
        return round_robin_task_strategy(
            tasks, processors, previous, replication_factor=self.replication_factor
        )


def _run_scenario(strategy: object | None, events: int) -> dict[str, float]:
    cluster = RailgunCluster(
        nodes=3,
        processor_units=2,
        replication_factor=1,
        brokers=3,
        unit_config=UnitConfig(checkpoint_interval=50),
        assignment_strategy=strategy,
    )
    workload = FraudWorkload(cards=200, merchants=50, events_per_second=100, total_fields=16)
    schema = workload.schema
    cluster.create_stream(
        "payments", partitioners=["cardId"], partitions=6, schema=schema
    )
    cluster.create_metric(
        "SELECT sum(amount), count(*) FROM payments GROUP BY cardId OVER sliding 5 minutes"
    )
    for event in workload.take(events):
        cluster.send("payments", event=event)
    baseline = dict(cluster.recovery_stats())

    cluster.fail_node("node-1")
    cluster.run_until_quiet()
    for event in workload.take(events // 4):
        cluster.send("payments", event=event)
    cluster.revive_node("node-1")
    cluster.run_until_quiet()
    for event in workload.take(events // 4):
        cluster.send("payments", event=event)

    stats = cluster.recovery_stats()
    return {
        "bytes_transferred": stats["bytes_transferred"] - baseline["bytes_transferred"],
        "recoveries": stats["recoveries"] - baseline["recoveries"],
        "delta_recoveries": stats["delta_recoveries"] - baseline["delta_recoveries"],
        "promotions": stats["promotions"] - baseline["promotions"],
        "rebalances": cluster.rebalance_count,
    }


def _strategy_movement_comparison() -> dict[str, int]:
    """Pure-strategy comparison: copies moved on a single node loss."""
    from repro.messaging.log import TopicPartition

    tasks = [TopicPartition("t", i) for i in range(24)]
    processors = [
        ProcessorInfo(f"n{n}/p{p}", f"n{n}") for n in range(4) for p in range(2)
    ]
    sticky = StickyAssignmentStrategy(replication_factor=1)
    first = sticky.assign(tasks, processors, PreviousState())
    survivors = [p for p in processors if p.node_id != "n0"]
    previous = PreviousState(
        active=dict(first.active), replica=dict(first.replica), stale={}
    )
    sticky_moves = sticky.assign(tasks, survivors, previous).moved_from(previous)
    rr_moves = round_robin_task_strategy(
        tasks, survivors, previous, replication_factor=1
    ).moved_from(previous)
    # Copies that MUST move: everything the dead node held.
    dead_copies = sum(
        len(first.active.get(p.processor_id, set()))
        + len(first.replica.get(p.processor_id, set()))
        for p in processors
        if p.node_id == "n0"
    )
    return {
        "sticky_moves": sticky_moves,
        "round_robin_moves": rr_moves,
        "unavoidable": dead_copies,
    }


def run(fast: bool = True) -> dict:
    events = 120 if fast else 600
    sticky = _run_scenario(None, events)
    round_robin = _run_scenario(_RoundRobinAdapter(1), events)
    movement = _strategy_movement_comparison()

    checks = [
        (
            "sticky transfers fewer recovery bytes than round-robin",
            sticky["bytes_transferred"] <= round_robin["bytes_transferred"],
        ),
        (
            "sticky needs fewer cold recoveries",
            sticky["recoveries"] <= round_robin["recoveries"],
        ),
        (
            "pure strategy: sticky moves fewer copies than round-robin",
            movement["sticky_moves"] < movement["round_robin_moves"],
        ),
        (
            "pure strategy: sticky within 1.5x of the unavoidable minimum",
            movement["sticky_moves"] <= 1.5 * movement["unavoidable"],
        ),
    ]
    return {
        "sticky": sticky,
        "round_robin": round_robin,
        "movement": movement,
        "checks": checks,
    }


def render(result: dict) -> str:
    keys = ["bytes_transferred", "recoveries", "delta_recoveries", "promotions", "rebalances"]
    rows = [
        [key, result["sticky"][key], result["round_robin"][key]] for key in keys
    ]
    lines = [
        "Ablation (§4.2) — sticky (Figure 7) vs round-robin assignment",
        format_table(["metric (failure script)", "sticky", "round-robin"], rows),
        "",
        "pure-strategy movement on one node loss (24 tasks, RF=1): "
        f"sticky={result['movement']['sticky_moves']} copies, "
        f"round-robin={result['movement']['round_robin_moves']} copies, "
        f"unavoidable minimum={result['movement']['unavoidable']}",
        "",
        "expectation: stickiness minimizes data shuffling (§4.2 goal 1).",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
