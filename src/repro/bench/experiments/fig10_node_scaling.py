"""Figure 10 (§5.3) — scaling Railgun from 1 to 50 nodes.

The paper's methodology: each m5.4xlarge node runs 8 processor units
and is loaded "as much as possible, in a sustained way, without
breaching the M requirement"; nodes are added until the cluster absorbs
1M ev/s. We reproduce that search: for each cluster size the experiment
binary-searches the highest per-node rate whose simulated p99.9 stays
under 250 ms (capped at the single-node sweet spot of 25k ev/s), then
reports the achieved per-node throughput and the p95/p99.9 latencies.

Cluster-size effects are carried by the Kafka model: partitions grow
with the node count (one partition per processor unit, §5.3) while the
broker fleet stays at 30, so the per-leg latency and hiccup budget
degrade as the cluster grows — the "bottleneck in Kafka" the paper
reports past ~35 nodes.
"""

from __future__ import annotations

import random

from repro.bench.report import ascii_chart, check_expectations, format_table
from repro.sim import (
    GcConfig,
    KafkaConfig,
    KafkaModel,
    PipelineConfig,
    RailgunServiceConfig,
    RailgunServiceModel,
    simulate_pipeline,
)

NODE_COUNTS = [1, 3, 6, 12, 20, 35, 50]
PROCESSORS_PER_NODE = 8
SLO_MS = 250.0
PER_NODE_CAP = 25_000.0
BROKERS = 30

#: offered cluster loads from §5.3: 25k ev/s per node while the cluster
#: is small, then stepping toward the 1M ev/s target (750k at 35 nodes,
#: 1M at 50 — the paper's own schedule).
OFFERED_TOTAL = {1: 25e3, 3: 75e3, 6: 150e3, 12: 300e3, 20: 500e3, 35: 750e3, 50: 1e6}

#: §5.3 node profile: 16 vCPUs, 64 GB RAM, 32 GB heap, ~7 GB live set,
#: ~5 GB/s allocation at 25k ev/s.
_GC = GcConfig(
    heap_bytes=32e9,
    young_gen_bytes=6e9,
    baseline_live_bytes=7e9,
    alloc_per_event_bytes=200e3,
    minor_pause_median_ms=12.0,
    minor_pause_sigma=0.45,
    major_threshold=0.85,
)

#: hot-path service profile: 3 metrics sharing one window/group-by, at
#: production tuning (~3.1k ev/s per processor unit sustained).
_SERVICE = RailgunServiceConfig(
    base_us=60.0,
    per_state_key_us=25.0,
    state_keys=3,
    per_tail_event_us=8.0,
    jitter_sigma=0.30,
)


def _simulate_node(nodes: int, per_node_rate: float, duration_s: float, seed: int):
    """Simulate one node's slice of the cluster at the given rate.

    Task partitions are independent, so one node is representative; the
    cluster size enters through the Kafka model's partition count and
    broker load.
    """
    partitions = nodes * PROCESSORS_PER_NODE + 6  # event topic + replies
    kafka_config = KafkaConfig(
        # broker load: cluster-wide message rate (events + acks + replies)
        # versus fleet capacity; median and hiccup odds stretch with it.
        hiccup_probability=2e-5 * (1.0 + nodes / 40.0),
    )
    total_rate = per_node_rate * nodes
    broker_load = total_rate * 3.0 / BROKERS / 120_000.0  # acks=all, RF 3
    kafka_config.leg_median_ms = 0.6 * (1.0 + max(0.0, broker_load - 0.5))
    kafka = KafkaModel(
        kafka_config,
        random.Random(seed * 977),
        total_partitions=partitions,
        brokers=BROKERS,
        acks_all=True,
    )
    pipeline = PipelineConfig(
        rate_ev_s=per_node_rate,
        duration_s=duration_s,
        warmup_s=duration_s * 0.15,
        processors=PROCESSORS_PER_NODE,
        seed=seed,
    )
    return simulate_pipeline(
        pipeline,
        lambda rng: RailgunServiceModel(_SERVICE, rng),
        kafka,
        gc_config=_GC,
    )


def _max_sustainable_rate(nodes: int, duration_s: float, seed: int) -> tuple[float, object]:
    """Binary search the highest per-node rate meeting the SLO."""
    demanded = min(PER_NODE_CAP, OFFERED_TOTAL[nodes] / nodes)
    # A borderline run can cross the SLO on hiccup sampling alone; the
    # paper tunes for *sustained* operation, so give the demanded rate
    # two independent runs before declaring it unsustainable.
    for attempt in range(2):
        result = _simulate_node(nodes, demanded, duration_s, seed + 31 * attempt)
        if result.percentile(99.9) < SLO_MS and not result.diverged:
            return demanded, result
    low, high = demanded * 0.5, demanded
    best_rate, best_result = low, None
    for _ in range(5):
        mid = (low + high) / 2.0
        result = _simulate_node(nodes, mid, duration_s, seed)
        if result.percentile(99.9) < SLO_MS and not result.diverged:
            best_rate, best_result = mid, result
            low = mid
        else:
            high = mid
    if best_result is None:
        best_result = _simulate_node(nodes, best_rate, duration_s, seed)
    return best_rate, best_result


def run(fast: bool = True) -> dict:
    """Sweep cluster sizes; report per-node throughput + latency."""
    duration_s = 40.0 if fast else 240.0
    rows = []
    for index, nodes in enumerate(NODE_COUNTS):
        rate, result = _max_sustainable_rate(nodes, duration_s, seed=40 + index)
        rows.append(
            {
                "nodes": nodes,
                "per_node_rate": rate,
                "total_rate": rate * nodes,
                "p95": result.percentile(95.0),
                "p99.9": result.percentile(99.9),
                "utilization": result.utilization,
            }
        )
    by_nodes = {row["nodes"]: row for row in rows}
    checks = [
        (
            "a single node sustains ~25k ev/s under the SLO",
            by_nodes[1]["per_node_rate"] >= 0.95 * PER_NODE_CAP,
        ),
        (
            "scaling is near-linear to 20 nodes (>=95% of ideal)",
            all(
                by_nodes[n]["per_node_rate"] >= 0.95 * PER_NODE_CAP
                for n in (3, 6, 12, 20)
            ),
        ),
        (
            "degradation appears by 35 nodes (per-node rate dips)",
            by_nodes[35]["per_node_rate"] < 0.9 * by_nodes[12]["per_node_rate"],
        ),
        (
            "50 nodes absorb ~1M ev/s total (>= 900k)",
            by_nodes[50]["total_rate"] >= 0.9e6,
        ),
        (
            "p99.9 stays under 250ms at every scale",
            all(row["p99.9"] < SLO_MS for row in rows),
        ),
        (
            "per-node throughput at 50 nodes lands near 20k ev/s",
            17_000 <= by_nodes[50]["per_node_rate"] <= 25_000,
        ),
    ]
    return {"rows": rows, "checks": checks}


def render(result: dict) -> str:
    rows = result["rows"]
    table_rows = [
        [
            row["nodes"],
            f"{row['per_node_rate'] / 1000:.1f}k",
            f"{row['total_rate'] / 1000:.0f}k",
            row["p95"],
            row["p99.9"],
            f"{row['utilization']:.2f}",
        ]
        for row in rows
    ]
    chart = {
        "thr/node (kev/s)": [row["per_node_rate"] / 1000 for row in rows],
        "p95 (ms)": [row["p95"] for row in rows],
        "p99.9 (ms)": [row["p99.9"] for row in rows],
    }
    lines = [
        "Figure 10 (§5.3) — per-node throughput & latency vs cluster size",
        format_table(
            ["nodes", "thr/node", "total", "p95 ms", "p99.9 ms", "util"],
            table_rows,
        ),
        "",
        ascii_chart(chart, [str(row["nodes"]) for row in rows], log_scale=False, y_unit="mixed"),
        "",
        "paper expectation: ~25k ev/s per node to 20 nodes; small dip from",
        "35 nodes (Kafka bottleneck); 1M ev/s at 50 nodes (~20k per node);",
        "p99.9 below 250ms throughout.",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
