"""Figure 9a (§5.2a) — window size is irrelevant to Railgun's latency.

The same metric as §5.1 at 500 ev/s, with the window size swept from 5
minutes to 7 days. Because every window uses exactly two iterators and
the reservoir pages chunks through the cache regardless of span, the
latency distribution must be flat across sizes — variation at the very
top percentiles comes from Kafka, not Railgun (§5.2.1: "in some runs we
have 150ms in 99.99 percentile, while in others 75ms").

The experiment also runs the *real* reservoir at each window size (a
scaled-down trace) and reports its in-memory footprint, demonstrating
the mechanism behind the flat curve: memory does not grow with span.
"""

from __future__ import annotations

import random

from repro.bench.report import (
    ascii_chart,
    check_expectations,
    format_percentile_table,
    format_table,
)
from repro.common.clock import DAYS, HOURS, MINUTES
from repro.common.percentiles import PERCENTILE_GRID
from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.plan.dag import TaskPlan
from repro.query.parser import parse_query
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig
from repro.sim import (
    GcConfig,
    KafkaConfig,
    KafkaModel,
    PipelineConfig,
    RailgunServiceConfig,
    RailgunServiceModel,
    simulate_pipeline,
)
from repro.state.store import MetricStateStore

RATE = 500.0
SLO_MS = 250.0

WINDOW_SIZES = {
    "5min": 5 * MINUTES,
    "30min": 30 * MINUTES,
    "1h": 1 * HOURS,
    "2h": 2 * HOURS,
    "3h": 3 * HOURS,
    "1day": 1 * DAYS,
    "7days": 7 * DAYS,
}


def _memory_footprint(window_ms: int, events: int = 4000) -> dict[str, int]:
    """Run the real reservoir + plan; report in-memory chunk counts.

    The event-time step is scaled so the trace spans multiple windows
    even for the 7-day case, forcing both iterators to move.
    """
    registry = SchemaRegistry()
    registry.register(
        Schema([SchemaField("cardId", FieldType.STRING), SchemaField("amount", FieldType.FLOAT)])
    )
    config = ReservoirConfig(chunk_max_events=128, cache_capacity=8)
    reservoir = EventReservoir(registry, config=config)
    plan = TaskPlan(reservoir, MetricStateStore())
    window_text = f"sliding {window_ms} ms"
    plan.add_metric(
        parse_query(f"SELECT sum(amount) FROM s GROUP BY cardId OVER {window_text}")
    )
    step = max(1, (3 * window_ms) // events)
    rng = random.Random(5)
    for index in range(events):
        event = Event(
            f"e{index}", index * step,
            {"cardId": f"c{rng.randrange(50)}", "amount": 1.0},
        )
        result = reservoir.append(event)
        plan.process_event(result.event)
    return {
        "stored_events": reservoir.total_events,
        "memory_chunks": reservoir.memory_chunk_count,
        "cached_chunks": len(reservoir.cache._entries),
        "iterators": reservoir.iterator_count,
    }


def run(fast: bool = True) -> dict:
    """Simulate latency per window size + measure real memory."""
    duration_s = 300.0 if fast else 1800.0
    warmup_s = 20.0 if fast else 300.0
    series: dict[str, dict[float, float]] = {}
    for index, (label, _window_ms) in enumerate(WINDOW_SIZES.items()):
        # The Railgun service model is window-size independent by
        # construction (two iterators, same state keys); runs differ
        # only by seed — exactly the paper's claim under test.
        pipeline = PipelineConfig(
            rate_ev_s=RATE, duration_s=duration_s, warmup_s=warmup_s,
            processors=1, seed=300 + index,
        )
        kafka = KafkaModel(
            KafkaConfig(), random.Random(900 + index), total_partitions=11, brokers=1
        )
        result = simulate_pipeline(
            pipeline,
            lambda rng: RailgunServiceModel(RailgunServiceConfig(state_keys=1), rng),
            kafka,
            gc_config=GcConfig(alloc_per_event_bytes=600e3, minor_pause_median_ms=6.0),
        )
        series[label] = result.recorder.percentiles(PERCENTILE_GRID)

    memory = {
        label: _memory_footprint(window_ms, events=2000 if fast else 8000)
        for label, window_ms in WINDOW_SIZES.items()
    }

    p999 = [values[99.9] for values in series.values()]
    p50 = [values[50.0] for values in series.values()]
    chunks = [m["memory_chunks"] for m in memory.values()]
    checks = [
        ("all window sizes meet <250ms @ 99.9%", max(p999) < SLO_MS),
        (
            "p50 flat across sizes (max/min < 1.5x)",
            max(p50) / min(p50) < 1.5,
        ),
        (
            "p99.9 within the paper's Kafka-noise band (max/min < 4x)",
            max(p999) / min(p999) < 4.0,
        ),
        (
            "real reservoir memory chunks do not grow with window size",
            max(chunks) - min(chunks) <= 1,
        ),
        (
            "every size uses exactly 2 iterators (head + tail)",
            all(m["iterators"] == 2 for m in memory.values()),
        ),
    ]
    return {"series": series, "memory": memory, "checks": checks, "rate": RATE}


def render(result: dict) -> str:
    grid = [p for p in PERCENTILE_GRID if p >= 50.0]
    chart = {
        name: [values[p] for p in grid] for name, values in result["series"].items()
    }
    memory_rows = [
        [label, m["stored_events"], m["memory_chunks"], m["cached_chunks"], m["iterators"]]
        for label, m in result["memory"].items()
    ]
    lines = [
        f"Figure 9a (§5.2a) — latency vs window size at {result['rate']:.0f} ev/s",
        format_percentile_table(result["series"], grid),
        "",
        ascii_chart(chart, [f"p{p:g}" for p in grid]),
        "",
        "real reservoir footprint (mechanism behind the flat curve):",
        format_table(
            ["window", "stored events", "in-mem chunks", "cache entries", "iterators"],
            memory_rows,
        ),
        "",
        "paper expectation: distributions overlap for 5min..7days; top",
        "percentiles vary with Kafka noise only (75-150ms @ 99.99%).",
    ]
    lines += check_expectations(result["checks"])
    return "\n".join(lines)


if __name__ == "__main__":
    print(render(run(fast=True)))
