"""Plain-text rendering for experiment reports.

The paper's figures are latency-percentile curves and scaling series;
these helpers print the same data as aligned tables and log-scale ASCII
charts so a terminal run of the bench suite reads like the evaluation
section.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align a simple table; floats get compact rendering."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:,.0f}"
            if abs(value) >= 10:
                return f"{value:.1f}"
            return f"{value:.2f}"
        return str(value)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in text_rows:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def format_percentile_table(
    series: Mapping[str, Mapping[float, float]],
    grid: Sequence[float],
) -> str:
    """One row per series, one column per percentile (latency ms)."""
    headers = ["series"] + [f"p{p:g}" for p in grid]
    rows = []
    for name, values in series.items():
        rows.append([name] + [values.get(p, float("nan")) for p in grid])
    return format_table(headers, rows)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    height: int = 14,
    log_scale: bool = True,
    y_unit: str = "ms",
) -> str:
    """Log-scale multi-series chart, one glyph per series.

    Mirrors the paper's log-latency axes (Figures 8 and 9 span 0.1 ms to
    100 s). NaN/None points are skipped.
    """
    glyphs = "RABCDEFGH"
    points: list[tuple[int, int, str]] = []  # (col, row, glyph)
    values = [
        v
        for vs in series.values()
        for v in vs
        if v is not None and not math.isnan(v) and v > 0
    ]
    if not values:
        return "(no data)"
    low = min(values)
    high = max(values)
    if log_scale:
        lo = math.log10(low)
        hi = math.log10(high)
    else:
        lo, hi = low, high
    if hi - lo < 1e-9:
        hi = lo + 1.0

    def row_of(value: float) -> int:
        v = math.log10(value) if log_scale else value
        frac = (v - lo) / (hi - lo)
        return min(height - 1, max(0, int(round(frac * (height - 1)))))

    columns = len(x_labels)
    for index, (name, vs) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for col, value in enumerate(vs):
            if value is None or (isinstance(value, float) and math.isnan(value)) or value <= 0:
                continue
            points.append((col, row_of(value), glyph))

    grid = [[" "] * columns for _ in range(height)]
    for col, row, glyph in points:
        current = grid[row][col]
        grid[row][col] = "*" if current not in (" ", glyph) else glyph

    lines = []
    for row in range(height - 1, -1, -1):
        if log_scale:
            label = 10 ** (lo + (hi - lo) * row / (height - 1))
        else:
            label = lo + (hi - lo) * row / (height - 1)
        lines.append(f"{label:>10.2f} | " + "  ".join(grid[row]))
    lines.append(" " * 10 + " +-" + "---" * columns)
    label_line = " " * 13
    for x_label in x_labels:
        label_line += f"{x_label:<3}"[:3]
    lines.append(label_line)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"   (y in {y_unit}, log scale)  {legend}")
    return "\n".join(lines)


def check_expectations(checks: Sequence[tuple[str, bool]]) -> list[str]:
    """Render pass/fail lines for paper-shape assertions."""
    return [
        f"  [{'PASS' if ok else 'FAIL'}] {description}" for description, ok in checks
    ]
