"""Micro-benchmark harness for the ingestion hot path.

Times the per-event vs batched variants of the reservoir append loop,
the aggregate inner loops, the task-processor ingestion path and the
frontend fan-out, plus the end-to-end engine ingest in single-process,
process-parallel (``engine_ingest_process_{1,4}w``) and
sharded-frontend (``engine_ingest_process_{1,2,4}f``: N frontend
processes over 2 workers) and durable (``engine_ingest_process_durable``:
disk-backed bus, batch fsync) execution, the TCP front door
(``server_ingest_async_{1,64}c``: closed-loop clients through the
asyncio ingest server over a served sharded cluster), the durable-log
family
(``log_append_fsync_{never,batch,always}`` append cost per fsync policy,
``durable_recovery_reopen`` segment-scan recovery time) and the
crash-recovery family (``recovery_from_zero`` vs
``recovery_from_checkpoint``: time-to-recover and events replayed after
a worker kill), and emits a machine-readable JSON report so CI and
future PRs can track the perf trajectory::

    {bench_name: {"events_per_sec": float, "p50_us": float, "p99_us": float}}

The recovery benches add ``recovery_ms`` and ``events_replayed`` keys;
a baseline may declare ``_recovery_floors`` requiring the checkpointed
variant to replay strictly fewer events and recover a minimum factor
faster than from-zero.

Latency percentiles are per-event microseconds derived from per-slice
wall times (a slice is one batch for the batched variants and an
equally-sized run of single calls for the per-event variants), so the
two variants are directly comparable.

Run as a module::

    PYTHONPATH=src python -m repro.bench.perf --out BENCH_micro.json

CI gating::

    python -m repro.bench.perf --baseline benchmarks/baseline_micro.json \
        --tolerance 0.2 --min-speedup 1.5

``--baseline`` fails the run when a bench's throughput drops more than
``--tolerance`` below the checked-in floor; ``--min-speedup`` fails it
when the batched reservoir append stops beating the per-event append by
the required factor. A baseline may also declare ``_speedup_floors`` —
required throughput ratios between measured benches, each with a
``min_cpus`` guard: the multi-process floors only assert on hosts with
enough cores for the workers to actually run in parallel (a 1-core
container time-slices them, which measures scheduling, not scaling).
``--select SUBSTR`` runs the matching subset (the CI parallel-engine
smoke uses it); baseline floors for unmeasured benches are then skipped.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Callable, Sequence

from repro.aggregates.basic import AvgAggregator, CountAggregator, SumAggregator
from repro.aggregates.minmax import MaxAggregator, MinAggregator
from repro.engine.catalog import MetricDef, StreamDef
from repro.engine.cluster import RailgunCluster
from repro.engine.task import TaskProcessor
from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry
from repro.messaging.log import TopicPartition
from repro.reservoir.reservoir import EventReservoir, ReservoirConfig
from repro.shard.parallel import ParallelCluster
from repro.shard.router import ClusterRouter

#: the bench pair the CI speedup gate compares (reservoir append path)
SPEEDUP_PAIR = ("reservoir_append_batch", "reservoir_append_per_event")

_FIELDS = [
    SchemaField("cardId", FieldType.STRING),
    SchemaField("amount", FieldType.FLOAT),
]


def _registry() -> SchemaRegistry:
    registry = SchemaRegistry()
    registry.register(Schema(list(_FIELDS)))
    return registry


def _events(count: int) -> list[Event]:
    """Fresh, strictly in-order events (the ingestion steady state)."""
    return [
        Event(f"e{i}", i + 1, {"cardId": f"c{i % 100}", "amount": float(i % 97)})
        for i in range(count)
    ]


def _tie_events(count: int, group: int = 8) -> list[Event]:
    """In-order events arriving in equal-timestamp tie groups.

    The tie-heavy shape is the worst case the batched reservoir path
    used to hand back to per-event ``append()``; since the slab path
    learned ties, this bench tracks the win.
    """
    return [
        Event(
            f"t{i}", 1 + i // group,
            {"cardId": f"c{i % 100}", "amount": float(i % 97)},
        )
        for i in range(count)
    ]


def _reservoir_config() -> ReservoirConfig:
    # codec "none" isolates the append-path bookkeeping this harness
    # tracks from the (shared, chunk-size-amortized) compression cost.
    return ReservoirConfig(chunk_max_events=256, codec="none")


def _percentiles_us(samples_us: Sequence[float]) -> tuple[float, float]:
    """Exact (p50, p99) of per-event latencies in microseconds."""
    ordered = sorted(samples_us)
    if not ordered:
        return (0.0, 0.0)
    last = len(ordered) - 1
    p50 = ordered[min(last, int(0.50 * len(ordered)))]
    p99 = ordered[min(last, int(0.99 * len(ordered)))]
    return (p50, p99)


def _measure_slices(
    slices: Sequence[Sequence[Event]],
    run_slice: Callable[[Sequence[Event]], None],
) -> dict[str, float]:
    """Time ``run_slice`` per slice; report throughput + per-event tails."""
    samples_us: list[float] = []
    total_events = 0
    clock = time.perf_counter
    started = clock()
    for chunk in slices:
        slice_start = clock()
        run_slice(chunk)
        elapsed = clock() - slice_start
        total_events += len(chunk)
        samples_us.append(elapsed * 1e6 / max(1, len(chunk)))
    total = clock() - started
    p50, p99 = _percentiles_us(samples_us)
    return {
        "events_per_sec": total_events / total if total > 0 else 0.0,
        "p50_us": p50,
        "p99_us": p99,
    }


def _slices(events: list[Event], batch_size: int) -> list[list[Event]]:
    return [events[i:i + batch_size] for i in range(0, len(events), batch_size)]


# -- reservoir append ---------------------------------------------------------


def bench_reservoir_append_per_event(events: list[Event], batch_size: int) -> dict[str, float]:
    reservoir = EventReservoir(_registry(), config=_reservoir_config())

    def run_slice(chunk: Sequence[Event]) -> None:
        append = reservoir.append
        for event in chunk:
            append(event)

    return _measure_slices(_slices(events, batch_size), run_slice)


def bench_reservoir_append_batch(events: list[Event], batch_size: int) -> dict[str, float]:
    reservoir = EventReservoir(_registry(), config=_reservoir_config())
    return _measure_slices(_slices(events, batch_size), reservoir.append_batch)


def bench_reservoir_append_ties_per_event(
    events: list[Event], batch_size: int
) -> dict[str, float]:
    ties = _tie_events(len(events))
    reservoir = EventReservoir(_registry(), config=_reservoir_config())

    def run_slice(chunk: Sequence[Event]) -> None:
        append = reservoir.append
        for event in chunk:
            append(event)

    return _measure_slices(_slices(ties, batch_size), run_slice)


def bench_reservoir_append_ties_batch(
    events: list[Event], batch_size: int
) -> dict[str, float]:
    ties = _tie_events(len(events))
    reservoir = EventReservoir(_registry(), config=_reservoir_config())
    return _measure_slices(_slices(ties, batch_size), reservoir.append_batch)


# -- aggregate inner loops ----------------------------------------------------


def _aggregators():
    return [
        CountAggregator(),
        SumAggregator(),
        AvgAggregator(),
        MaxAggregator(),
        MinAggregator(),
    ]


def bench_aggregate_update_per_event(events: list[Event], batch_size: int) -> dict[str, float]:
    aggregators = _aggregators()

    def run_slice(chunk: Sequence[Event]) -> None:
        pairs = [(event.get("amount"), event) for event in chunk]
        for aggregator in aggregators:
            add = aggregator.add
            for value, event in pairs:
                add(value, event)

    return _measure_slices(_slices(events, batch_size), run_slice)


def bench_aggregate_update_batch(events: list[Event], batch_size: int) -> dict[str, float]:
    aggregators = _aggregators()

    def run_slice(chunk: Sequence[Event]) -> None:
        pairs = [(event.get("amount"), event) for event in chunk]
        for aggregator in aggregators:
            aggregator.update_batch(pairs, ())

    return _measure_slices(_slices(events, batch_size), run_slice)


# -- task-processor ingestion (reservoir + plan + state) ----------------------


def _task_processor() -> TaskProcessor:
    stream = StreamDef(
        "tx", tuple((f.name, f.field_type.value) for f in _FIELDS), ("cardId",), 1
    )
    processor = TaskProcessor(
        TopicPartition("tx.cardId", 0), stream, reservoir_config=_reservoir_config()
    )
    processor.add_metric(
        MetricDef(
            0,
            "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
            "OVER sliding 5 minutes",
            "tx",
            "tx.cardId",
            False,
        )
    )
    return processor


def bench_task_ingest_per_event(events: list[Event], batch_size: int) -> dict[str, float]:
    processor = _task_processor()
    offsets = iter(range(len(events)))

    def run_slice(chunk: Sequence[Event]) -> None:
        process = processor.process
        for event in chunk:
            process(next(offsets), event)

    return _measure_slices(_slices(events, batch_size), run_slice)


def bench_task_ingest_batch(events: list[Event], batch_size: int) -> dict[str, float]:
    processor = _task_processor()
    offsets = iter(range(len(events)))

    def run_slice(chunk: Sequence[Event]) -> None:
        processor.process_batch([(next(offsets), event) for event in chunk])

    return _measure_slices(_slices(events, batch_size), run_slice)


# -- frontend fan-out ---------------------------------------------------------


def _frontend_cluster() -> RailgunCluster:
    cluster = RailgunCluster(nodes=1, processor_units=1)
    cluster.create_stream(
        "tx", ["cardId"], partitions=2,
        schema={"cardId": "string", "amount": "float"},
    )
    cluster.run_until_quiet(max_rounds=50)
    return cluster


def bench_frontend_send_per_event(events: list[Event], batch_size: int) -> dict[str, float]:
    frontend = _frontend_cluster().nodes["node-0"].frontend

    def run_slice(chunk: Sequence[Event]) -> None:
        send = frontend.send
        for event in chunk:
            send("tx", event)

    return _measure_slices(_slices(events, batch_size), run_slice)


def bench_frontend_send_batch(events: list[Event], batch_size: int) -> dict[str, float]:
    frontend = _frontend_cluster().nodes["node-0"].frontend

    def run_slice(chunk: Sequence[Event]) -> None:
        frontend.send_batch("tx", chunk)

    return _measure_slices(_slices(events, batch_size), run_slice)


# -- end-to-end engine ingest (single-process vs process-parallel) ------------

#: mirrored stream/metric used by every engine e2e bench
_ENGINE_STREAM = dict(
    partitions=4, schema={"cardId": "string", "amount": "float"}
)
_ENGINE_METRIC = (
    "SELECT sum(amount), count(*) FROM tx GROUP BY cardId "
    "OVER sliding 5 minutes"
)


def bench_engine_ingest_single_process(
    events: list[Event], batch_size: int
) -> dict[str, float]:
    """Batched client→reply ingest through the cooperative cluster."""
    cluster = RailgunCluster(nodes=1, processor_units=2)
    cluster.create_stream("tx", ["cardId"], **_ENGINE_STREAM)
    cluster.create_metric(_ENGINE_METRIC)
    cluster.run_until_quiet(max_rounds=50)

    def run_slice(chunk: Sequence[Event]) -> None:
        cluster.send_batch("tx", chunk, max_rounds=200_000)

    return _measure_slices(_slices(events, batch_size), run_slice)


def _stage_histograms(cluster) -> dict[str, dict[str, float]]:
    """Per-stage histogram summaries from the cluster's merged telemetry
    snapshot, keyed by metric name; empty when telemetry is disabled."""
    stages: dict[str, dict[str, float]] = {}
    for name, hist in cluster.telemetry().get("histograms", {}).items():
        stages[name] = {
            key: hist[key]
            for key in ("count", "sum_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
            if key in hist
        }
    return stages


def _bench_engine_ingest_process(
    events: list[Event], batch_size: int, workers: int,
    transport: str = "socket",
) -> dict[str, float]:
    # Cadence off: these benches gate pure ingest scaling against the
    # PR-2 floors; periodic checkpoint cost is the recovery family's
    # axis, not this one's.
    with ParallelCluster(
        workers=workers, checkpoint_every=None, transport=transport
    ) as cluster:
        cluster.create_stream("tx", ["cardId"], **_ENGINE_STREAM)
        cluster.create_metric(_ENGINE_METRIC)

        def run_slice(chunk: Sequence[Event]) -> None:
            cluster.send_batch("tx", chunk)

        result = _measure_slices(_slices(events, batch_size), run_slice)
        result["stages"] = _stage_histograms(cluster)
        return result


def bench_engine_ingest_process_1w(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_engine_ingest_process(events, batch_size, workers=1)


def bench_engine_ingest_process_4w(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_engine_ingest_process(events, batch_size, workers=4)


def bench_engine_ingest_process_shm_1w(events: list[Event], batch_size: int) -> dict[str, float]:
    """``engine_ingest_process_1w`` over shared-memory rings."""
    return _bench_engine_ingest_process(events, batch_size, workers=1, transport="shm")


def bench_engine_ingest_process_shm_4w(events: list[Event], batch_size: int) -> dict[str, float]:
    """``engine_ingest_process_4w`` over shared-memory rings.

    The tentpole comparison of the shm data plane: same topology, same
    events, the pipe-serde hot path swapped for columnar frames in
    SPSC rings (pipe reduced to doorbells). The CI floor requires
    shm_4w >= 3x the socket 4w on >=4-core hosts.
    """
    return _bench_engine_ingest_process(events, batch_size, workers=4, transport="shm")


def bench_engine_ingest_process_shm_2f(events: list[Event], batch_size: int) -> dict[str, float]:
    """``engine_ingest_process_2f`` over shared-memory rings."""
    return _bench_engine_ingest_frontends(events, batch_size, frontends=2, transport="shm")


def _bench_engine_ingest_frontends(
    events: list[Event], batch_size: int, frontends: int,
    transport: str = "socket",
) -> dict[str, float]:
    """Batched ingest through the sharded-frontend topology.

    Workers are held at 2 across the family so the only variable is the
    frontend count: the 1f run measures the router architecture with a
    single frontend process (the coordinator ceiling relocated into one
    child), and the 2f/4f runs measure how far sharding the coordinator
    raises it. The CI floor requires 2f >= 1.4x 1f on >=4-core hosts.
    """
    with ClusterRouter(
        workers=2, frontends=frontends, checkpoint_every=None,
        transport=transport,
    ) as cluster:
        cluster.create_stream("tx", ["cardId"], **_ENGINE_STREAM)
        cluster.create_metric(_ENGINE_METRIC)

        def run_slice(chunk: Sequence[Event]) -> None:
            cluster.send_batch("tx", chunk)

        result = _measure_slices(_slices(events, batch_size), run_slice)
        result["stages"] = _stage_histograms(cluster)
        return result


def bench_engine_ingest_process_1f(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_engine_ingest_frontends(events, batch_size, frontends=1)


def bench_engine_ingest_process_2f(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_engine_ingest_frontends(events, batch_size, frontends=2)


def bench_engine_ingest_process_4f(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_engine_ingest_frontends(events, batch_size, frontends=4)


# -- TCP front door (asyncio server, N concurrent connections) ----------------


#: Events per closed-loop round trip in the server benches. Small on
#: purpose: the family's axis is round-trip *latency* vs connection
#: *pipelining*, so the per-trip batch must not amortize the trip away.
_SERVER_CHUNK = 16

#: Event budget for the serialized 1c run (~1k events/s when
#: latency-bound; throughput stabilizes within a few hundred trips).
_SERVER_1C_EVENTS = 4_000


def _bench_server_ingest_async(
    events: list[Event], batch_size: int, clients: int
) -> dict[str, float]:
    """Closed-loop ingest through the asyncio front door over TCP.

    A served sharded cluster (2 workers, 2 frontends) takes
    ``clients`` concurrent connections, the event stream striped across
    them; every client sends a ``_SERVER_CHUNK``-event batch and awaits
    the replies before sending the next (closed loop — the harness
    ``batch_size`` is deliberately not used here, the fixed small trip
    is the bench's axis). One connection measures the per-round-trip
    ceiling (frame + admission + dispatch + fan-in, serialized); many
    connections measure how far the router's pipelined service loop
    overlaps those trips. The CI floor requires 64c >= 2x 1c on
    >=4-core hosts.
    """
    import asyncio

    from repro.server.admission import AdmissionController, TenantQuota
    from repro.server.client import AsyncRailgunClient
    from repro.server.server import serve_cluster

    del batch_size
    if clients == 1:
        events = events[:_SERVER_1C_EVENTS]

    # Admission sized out of the way: this bench measures the data
    # path, not the shed path (test_server_frontdoor.py covers that).
    admission = AdmissionController(
        default_quota=TenantQuota(
            events_per_sec=1e9, burst=1 << 20, max_in_flight=1 << 20,
        ),
        max_in_flight=1 << 20,
        max_queue_depth=1 << 20,
    )
    with ClusterRouter(workers=2, frontends=2, checkpoint_every=None) as cluster:
        cluster.create_stream("tx", ["cardId"], **_ENGINE_STREAM)
        cluster.create_metric(_ENGINE_METRIC)
        handle = serve_cluster(cluster, admission=admission)
        host, port = handle.address
        try:
            shares = [events[i::clients] for i in range(clients)]

            async def one_client(share: list[Event]) -> list[float]:
                samples: list[float] = []
                async with AsyncRailgunClient(host, port) as client:
                    for chunk in _slices(share, _SERVER_CHUNK):
                        started = time.perf_counter()
                        await client.send_batch("tx", chunk)
                        elapsed = time.perf_counter() - started
                        samples.append(elapsed * 1e6 / max(1, len(chunk)))
                return samples

            async def run_all() -> list[list[float]]:
                return await asyncio.gather(
                    *(one_client(share) for share in shares)
                )

            started = time.perf_counter()
            per_client = asyncio.run(run_all())
            total = time.perf_counter() - started
        finally:
            handle.stop()
    samples = [sample for client in per_client for sample in client]
    p50, p99 = _percentiles_us(samples)
    return {
        "events_per_sec": len(events) / total if total > 0 else 0.0,
        "p50_us": p50,
        "p99_us": p99,
    }


def bench_server_ingest_async_1c(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_server_ingest_async(events, batch_size, clients=1)


def bench_server_ingest_async_64c(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_server_ingest_async(events, batch_size, clients=64)


# -- durable segmented log (fsync policies + recovery reopen) -----------------


def _bench_log_append(events: list[Event], batch_size: int, fsync: str) -> dict[str, float]:
    """Append throughput of one durable partition log under a policy.

    Events flow through the same codec + CRC framing the durable bus
    uses, so this measures the real per-record durability tax:
    ``never`` = encode + buffered write, ``batch`` = plus one fsync per
    flush threshold, ``always`` = one fsync per record (the paper's
    ack=all analogue; orders of magnitude slower on real disks, so it
    gets a reduced event budget).
    """
    import shutil
    import tempfile

    from repro.messaging.durable import DurableLog
    from repro.messaging.segments import SegmentConfig, fsync_policy

    if fsync == "always":
        events = events[: min(len(events), 2000)]
    root = tempfile.mkdtemp(prefix="railgun-bench-log-")
    try:
        log = DurableLog(
            TopicPartition("bench", 0),
            root,
            config=SegmentConfig(fsync=fsync_policy(fsync)),
        )

        def run_slice(chunk: Sequence[Event]) -> None:
            append = log.append
            for event in chunk:
                append(event.event_id, event, event.timestamp)

        result = _measure_slices(_slices(events, batch_size), run_slice)
        log.close()
        return result
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_log_append_fsync_never(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_log_append(events, batch_size, "never")


def bench_log_append_fsync_batch(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_log_append(events, batch_size, "batch")


def bench_log_append_fsync_always(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_log_append(events, batch_size, "always")


def bench_durable_recovery_reopen(events: list[Event], batch_size: int) -> dict[str, float]:
    """Time reopening a durable log: the segment scan + decode that a
    crashed frontend (or reopened coordinator) pays before serving.

    ``events_per_sec`` is records recovered per second of reopen time;
    ``recovery_ms`` is the wall time of one reopen.
    """
    import shutil
    import tempfile
    import time as _time

    from repro.messaging.durable import DurableLog

    root = tempfile.mkdtemp(prefix="railgun-bench-reopen-")
    try:
        tp = TopicPartition("bench", 0)
        log = DurableLog(tp, root)
        for event in events:
            log.append(event.event_id, event, event.timestamp)
        log.close()
        samples: list[float] = []
        for _ in range(3):
            started = _time.perf_counter()
            reopened = DurableLog(tp, root)
            samples.append(_time.perf_counter() - started)
            assert reopened.end_offset == len(events)
            reopened.close()
        best = min(samples)
        per_event_us = best * 1e6 / max(1, len(events))
        return {
            "events_per_sec": len(events) / best if best > 0 else 0.0,
            "p50_us": per_event_us,
            "p99_us": per_event_us,
            "recovery_ms": best * 1e3,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_engine_ingest_process_durable(
    events: list[Event], batch_size: int
) -> dict[str, float]:
    """End-to-end process-mode ingest over a durable (batch-fsync) bus.

    The comparison partner is ``engine_ingest_process_1w`` (same
    topology, in-memory bus); the baseline's ``_speedup_floors`` entry
    requires the durable variant to stay within 1.5x of it.
    """
    import shutil
    import tempfile

    root = tempfile.mkdtemp(prefix="railgun-bench-durable-")
    try:
        with ParallelCluster(
            workers=1, checkpoint_every=None, durable_dir=root
        ) as cluster:
            cluster.create_stream("tx", ["cardId"], **_ENGINE_STREAM)
            cluster.create_metric(_ENGINE_METRIC)

            def run_slice(chunk: Sequence[Event]) -> None:
                cluster.send_batch("tx", chunk)

            result = _measure_slices(_slices(events, batch_size), run_slice)
            result["stages"] = _stage_histograms(cluster)
            return result
    finally:
        shutil.rmtree(root, ignore_errors=True)


# -- crash recovery (from-zero vs from-checkpoint) ----------------------------

#: events ingested before the crash in the recovery benches; the
#: checkpointed variant snapshots after 7/8 of them, so it replays 1/8
#: of the history while the from-zero variant replays all of it.
_RECOVERY_EVENTS = 6_000


def _bench_recovery(events: list[Event], checkpoint: bool) -> dict[str, float]:
    """Kill a worker and time restart + replay until the cluster is quiet.

    Reports the harness's standard throughput shape — ``events_per_sec``
    is history size over time-to-recover, so the from-checkpoint /
    from-zero ratio is exactly the recovery speedup — plus two extra
    keys CI tracks: ``recovery_ms`` (wall time) and ``events_replayed``
    (records reprocessed during recovery; bounded replay means strictly
    fewer than from-zero).
    """
    events = events[:_RECOVERY_EVENTS]
    split = (len(events) * 7) // 8
    with ParallelCluster(workers=2, checkpoint_every=None) as cluster:
        cluster.create_stream("tx", ["cardId"], **_ENGINE_STREAM)
        cluster.create_metric(_ENGINE_METRIC)
        cluster.send_batch("tx", events[:split])
        if checkpoint:
            cluster.checkpoint_now()
        cluster.send_batch("tx", events[split:])
        processed_before = cluster.total_messages_processed()
        victim = cluster.worker_ids()[0]
        started = time.perf_counter()
        cluster.kill_worker(victim)
        deadline = started + 120.0
        while not cluster.supervisor.restarts:
            if time.perf_counter() > deadline:
                raise RuntimeError(
                    "recovery bench: worker restart not detected within 120s"
                )
            cluster.pump()
        cluster.run_until_quiet()
        recovery_s = time.perf_counter() - started
        replayed = cluster.total_messages_processed() - processed_before
    per_event_us = recovery_s * 1e6 / max(1, replayed)
    return {
        "events_per_sec": len(events) / recovery_s,
        "p50_us": per_event_us,
        "p99_us": per_event_us,
        "recovery_ms": recovery_s * 1e3,
        "events_replayed": float(replayed),
    }


def bench_recovery_from_zero(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_recovery(events, checkpoint=False)


def bench_recovery_from_checkpoint(events: list[Event], batch_size: int) -> dict[str, float]:
    return _bench_recovery(events, checkpoint=True)


BENCHES: dict[str, Callable[[list[Event], int], dict[str, float]]] = {
    "reservoir_append_per_event": bench_reservoir_append_per_event,
    "reservoir_append_batch": bench_reservoir_append_batch,
    "reservoir_append_ties_per_event": bench_reservoir_append_ties_per_event,
    "reservoir_append_ties_batch": bench_reservoir_append_ties_batch,
    "aggregate_update_per_event": bench_aggregate_update_per_event,
    "aggregate_update_batch": bench_aggregate_update_batch,
    "task_ingest_per_event": bench_task_ingest_per_event,
    "task_ingest_batch": bench_task_ingest_batch,
    "frontend_send_per_event": bench_frontend_send_per_event,
    "frontend_send_batch": bench_frontend_send_batch,
    "engine_ingest_single_process": bench_engine_ingest_single_process,
    "engine_ingest_process_1w": bench_engine_ingest_process_1w,
    "engine_ingest_process_4w": bench_engine_ingest_process_4w,
    "engine_ingest_process_shm_1w": bench_engine_ingest_process_shm_1w,
    "engine_ingest_process_shm_4w": bench_engine_ingest_process_shm_4w,
    "engine_ingest_process_shm_2f": bench_engine_ingest_process_shm_2f,
    "engine_ingest_process_1f": bench_engine_ingest_process_1f,
    "engine_ingest_process_2f": bench_engine_ingest_process_2f,
    "engine_ingest_process_4f": bench_engine_ingest_process_4f,
    "engine_ingest_process_durable": bench_engine_ingest_process_durable,
    "server_ingest_async_1c": bench_server_ingest_async_1c,
    "server_ingest_async_64c": bench_server_ingest_async_64c,
    "log_append_fsync_never": bench_log_append_fsync_never,
    "log_append_fsync_batch": bench_log_append_fsync_batch,
    "log_append_fsync_always": bench_log_append_fsync_always,
    "durable_recovery_reopen": bench_durable_recovery_reopen,
    "recovery_from_zero": bench_recovery_from_zero,
    "recovery_from_checkpoint": bench_recovery_from_checkpoint,
}

#: e2e + disk-touching benches: heavier per event (whole cluster, or an
#: fsync, per run), so they get a capped event budget and skip the
#: generic warmup pass.
ENGINE_BENCHES = frozenset(
    name
    for name in BENCHES
    if name.startswith(
        ("engine_ingest", "server_ingest", "recovery_", "log_append", "durable_")
    )
)


def run_benches(
    event_count: int = 100_000,
    batch_size: int = 512,
    warmup: bool = True,
    engine_event_count: int = 20_000,
    select: str | None = None,
) -> dict[str, dict[str, float]]:
    """Run every (or the selected subset of) bench; returns the report."""
    events = _events(event_count)
    engine_events = events[:engine_event_count]
    results: dict[str, dict[str, float]] = {}
    for name, bench in BENCHES.items():
        if select is not None and select not in name:
            continue
        if name in ENGINE_BENCHES:
            results[name] = bench(engine_events, batch_size)
            continue
        if warmup:
            bench(_events(min(event_count, 2 * batch_size)), batch_size)
        results[name] = bench(events, batch_size)
    return results


def check_baseline(
    results: dict[str, dict[str, float]],
    baseline: dict[str, dict[str, float]],
    tolerance: float,
    require_all: bool = True,
) -> list[str]:
    """Regression messages for benches slower than baseline - tolerance."""
    failures = []
    for name, floor in baseline.items():
        if name.startswith("_"):
            continue  # annotation keys like "_comment", "_speedup_floors"
        current = results.get(name)
        if current is None:
            if require_all:
                failures.append(f"{name}: present in baseline but not measured")
            continue
        allowed = floor["events_per_sec"] * (1.0 - tolerance)
        if current["events_per_sec"] < allowed:
            failures.append(
                f"{name}: {current['events_per_sec']:,.0f} events/s is below "
                f"{allowed:,.0f} (baseline {floor['events_per_sec']:,.0f} "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def check_speedup_floors(
    results: dict[str, dict[str, float]],
    floors: Sequence[dict],
    cpu_count: int | None = None,
) -> tuple[list[str], list[str]]:
    """Enforce baseline ``_speedup_floors``; returns (failures, skips).

    Each floor requires ``results[bench] >= min_ratio * results[over]``.
    A floor with ``min_cpus`` only asserts when the host has that many
    cores — a multi-process engine cannot out-run a single process on a
    single core, where the workers merely time-slice it. Skipped floors
    are reported, never silently dropped.
    """
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    failures: list[str] = []
    skips: list[str] = []
    for floor in floors:
        bench, over = floor["bench"], floor["over"]
        min_ratio = float(floor["min_ratio"])
        min_cpus = int(floor.get("min_cpus", 1))
        if bench not in results or over not in results:
            skips.append(f"{bench}/{over}: not measured in this run")
            continue
        ratio = results[bench]["events_per_sec"] / results[over]["events_per_sec"]
        if cpu_count < min_cpus:
            skips.append(
                f"{bench}/{over}: measured {ratio:.2f}x but host has "
                f"{cpu_count} cpu(s) < required {min_cpus}; floor of "
                f"{min_ratio:.2f}x only asserts on parallel hardware"
            )
            continue
        if ratio < min_ratio:
            failures.append(
                f"{bench} is only {ratio:.2f}x {over} "
                f"(required {min_ratio:.2f}x at >= {min_cpus} cpus)"
            )
    return failures, skips


def check_recovery_floors(
    results: dict[str, dict[str, float]],
    floors: Sequence[dict],
) -> tuple[list[str], list[str]]:
    """Enforce baseline ``_recovery_floors``; returns (failures, skips).

    Each floor compares a checkpointed-recovery bench against its
    from-zero counterpart: it must replay **strictly fewer** events
    (that's the whole point of checkpoint shipping — the count is
    deterministic, so no tolerance) and recover at least
    ``min_time_ratio`` times faster on wall time.
    """
    failures: list[str] = []
    skips: list[str] = []
    for floor in floors:
        bench, over = floor["bench"], floor["over"]
        min_time_ratio = float(floor.get("min_time_ratio", 1.0))
        if bench not in results or over not in results:
            skips.append(f"{bench}/{over}: not measured in this run")
            continue
        if (
            "events_replayed" not in results[bench]
            or "events_replayed" not in results[over]
        ):
            failures.append(
                f"{bench}/{over}: _recovery_floors entry names a bench "
                f"without recovery metrics (recovery_ms/events_replayed)"
            )
            continue
        replayed = results[bench]["events_replayed"]
        replayed_over = results[over]["events_replayed"]
        if replayed >= replayed_over:
            failures.append(
                f"{bench} replayed {replayed:,.0f} events, not strictly fewer "
                f"than {over}'s {replayed_over:,.0f}"
            )
        time_ratio = results[over]["recovery_ms"] / results[bench]["recovery_ms"]
        if time_ratio < min_time_ratio:
            failures.append(
                f"{bench} recovered only {time_ratio:.2f}x faster than {over} "
                f"({results[bench]['recovery_ms']:,.0f} ms vs "
                f"{results[over]['recovery_ms']:,.0f} ms; required "
                f"{min_time_ratio:.2f}x)"
            )
    return failures, skips


#: The four stage histograms that decompose ``engine_batch_ms``.
ENGINE_STAGE_PARTS = (
    "engine_ingest_ms",
    "engine_dispatch_ms",
    "engine_collect_ms",
    "engine_reply_ms",
)


def check_telemetry_decomposition(
    results: dict[str, dict[str, float]],
    bench: str = "engine_ingest_process_1w",
    tolerance: float = 0.10,
) -> list[str]:
    """Require the per-stage telemetry histograms to decompose the
    end-to-end batch time: sum(stage sums) within ``tolerance`` of
    ``engine_batch_ms``'s sum on the 1w topology. Skips silently when
    the bench didn't run or telemetry was disabled."""
    current = results.get(bench)
    if not current:
        return []
    stages = current.get("stages") or {}
    total = stages.get("engine_batch_ms", {}).get("sum_ms", 0.0)
    if total <= 0.0:
        return []
    part_sum = sum(
        stages.get(part, {}).get("sum_ms", 0.0) for part in ENGINE_STAGE_PARTS
    )
    if abs(part_sum - total) > tolerance * total:
        return [
            f"{bench}: stage histograms sum to {part_sum:,.1f}ms but "
            f"engine_batch_ms measured {total:,.1f}ms "
            f"(off by more than {tolerance:.0%})"
        ]
    return []


def check_telemetry_overhead(
    event_count: int = 40_000,
    batch_size: int = 512,
    runs: int = 4,
    max_overhead: float = 0.05,
    cpu_count: int | None = None,
) -> tuple[list[str], float | None]:
    """Measure telemetry's cost on ``engine_ingest_process_4w``.

    Runs ``runs`` interleaved off/on pairs with ``$RAILGUN_TELEMETRY=0``
    and ``=1`` (registries resolve the knob at construction, and worker
    processes inherit the env), comparing best-of per side — best-of
    sheds scheduler noise, and interleaving keeps slow drift on a busy
    host from landing entirely on one side. Fails when the enabled side
    is more than ``max_overhead`` slower. Returns
    ``(failures, measured_overhead)``.

    Like the speedup floors, the gate only asserts on parallel
    hardware: on a 1–3 cpu host six processes time-slice the cores and
    run-to-run variance dwarfs the budget, so the check is skipped
    (``overhead`` comes back ``None``) rather than reporting noise.
    """
    from repro.telemetry import TELEMETRY_ENV

    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    if cpu_count < 4:
        return [], None

    events = _events(event_count)

    def measure(value: str) -> float:
        saved = os.environ.get(TELEMETRY_ENV)
        os.environ[TELEMETRY_ENV] = value
        try:
            return bench_engine_ingest_process_4w(
                events, batch_size
            )["events_per_sec"]
        finally:
            if saved is None:
                os.environ.pop(TELEMETRY_ENV, None)
            else:
                os.environ[TELEMETRY_ENV] = saved

    disabled = enabled = 0.0
    for _ in range(runs):
        disabled = max(disabled, measure("0"))
        enabled = max(enabled, measure("1"))
    overhead = (disabled - enabled) / disabled if disabled > 0 else 0.0
    if overhead > max_overhead:
        return (
            [
                f"telemetry overhead on engine_ingest_process_4w is "
                f"{overhead:.1%} ({enabled:,.0f} vs {disabled:,.0f} events/s); "
                f"budget is {max_overhead:.0%}"
            ],
            overhead,
        )
    return [], overhead


def check_speedup(
    results: dict[str, dict[str, float]], min_speedup: float
) -> list[str]:
    """Failure messages when batched append stops beating per-event."""
    batched, per_event = SPEEDUP_PAIR
    ratio = (
        results[batched]["events_per_sec"] / results[per_event]["events_per_sec"]
    )
    if ratio < min_speedup:
        return [
            f"{batched} is only {ratio:.2f}x {per_event} "
            f"(required {min_speedup:.2f}x)"
        ]
    return []


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_micro.json", help="output JSON path")
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--batch-size", type=int, default=512)
    parser.add_argument(
        "--engine-events", type=int, default=20_000,
        help="event budget for the end-to-end engine ingest benches",
    )
    parser.add_argument("--no-warmup", action="store_true")
    parser.add_argument(
        "--select", default=None,
        help="only run benches whose name contains this substring",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline JSON to gate events_per_sec against",
    )
    parser.add_argument("--tolerance", type=float, default=0.2)
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="required reservoir_append_batch / per_event throughput ratio",
    )
    parser.add_argument(
        "--check-telemetry-overhead", action="store_true",
        help="paired engine_ingest_process_4w runs with RAILGUN_TELEMETRY "
             "0 vs 1; fails when telemetry costs more than the budget",
    )
    parser.add_argument(
        "--max-telemetry-overhead", type=float, default=0.05,
        help="telemetry overhead budget as a fraction (default 0.05)",
    )
    args = parser.parse_args(argv)

    results = run_benches(
        event_count=args.events,
        batch_size=args.batch_size,
        warmup=not args.no_warmup,
        engine_event_count=args.engine_events,
        select=args.select,
    )
    if not results:
        print(
            f"no benches matched --select {args.select!r}; known benches: "
            + ", ".join(sorted(BENCHES)),
            file=sys.stderr,
        )
        return 1
    cpu_count = os.cpu_count() or 1
    report: dict[str, object] = dict(results)
    # platform.node() can legitimately return "" (some containers);
    # fall back so a floor-gating skip in CI logs is always
    # attributable to a concrete host + core count.
    hostname = platform.node() or f"unknown-host-{cpu_count}cpu"
    report["_host"] = {"cpu_count": cpu_count, "hostname": hostname}
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    width = max(len(name) for name in results)
    for name, stats in sorted(results.items()):
        print(
            f"{name.ljust(width)}  {stats['events_per_sec']:>12,.0f} events/s"
            f"  p50 {stats['p50_us']:>8.2f}us  p99 {stats['p99_us']:>8.2f}us"
        )
    batched, per_event = SPEEDUP_PAIR
    if batched in results and per_event in results:
        ratio = (
            results[batched]["events_per_sec"] / results[per_event]["events_per_sec"]
        )
        print(f"{batched} / {per_event} = {ratio:.2f}x")

    failures: list[str] = []
    if args.baseline:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures.extend(
            check_baseline(
                results, baseline, args.tolerance,
                require_all=args.select is None,
            )
        )
        floor_failures, floor_skips = check_speedup_floors(
            results, baseline.get("_speedup_floors", []), cpu_count
        )
        failures.extend(floor_failures)
        for skip in floor_skips:
            print(f"SPEEDUP FLOOR SKIPPED: {skip}", file=sys.stderr)
        recovery_failures, recovery_skips = check_recovery_floors(
            results, baseline.get("_recovery_floors", [])
        )
        failures.extend(recovery_failures)
        for skip in recovery_skips:
            print(f"RECOVERY FLOOR SKIPPED: {skip}", file=sys.stderr)
    if args.min_speedup is not None and batched in results and per_event in results:
        failures.extend(check_speedup(results, args.min_speedup))
    failures.extend(check_telemetry_decomposition(results))
    if args.check_telemetry_overhead:
        overhead_failures, overhead = check_telemetry_overhead(
            event_count=min(2 * args.engine_events, args.events),
            batch_size=args.batch_size,
            max_overhead=args.max_telemetry_overhead,
        )
        failures.extend(overhead_failures)
        if overhead is None:
            print(
                "telemetry overhead: skipped — "
                f"{os.cpu_count() or 1} cpu(s) < 4; the off/on comparison "
                "only asserts on parallel hardware"
            )
        else:
            print(
                f"telemetry overhead (engine_ingest_process_4w): {overhead:+.1%}"
            )
    for failure in failures:
        print(f"PERF REGRESSION: {failure}", file=sys.stderr)
    print(f"wrote {args.out}")
    return 2 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
