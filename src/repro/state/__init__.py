"""Metric state store (paper §4.1.3).

Persists aggregation states per (metric, aggregation, entity) key in the
embedded LSM store, mirroring how Railgun keeps "the latest aggregations
results and auxiliary data" in RocksDB. ``countDistinct`` counters live
in a dedicated column family, and checkpoints delegate to the LSM's
cheap flush-and-snapshot path.
"""

from repro.state.store import LsmAuxStore, MetricStateStore

__all__ = ["MetricStateStore", "LsmAuxStore"]
