"""Aggregation-state persistence on top of :class:`~repro.lsm.LsmDb`.

Key layout (column family ``aggstate``)::

    varint(metric_id) | varint(agg_index) | group-key bytes  ->  agg state

``countDistinct`` per-value counters (column family ``distinct``)::

    varint(metric_id) | varint(agg_index) | group-key | value  ->  varint count

"Each key represents a particular metric entity in a plan, and the
amount of keys accessed per event match the number of DAG's leaves"
(§4.1.3) — the store counts accesses so tests and the latency model can
assert exactly that.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.aggregates.base import Aggregator, AuxStore
from repro.aggregates.registry import create_aggregator
from repro.common import serde
from repro.events.event import Event
from repro.lsm.db import Checkpoint, LsmConfig, LsmDb

_CF_STATE = "aggstate"
_CF_DISTINCT = "distinct"


def encode_group_key(values: Sequence[Any]) -> bytes:
    """Stable byte encoding of a group-by key tuple."""
    buf = bytearray()
    serde.write_varint(buf, len(values))
    for value in values:
        serde.write_value(buf, value)
    return bytes(buf)


def decode_group_key(data: bytes) -> tuple:
    """Inverse of :func:`encode_group_key`."""
    count, offset = serde.read_varint(data, 0)
    values = []
    for _ in range(count):
        value, offset = serde.read_value(data, offset)
        values.append(value)
    return tuple(values)


class LsmAuxStore(AuxStore):
    """Aux counters scoped to one (metric, aggregation, entity) prefix."""

    def __init__(self, db: LsmDb, prefix: bytes) -> None:
        self._db = db
        self._prefix = prefix

    def _key(self, suffix: bytes) -> bytes:
        return self._prefix + suffix

    def increment(self, key: bytes, delta: int) -> int:
        full_key = self._key(key)
        raw = self._db.get(full_key, cf=_CF_DISTINCT)
        current = serde.read_varint(raw, 0)[0] if raw is not None else 0
        value = current + delta
        if value < 0:
            raise ValueError(f"distinct counter went negative for {key!r}")
        if value == 0:
            self._db.delete(full_key, cf=_CF_DISTINCT)
        else:
            buf = bytearray()
            serde.write_varint(buf, value)
            self._db.put(full_key, bytes(buf), cf=_CF_DISTINCT)
        return value

    def get(self, key: bytes) -> int:
        raw = self._db.get(self._key(key), cf=_CF_DISTINCT)
        return serde.read_varint(raw, 0)[0] if raw is not None else 0

    def count_keys(self) -> int:
        return sum(1 for _ in self._db.prefix_scan(self._prefix, cf=_CF_DISTINCT))


class MetricStateStore:
    """Load-modify-store façade over aggregator states."""

    def __init__(self, db: LsmDb | None = None, config: LsmConfig | None = None) -> None:
        self.db = db if db is not None else LsmDb(config=config)
        self.db.create_column_family(_CF_STATE)
        self.db.create_column_family(_CF_DISTINCT)
        self.key_reads = 0
        self.key_writes = 0

    # -- key plumbing ------------------------------------------------------------

    @staticmethod
    def state_key(metric_id: int, agg_index: int, group_key: bytes) -> bytes:
        """The primary state key for one aggregation entity."""
        buf = bytearray()
        serde.write_varint(buf, metric_id)
        serde.write_varint(buf, agg_index)
        buf.extend(group_key)
        return bytes(buf)

    # -- aggregator life-cycle -----------------------------------------------------

    def load(self, metric_id: int, agg_index: int, agg_name: str, group_key: bytes) -> Aggregator:
        """Materialize the aggregator for a key (fresh when absent)."""
        aggregator = create_aggregator(agg_name)
        if aggregator.needs_aux:
            prefix = self.state_key(metric_id, agg_index, group_key)
            aggregator.bind_aux(LsmAuxStore(self.db, prefix))
        raw = self.db.get(self.state_key(metric_id, agg_index, group_key), cf=_CF_STATE)
        self.key_reads += 1
        if raw is not None:
            aggregator.state_from_bytes(raw)
        return aggregator

    def save(self, metric_id: int, agg_index: int, group_key: bytes, aggregator: Aggregator) -> None:
        """Persist aggregator state back."""
        self.db.put(
            self.state_key(metric_id, agg_index, group_key),
            aggregator.state_to_bytes(),
            cf=_CF_STATE,
        )
        self.key_writes += 1

    def apply(
        self,
        metric_id: int,
        agg_index: int,
        agg_name: str,
        group_key: bytes,
        enters: Sequence[tuple[Any, Event]],
        exits: Sequence[tuple[Any, Event]],
    ) -> Any:
        """Load, fold in enters/exits, persist, return the new result."""
        aggregator = self.load(metric_id, agg_index, agg_name, group_key)
        aggregator.update_batch(enters, exits)
        self.save(metric_id, agg_index, group_key, aggregator)
        return aggregator.result()

    def peek(self, metric_id: int, agg_index: int, agg_name: str, group_key: bytes) -> Any:
        """Read the current result without mutating state."""
        return self.load(metric_id, agg_index, agg_name, group_key).result()

    # -- metric-scoped rows (backfill splice, as-of reads) ---------------------------

    @staticmethod
    def metric_prefix(metric_id: int) -> bytes:
        """The key prefix every row of one metric shares (both CFs)."""
        buf = bytearray()
        serde.write_varint(buf, metric_id)
        return bytes(buf)

    def export_metric_rows(
        self, metric_id: int
    ) -> tuple[list[tuple[bytes, bytes]], list[tuple[bytes, bytes]]]:
        """Every live ``(key, value)`` row of one metric: aggregator
        states and countDistinct counters. The rows are the transferable
        form of a backfilled metric's state."""
        prefix = self.metric_prefix(metric_id)
        state_rows = list(self.db.prefix_scan(prefix, cf=_CF_STATE))
        distinct_rows = list(self.db.prefix_scan(prefix, cf=_CF_DISTINCT))
        return state_rows, distinct_rows

    def import_metric_rows(
        self,
        metric_id: int,
        state_rows: Sequence[tuple[bytes, bytes]],
        distinct_rows: Sequence[tuple[bytes, bytes]],
    ) -> None:
        """Replace one metric's rows wholesale with exported rows."""
        prefix = self.metric_prefix(metric_id)
        for cf in (_CF_STATE, _CF_DISTINCT):
            for key, _ in list(self.db.prefix_scan(prefix, cf=cf)):
                self.db.delete(key, cf=cf)
        for key, value in state_rows:
            self.db.put(key, value, cf=_CF_STATE)
        for key, value in distinct_rows:
            self.db.put(key, value, cf=_CF_DISTINCT)

    def metric_values(
        self, metric_id: int, agg_specs: Sequence[tuple[int, str, str]]
    ) -> dict[tuple, dict[str, Any]]:
        """Current results of one metric for every group key it holds.

        ``agg_specs`` is ``(agg_index, agg_name, display_name)`` per
        aggregation, in reply-column order.
        """
        prefix = self.metric_prefix(metric_id)
        keys: set[bytes] = set()
        for key, _ in self.db.prefix_scan(prefix, cf=_CF_STATE):
            _, offset = serde.read_varint(key, 0)  # metric id
            _, offset = serde.read_varint(key, offset)  # agg index
            keys.add(bytes(key[offset:]))
        values: dict[tuple, dict[str, Any]] = {}
        for group_key in sorted(keys):
            row: dict[str, Any] = {}
            for agg_index, agg_name, display_name in agg_specs:
                row[display_name] = self.peek(
                    metric_id, agg_index, agg_name, group_key
                )
            values[decode_group_key(group_key)] = row
        return values

    # -- checkpoints -----------------------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the underlying LSM (flush + manifest)."""
        return self.db.checkpoint()

    def export_checkpoint(self, checkpoint: Checkpoint, exclude: set[str] | None = None) -> dict[str, bytes]:
        """File payloads for recovery transfer (delta-aware)."""
        return self.db.export_checkpoint(checkpoint, exclude=exclude)

    @classmethod
    def restore(
        cls,
        checkpoint: Checkpoint,
        files: dict[str, bytes],
        config: LsmConfig | None = None,
    ) -> "MetricStateStore":
        """Materialize a store from a checkpoint + transferred files."""
        db = LsmDb.import_checkpoint(checkpoint, files, config=config)
        return cls(db=db)
