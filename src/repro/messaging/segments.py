"""Append-only segmented log files — the disk half of the durable bus.

Kafka's durability story (paper §3.3) is offset-addressed partition logs
on disk: consumers rewind to a committed offset and replay exactly the
uncommitted tail, and retention deletes whole segments from the front.
:class:`SegmentedLog` implements that file layout for one partition:

- **Segments**: fixed-size append-only files named by their base offset
  (``seg-<base>.log``). The highest-base segment is *active* (the only
  one written); lower segments are complete and immutable.
- **Records**: CRC-framed via :mod:`repro.common.serde`, so torn tail
  writes are detected::

      u32 crc | varint length | body          (crc over body)
      body := varint rel_offset | payload     (payload = caller bytes)

  ``rel_offset`` is the record's offset minus the segment base — it is
  redundant with the record's ordinal and is verified on read, turning
  a misplaced frame into a detected corruption instead of silent offset
  drift.
- **Sparse index**: every ``index_interval``-th record appends
  ``varint rel_offset | varint file_pos`` to ``seg-<base>.idx``. The
  index is advisory — a reader missing (or distrusting) it scans from
  the segment start; a torn index tail is simply ignored.
- **Buffered appends + fsync policy**: appends land in an in-process
  buffer and reach the file according to :class:`FsyncPolicy` — every
  record (``ALWAYS``), whenever the buffer exceeds ``flush_bytes`` or
  an explicit :meth:`SegmentedLog.flush` (``BATCH``), or with no fsync
  at all (``NEVER``: the OS decides, nothing survives power loss by
  contract).
- **Torn-tail truncation on open**: recovery scans the active segment
  frame by frame and truncates the file at the first incomplete or
  CRC-failing frame — everything before it is durable, everything after
  is the torn tail of an interrupted write.
- **Truncation**: :meth:`SegmentedLog.truncate_below` deletes whole
  segments that lie entirely below an offset (checkpoint-aware
  retention); :meth:`SegmentedLog.truncate_to` drops the record tail at
  or above an offset (the consistent-cut rollback a recovering frontend
  applies before replaying its write-ahead journal).
"""

from __future__ import annotations

import enum
import os
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterator

from repro.common import serde
from repro.common.errors import MessagingError

_SEG_SUFFIX = ".log"
_IDX_SUFFIX = ".idx"
_SEG_PREFIX = "seg-"


class FsyncPolicy(enum.Enum):
    """When appended records are fsynced to the segment file."""

    NEVER = "never"
    BATCH = "batch"
    ALWAYS = "always"


def fsync_policy(name: "FsyncPolicy | str") -> FsyncPolicy:
    """Coerce a policy name (``"never"|"batch"|"always"``) to the enum."""
    if isinstance(name, FsyncPolicy):
        return name
    try:
        return FsyncPolicy(name)
    except ValueError:
        raise MessagingError(
            f"unknown fsync policy {name!r}; use never, batch or always"
        ) from None


@dataclass
class SegmentConfig:
    """Tuning knobs of one segmented log."""

    segment_bytes: int = 1 << 20  # roll the active segment at this size
    flush_bytes: int = 1 << 16  # BATCH/NEVER: write out the buffer at this size
    index_interval: int = 64  # records between sparse index entries
    fsync: FsyncPolicy = FsyncPolicy.BATCH


def _segment_path(root: str, base: int) -> str:
    return os.path.join(root, f"{_SEG_PREFIX}{base:020d}{_SEG_SUFFIX}")


def _base_of(name: str) -> int | None:
    if not (name.startswith(_SEG_PREFIX) and name.endswith(_SEG_SUFFIX)):
        return None
    digits = name[len(_SEG_PREFIX):-len(_SEG_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str) -> None:
    """Make file creations/renames/deletions in a directory durable.

    fsync on a file covers its *contents*; the directory entry itself
    needs its own fsync or a rename/create can vanish on power loss.
    Best effort: some filesystems refuse directory fsync, and the
    fallback there is the same torn-state recovery the CRC framing
    already provides.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _frame(rel_offset: int, payload: bytes) -> bytes:
    body = bytearray()
    serde.write_varint(body, rel_offset)
    body.extend(payload)
    record = bytearray()
    serde.write_u32(record, serde.crc32_of(body))
    serde.write_varint(record, len(body))
    record.extend(body)
    return bytes(record)


def _scan_frames(data: bytes) -> Iterator[tuple[int, int, int, bytes]]:
    """Yield ``(file_pos, end_pos, rel_offset, payload)`` for intact frames.

    Stops silently at the first truncated or corrupt frame — the torn
    tail of an interrupted write; everything before it is durable.
    """
    position = 0
    size = len(data)
    while position < size:
        try:
            crc, after_crc = serde.read_u32(data, position)
            length, body_start = serde.read_varint(data, after_crc)
        except Exception:
            return
        end = body_start + length
        if end > size:
            return
        body = data[body_start:end]
        if serde.crc32_of(body) != crc:
            return
        try:
            rel_offset, payload_start = serde.read_varint(body, 0)
        except Exception:
            return
        yield position, end, rel_offset, body[payload_start:]
        position = end


class _Segment:
    """One completed (read-only) segment file."""

    __slots__ = ("base", "end", "path")

    def __init__(self, base: int, end: int, path: str) -> None:
        self.base = base
        self.end = end  # first offset past this segment
        self.path = path


class SegmentedLog:
    """One partition's records on disk, split into offset-named segments."""

    def __init__(self, root: str, config: SegmentConfig | None = None) -> None:
        self.root = root
        self.config = config if config is not None else SegmentConfig()
        os.makedirs(root, exist_ok=True)
        #: completed segments, ascending base offset.
        self._segments: list[_Segment] = []
        self._active_base = 0
        self._active_size = 0  # durable bytes already in the active file
        self._active_count = 0  # records in the active segment (incl. buffered)
        self._buffer = bytearray()
        self._index_buffer = bytearray()
        self._records_since_index = 0
        self.appends = 0
        self.fsyncs = 0
        self._recover()

    # -- life-cycle ------------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild segment metadata; truncate the active segment's torn tail."""
        bases = sorted(
            base
            for name in os.listdir(self.root)
            if (base := _base_of(name)) is not None
        )
        if not bases:
            self._create_active(0)
            return
        # All but the highest-base segment were completed by a roll (the
        # roll writes + fsyncs the old file before creating the new one);
        # their record counts define the chain of end offsets. The active
        # segment gets the torn-tail scan + truncate.
        for position, base in enumerate(bases):
            path = _segment_path(self.root, base)
            if position < len(bases) - 1:
                end = bases[position + 1]
                self._segments.append(_Segment(base, end, path))
            else:
                self._active_base = base
                good_end, count = self._scan_active(path)
                self._active_size = good_end
                self._active_count = count

    def _scan_active(self, path: str) -> tuple[int, int]:
        with open(path, "rb") as handle:
            data = handle.read()
        good_end = 0
        count = 0
        expected_rel = 0
        for _pos, end, rel_offset, _payload in _scan_frames(data):
            if rel_offset != expected_rel:
                break  # misplaced frame: treat like a torn tail
            good_end = end
            count += 1
            expected_rel += 1
        if good_end < len(data):
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
            _fsync_file(path)
            # The index may point past the truncated tail; drop it — it
            # is advisory and rebuilt as appends resume.
            idx = path[: -len(_SEG_SUFFIX)] + _IDX_SUFFIX
            if os.path.exists(idx):
                os.remove(idx)
        return good_end, count

    def _create_active(self, base: int) -> None:
        self._active_base = base
        self._active_size = 0
        self._active_count = 0
        self._records_since_index = 0
        path = _segment_path(self.root, base)
        with open(path, "ab"):
            pass
        if self.config.fsync is not FsyncPolicy.NEVER:
            fsync_dir(self.root)

    def _active_path(self) -> str:
        return _segment_path(self.root, self._active_base)

    def _index_path(self) -> str:
        return os.path.join(
            self.root, f"{_SEG_PREFIX}{self._active_base:020d}{_IDX_SUFFIX}"
        )

    def close(self) -> None:
        """Write out buffered records (fsynced unless policy NEVER)."""
        self.flush()

    # -- append path -----------------------------------------------------------

    @property
    def start_offset(self) -> int:
        """Lowest offset still retained (advances with truncation)."""
        if self._segments:
            return self._segments[0].base
        return self._active_base

    @property
    def end_offset(self) -> int:
        """Offset the next append will receive."""
        return self._active_base + self._active_count

    def append(self, payload: bytes) -> int:
        """Frame and buffer one record; returns its assigned offset."""
        rel = self._active_count
        if self._records_since_index == 0:
            entry = bytearray()
            serde.write_varint(entry, rel)
            serde.write_varint(entry, self._active_size + len(self._buffer))
            self._index_buffer.extend(entry)
        self._records_since_index = (
            self._records_since_index + 1
        ) % max(1, self.config.index_interval)
        offset = self._active_base + rel
        self._buffer.extend(_frame(rel, payload))
        self._active_count += 1
        self.appends += 1
        policy = self.config.fsync
        if policy is FsyncPolicy.ALWAYS:
            self.flush()
        elif len(self._buffer) >= self.config.flush_bytes:
            self.flush()
        if self._active_size + len(self._buffer) >= self.config.segment_bytes:
            self._roll()
        return offset

    def flush(self) -> None:
        """Write buffered records out; fsync unless the policy is NEVER."""
        wrote = self._write_out()
        if wrote and self.config.fsync is not FsyncPolicy.NEVER:
            _fsync_file(self._active_path())
            self.fsyncs += 1

    def _write_out(self) -> bool:
        if not self._buffer and not self._index_buffer:
            return False
        if self._buffer:
            with open(self._active_path(), "ab") as handle:
                handle.write(self._buffer)
            self._active_size += len(self._buffer)
            self._buffer.clear()
        if self._index_buffer:
            with open(self._index_path(), "ab") as handle:
                handle.write(self._index_buffer)
            self._index_buffer.clear()
        return True

    def _roll(self) -> None:
        """Seal the active segment and open the next one.

        The old file is written and fsynced (even under BATCH) before
        the new one exists, so every non-active segment on disk is
        complete — recovery only ever scans the highest-base file.
        """
        self._write_out()
        if self.config.fsync is not FsyncPolicy.NEVER:
            _fsync_file(self._active_path())
            self.fsyncs += 1
        self._segments.append(
            _Segment(self._active_base, self.end_offset, self._active_path())
        )
        self._create_active(self.end_offset)

    # -- read path -------------------------------------------------------------

    def records(self, from_offset: int, max_records: int | None = None):
        """Yield ``(offset, payload)`` at ``from_offset`` onwards.

        Reads below :attr:`start_offset` clamp to it (the records were
        retention-truncated away, exactly like a Kafka earliest reset).
        """
        self._write_out()  # make the files authoritative
        from_offset = max(from_offset, self.start_offset)
        remaining = max_records if max_records is not None else -1
        while from_offset < self.end_offset and remaining != 0:
            base, path, seg_end = self._locate(from_offset)
            for offset, payload in self._scan_segment(path, base, from_offset):
                yield offset, payload
                from_offset = offset + 1
                if remaining > 0:
                    remaining -= 1
                    if remaining == 0:
                        return
                if from_offset >= seg_end:
                    break
            else:
                return  # segment exhausted early (shouldn't happen)

    def _locate(self, offset: int) -> tuple[int, str, int]:
        bases = [segment.base for segment in self._segments]
        position = bisect_right(bases, offset) - 1
        if 0 <= position < len(self._segments):
            segment = self._segments[position]
            if offset < segment.end:
                return segment.base, segment.path, segment.end
        return self._active_base, self._active_path(), self.end_offset

    def _scan_segment(self, path: str, base: int, from_offset: int):
        target_rel = from_offset - base
        start_pos = self._index_seek(path, target_rel)
        with open(path, "rb") as handle:
            handle.seek(start_pos)
            data = handle.read()
        for _pos, _end, rel, payload in _scan_frames(data):
            offset = base + rel
            if offset >= self.end_offset:
                return
            if offset >= from_offset:
                yield offset, payload

    def _index_seek(self, path: str, target_rel: int) -> int:
        """Best index position at or before ``target_rel`` (0 if no index)."""
        idx_path = path[: -len(_SEG_SUFFIX)] + _IDX_SUFFIX
        if not os.path.exists(idx_path):
            return 0
        with open(idx_path, "rb") as handle:
            data = handle.read()
        best = 0
        position = 0
        while position < len(data):
            try:
                rel, position2 = serde.read_varint(data, position)
                pos, position2 = serde.read_varint(data, position2)
            except Exception:
                break  # torn index tail: advisory, ignore
            if rel > target_rel:
                break
            best = pos
            position = position2
        return best

    # -- truncation ------------------------------------------------------------

    def truncate_below(self, offset: int) -> int:
        """Delete whole segments entirely below ``offset``; returns the
        new :attr:`start_offset`.

        The active segment is never deleted, so the log always accepts
        appends at :attr:`end_offset`; a record at ``offset`` itself is
        always retained.
        """
        removed = False
        while self._segments and self._segments[0].end <= offset:
            segment = self._segments.pop(0)
            self._remove_segment_files(segment.path)
            removed = True
        if removed and self.config.fsync is not FsyncPolicy.NEVER:
            fsync_dir(self.root)
        return self.start_offset

    def truncate_to(self, end_offset: int) -> None:
        """Drop every record at or above ``end_offset`` (tail rollback).

        This is the consistent-cut recovery primitive: a frontend that
        crashed mid-flush rolls its log back to the last cut its meta
        file recorded, then replays its write-ahead journal from there.
        """
        if end_offset >= self.end_offset:
            return
        if end_offset < self.start_offset:
            raise MessagingError(
                f"cannot truncate to {end_offset}: below retained start "
                f"{self.start_offset}"
            )
        self._buffer.clear()
        self._index_buffer.clear()
        if end_offset <= self._active_base:
            # The whole active file is past the cut; so are completed
            # segments whose base is at or past it.
            self._remove_segment_files(self._active_path())
            while self._segments and self._segments[-1].base >= end_offset:
                self._remove_segment_files(self._segments.pop().path)
            if self.config.fsync is not FsyncPolicy.NEVER:
                fsync_dir(self.root)
            if self._segments and self._segments[-1].end > end_offset:
                # The cut lands inside this completed segment: it
                # becomes the active segment again and is trimmed below.
                segment = self._segments.pop()
                self._active_base = segment.base
                self._active_size = os.path.getsize(segment.path)
                self._active_count = segment.end - segment.base
            else:
                # The cut is exactly a segment boundary (or the log is
                # now empty): fresh, empty active file at the cut.
                self._create_active(end_offset)
                return
        self._truncate_active_at(end_offset)

    def _truncate_active_at(self, end_offset: int) -> None:
        target_rel = end_offset - self._active_base
        path = self._active_path()
        with open(path, "rb") as handle:
            data = handle.read()
        cut_pos = len(data)
        count = 0
        for pos, _end, rel, _payload in _scan_frames(data):
            if rel >= target_rel:
                cut_pos = pos
                break
            count = rel + 1
        with open(path, "r+b") as handle:
            handle.truncate(cut_pos)
        _fsync_file(path)
        self._active_size = cut_pos
        self._active_count = count
        self._records_since_index = 0
        self._remove_index()

    def _remove_index(self) -> None:
        idx = self._index_path()
        if os.path.exists(idx):
            os.remove(idx)

    @staticmethod
    def _remove_segment_files(path: str) -> None:
        for target in (path, path[: -len(_SEG_SUFFIX)] + _IDX_SUFFIX):
            if os.path.exists(target):
                os.remove(target)

    # -- introspection ---------------------------------------------------------

    def segment_spans(self) -> list[tuple[int, int]]:
        """``(base, end)`` per on-disk segment, active last."""
        spans = [(segment.base, segment.end) for segment in self._segments]
        spans.append((self._active_base, self.end_offset))
        return spans

    def disk_bytes(self) -> int:
        """Bytes currently on disk (excluding unwritten buffer)."""
        total = 0
        for name in os.listdir(self.root):
            if name.endswith((_SEG_SUFFIX, _IDX_SUFFIX)):
                total += os.path.getsize(os.path.join(self.root, name))
        return total
