"""Producer: keyed publishing into the bus."""

from __future__ import annotations

from typing import Any, Iterable

from repro.common.clock import Clock, SystemClock
from repro.messaging.broker import MessageBus
from repro.messaging.log import TopicPartition


class Producer:
    """A thin, stateless publishing handle.

    The paper's injectors use ``ack=all`` for the event topic and
    fire-and-forget for replies; our in-process log is always durable,
    so acks surface only in the latency simulation.
    """

    def __init__(self, bus: MessageBus, clock: Clock | None = None) -> None:
        self._bus = bus
        self._clock = clock if clock is not None else SystemClock()
        self.sent = 0

    def send(
        self,
        topic: str,
        key: Any,
        value: Any,
        timestamp: int | None = None,
    ) -> tuple[TopicPartition, int]:
        """Publish one message; returns ``(topic_partition, offset)``."""
        if timestamp is None:
            timestamp = self._clock.now()
        self.sent += 1
        return self._bus.publish(topic, key, value, timestamp)

    def send_batch(
        self,
        topic: str,
        entries: Iterable[tuple[Any, Any]],
        timestamp: int | None = None,
    ) -> list[tuple[TopicPartition, int]]:
        """Publish ``(key, value)`` pairs with one clock read for the batch."""
        if timestamp is None:
            timestamp = self._clock.now()
        publish = self._bus.publish
        placements = [publish(topic, key, value, timestamp) for key, value in entries]
        self.sent += len(placements)
        return placements
