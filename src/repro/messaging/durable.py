"""Durable partition logs and the disk-backed message bus.

The in-memory :class:`~repro.messaging.broker.MessageBus` stands in for
Kafka everywhere in the engine, but its logs die with the process —
Railgun's recovery contract (paper §3.3: rewind to the committed offset,
replay exactly the uncommitted tail) assumes the log outlives the node.
This module closes that gap:

- :class:`DurableLog` is a drop-in :class:`~repro.messaging.log.PartitionLog`
  whose records are also appended to a :class:`~repro.messaging.segments.SegmentedLog`
  on disk. The hot path stays in memory (appends buffer their encoded
  form; reads serve the in-memory tail), the disk is the recovery story,
  and checkpoint-aware truncation trims both in lock-step so neither
  grows without bound.
- :class:`DurableBus` is a drop-in :class:`~repro.messaging.broker.MessageBus`
  hosting :class:`DurableLog` partitions under one directory, plus two
  tiny CRC-framed side logs: ``topics.log`` (topic name, partitions,
  replication — so a reopen recreates the topology) and ``commits.log``
  (group committed offsets — so a reopened consumer resumes where it
  replied). Constructing a ``DurableBus`` over a non-empty directory
  *is* recovery: topics, logs (torn tails truncated), committed offsets
  and ``messages_published`` are all rebuilt from disk.
- :func:`write_cut` / :func:`read_cut` persist a **consistent cut** —
  an applied-frame counter plus per-partition end offsets, written
  atomically (tmp + rename) *after* the log data is fsynced. A
  recovering sharded frontend rolls every log back to the cut
  (:meth:`DurableLog.truncate_to`) and replays its write-ahead journal
  from the cut's frame counter, which makes journal replay idempotent
  without any per-record dedup.

Values crossing the durable boundary are encoded with a small tagged
codec (scalars, tuples, :class:`~repro.events.event.Event`, the engine
envelopes and the catalogue DDL ops) built on :mod:`repro.common.serde`
— no pickling, so a reopened log is readable by a fresh process of any
lifetime.
"""

from __future__ import annotations

import os
from typing import Any, Iterable, Mapping

from repro.common import serde
from repro.common.errors import MessagingError, SerdeError
from repro.engine.catalog import (
    AddPartitionerOp,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
    MetricDef,
    StreamDef,
)
from repro.engine.envelope import EventEnvelope, ReplyEnvelope
from repro.events.event import Event
from repro.messaging.broker import MessageBus
from repro.messaging.log import Message, PartitionLog, TopicPartition
from repro.messaging.segments import (
    FsyncPolicy,
    SegmentConfig,
    SegmentedLog,
    fsync_dir,
    fsync_policy,
)

#: environment variable the shard clusters consult for a default
#: durable directory (each cluster makes a private subdirectory).
DURABLE_DIR_ENV = "RAILGUN_DURABLE_DIR"

_CUT_FILE = "cut.meta"
_TOPICS_FILE = "topics.log"
_COMMITS_FILE = "commits.log"

# -- the value codec ----------------------------------------------------------
#
# Everything the engine publishes to a bus: scalars and scalar tuples
# (checkpoint announcements), events (frontend slices), the engine
# envelopes (cooperative/parallel event + reply topics) and the DDL ops
# (the operations topic — replaying it is how a reopened coordinator
# rebuilds its catalogue).

_TAG_SCALAR = 0
_TAG_TUPLE = 1
_TAG_EVENT = 2
_TAG_EVENT_ENVELOPE = 3
_TAG_REPLY_ENVELOPE = 4
_TAG_CREATE_STREAM = 5
_TAG_CREATE_METRIC = 6
_TAG_DELETE_METRIC = 7
_TAG_EVOLVE_SCHEMA = 8
_TAG_ADD_PARTITIONER = 9


def _write_tp(buf: bytearray, tp: TopicPartition) -> None:
    serde.write_str(buf, tp.topic)
    serde.write_varint(buf, tp.partition)


def _read_tp(data: memoryview, offset: int) -> tuple[TopicPartition, int]:
    topic, offset = serde.read_str(data, offset)
    partition, offset = serde.read_varint(data, offset)
    return TopicPartition(topic, partition), offset


def _write_event(buf: bytearray, event: Event) -> None:
    serde.write_str(buf, event.event_id)
    serde.write_signed_varint(buf, event.timestamp)
    serde.write_varint(buf, event.field_count())
    for name, value in event.items():
        serde.write_str(buf, name)
        serde.write_value(buf, value)


def _read_event(data: memoryview, offset: int) -> tuple[Event, int]:
    event_id, offset = serde.read_str(data, offset)
    timestamp, offset = serde.read_signed_varint(data, offset)
    count, offset = serde.read_varint(data, offset)
    fields: dict[str, Any] = {}
    for _ in range(count):
        name, offset = serde.read_str(data, offset)
        value, offset = serde.read_value(data, offset)
        fields[name] = value
    return Event(event_id, timestamp, fields), offset


def _write_results(buf: bytearray, results: Mapping[int, Mapping[str, Any]]) -> None:
    serde.write_varint(buf, len(results))
    for metric_id, values in results.items():
        serde.write_varint(buf, metric_id)
        serde.write_varint(buf, len(values))
        for column, value in values.items():
            serde.write_str(buf, column)
            serde.write_value(buf, value)


def _read_results(
    data: memoryview, offset: int
) -> tuple[dict[int, dict[str, Any]], int]:
    count, offset = serde.read_varint(data, offset)
    results: dict[int, dict[str, Any]] = {}
    for _ in range(count):
        metric_id, offset = serde.read_varint(data, offset)
        column_count, offset = serde.read_varint(data, offset)
        values: dict[str, Any] = {}
        for _ in range(column_count):
            column, offset = serde.read_str(data, offset)
            value, offset = serde.read_value(data, offset)
            values[column] = value
        results[metric_id] = values
    return results, offset


def _write_field_pairs(buf: bytearray, fields) -> None:
    serde.write_varint(buf, len(fields))
    for name, type_name in fields:
        serde.write_str(buf, name)
        serde.write_str(buf, type_name)


def _read_field_pairs(data: memoryview, offset: int):
    count, offset = serde.read_varint(data, offset)
    fields = []
    for _ in range(count):
        name, offset = serde.read_str(data, offset)
        type_name, offset = serde.read_str(data, offset)
        fields.append((name, type_name))
    return tuple(fields), offset


def write_payload(buf: bytearray, value: object) -> None:
    """Append one tagged bus value (key or message value)."""
    if isinstance(value, Event):
        buf.append(_TAG_EVENT)
        _write_event(buf, value)
    elif isinstance(value, EventEnvelope):
        buf.append(_TAG_EVENT_ENVELOPE)
        serde.write_str(buf, value.stream)
        _write_event(buf, value.event)
        serde.write_str(buf, value.origin_node)
        serde.write_varint(buf, value.correlation_id)
        serde.write_varint(buf, value.fanout)
    elif isinstance(value, ReplyEnvelope):
        buf.append(_TAG_REPLY_ENVELOPE)
        serde.write_varint(buf, value.correlation_id)
        serde.write_str(buf, value.event_id)
        _write_tp(buf, value.task)
        _write_results(buf, value.results)
    elif isinstance(value, CreateStreamOp):
        buf.append(_TAG_CREATE_STREAM)
        stream = value.stream
        serde.write_str(buf, stream.name)
        _write_field_pairs(buf, stream.fields)
        serde.write_str_list(buf, stream.partitioners)
        serde.write_varint(buf, stream.partitions)
    elif isinstance(value, CreateMetricOp):
        buf.append(_TAG_CREATE_METRIC)
        metric = value.metric
        serde.write_varint(buf, metric.metric_id)
        serde.write_str(buf, metric.query_text)
        serde.write_str(buf, metric.stream)
        serde.write_str(buf, metric.topic)
        buf.append(1 if metric.backfill else 0)
    elif isinstance(value, DeleteMetricOp):
        buf.append(_TAG_DELETE_METRIC)
        serde.write_varint(buf, value.metric_id)
    elif isinstance(value, EvolveSchemaOp):
        buf.append(_TAG_EVOLVE_SCHEMA)
        serde.write_str(buf, value.stream)
        _write_field_pairs(buf, value.new_fields)
    elif isinstance(value, AddPartitionerOp):
        buf.append(_TAG_ADD_PARTITIONER)
        serde.write_str(buf, value.stream)
        serde.write_str(buf, value.partitioner)
    elif isinstance(value, (tuple, list)):
        buf.append(_TAG_TUPLE)
        serde.write_varint(buf, len(value))
        for item in value:
            write_payload(buf, item)
    else:
        buf.append(_TAG_SCALAR)
        try:
            serde.write_value(buf, value)
        except SerdeError:
            raise MessagingError(
                f"value of type {type(value).__name__} cannot be stored in a "
                f"durable log (no codec)"
            ) from None


def read_payload(data: memoryview, offset: int) -> tuple[object, int]:
    """Read one tagged bus value written by :func:`write_payload`."""
    tag = data[offset]
    offset += 1
    if tag == _TAG_SCALAR:
        return serde.read_value(data, offset)
    if tag == _TAG_TUPLE:
        count, offset = serde.read_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = read_payload(data, offset)
            items.append(item)
        return tuple(items), offset
    if tag == _TAG_EVENT:
        return _read_event(data, offset)
    if tag == _TAG_EVENT_ENVELOPE:
        stream, offset = serde.read_str(data, offset)
        event, offset = _read_event(data, offset)
        origin, offset = serde.read_str(data, offset)
        correlation, offset = serde.read_varint(data, offset)
        fanout, offset = serde.read_varint(data, offset)
        return EventEnvelope(stream, event, origin, correlation, fanout), offset
    if tag == _TAG_REPLY_ENVELOPE:
        correlation, offset = serde.read_varint(data, offset)
        event_id, offset = serde.read_str(data, offset)
        tp, offset = _read_tp(data, offset)
        results, offset = _read_results(data, offset)
        return ReplyEnvelope(correlation, event_id, tp, results), offset
    if tag == _TAG_CREATE_STREAM:
        name, offset = serde.read_str(data, offset)
        fields, offset = _read_field_pairs(data, offset)
        partitioners, offset = serde.read_str_list(data, offset)
        partitions, offset = serde.read_varint(data, offset)
        return (
            CreateStreamOp(StreamDef(name, fields, tuple(partitioners), partitions)),
            offset,
        )
    if tag == _TAG_CREATE_METRIC:
        metric_id, offset = serde.read_varint(data, offset)
        query_text, offset = serde.read_str(data, offset)
        stream, offset = serde.read_str(data, offset)
        topic, offset = serde.read_str(data, offset)
        backfill = bool(data[offset])
        offset += 1
        return (
            CreateMetricOp(MetricDef(metric_id, query_text, stream, topic, backfill)),
            offset,
        )
    if tag == _TAG_DELETE_METRIC:
        metric_id, offset = serde.read_varint(data, offset)
        return DeleteMetricOp(metric_id), offset
    if tag == _TAG_EVOLVE_SCHEMA:
        stream, offset = serde.read_str(data, offset)
        fields, offset = _read_field_pairs(data, offset)
        return EvolveSchemaOp(stream, fields), offset
    if tag == _TAG_ADD_PARTITIONER:
        stream, offset = serde.read_str(data, offset)
        partitioner, offset = serde.read_str(data, offset)
        return AddPartitionerOp(stream, partitioner), offset
    raise MessagingError(f"unknown durable payload tag {tag}")


# -- the durable partition log ------------------------------------------------


class DurableLog(PartitionLog):
    """A partition log whose records also live in segment files on disk.

    Appends encode the record once (``svarint timestamp | key | value``)
    into the segment store's buffer and keep the original objects in an
    in-memory window, so live reads never touch disk or the codec.
    Opening a ``DurableLog`` over an existing directory replays the
    segment files (torn tail truncated) to rebuild the window; the
    window's base then tracks the store's retention start, so
    :meth:`truncate_below` bounds memory and disk together.
    """

    def __init__(
        self,
        tp: TopicPartition,
        root: str,
        replication: int = 1,
        config: SegmentConfig | None = None,
    ) -> None:
        super().__init__(tp, replication)
        self.segments = SegmentedLog(root, config)
        self._base = self.segments.start_offset
        self._pins: dict[int, int] = {}
        self._next_pin = 0
        for offset, payload in self.segments.records(self._base):
            view = memoryview(payload)
            timestamp, at = serde.read_signed_varint(view, 0)
            key, at = read_payload(view, at)
            value, at = read_payload(view, at)
            self._messages.append(Message(offset, key, value, timestamp))

    # -- the PartitionLog surface ---------------------------------------------

    def append(self, key: Any, value: Any, timestamp: int) -> int:
        """Append in memory and to the segment buffer; returns the offset."""
        offset = self._base + len(self._messages)
        buf = bytearray()
        serde.write_signed_varint(buf, timestamp)
        write_payload(buf, key)
        write_payload(buf, value)
        disk_offset = self.segments.append(bytes(buf))
        if disk_offset != offset:
            raise MessagingError(
                f"durable log {self.tp} out of sync: memory at {offset}, "
                f"disk at {disk_offset}"
            )
        self._messages.append(Message(offset, key, value, timestamp))
        return offset

    def read(self, from_offset: int, max_records: int) -> list[Message]:
        """Messages with ``offset >= from_offset``; reads below the
        retention start clamp to it (truncated records are gone)."""
        if from_offset < self._base:
            from_offset = self._base
        start = from_offset - self._base
        return self._messages[start : start + max_records]

    @property
    def end_offset(self) -> int:
        return self._base + len(self._messages)

    @property
    def start_offset(self) -> int:
        """Lowest retained offset (advances with truncation)."""
        return self._base

    # -- durability controls --------------------------------------------------

    def flush(self) -> None:
        """Write out buffered records (fsync per the store's policy)."""
        self.segments.flush()

    # -- retention pins --------------------------------------------------------
    #
    # A pin is a reader's claim on history: while any pin is open,
    # checkpoint-driven truncation clamps to the lowest pinned offset,
    # so a backfill replaying the log behind the live writer never sees
    # its unread records deleted under it. Pins are in-process state —
    # they protect *live* readers, not crashed ones — so a reopen starts
    # with none.

    def pin(self, offset: int) -> int:
        """Hold retention at ``offset``; returns a token for the holder."""
        token = self._next_pin
        self._next_pin += 1
        self._pins[token] = max(offset, self._base)
        return token

    def advance_pin(self, token: int, offset: int) -> None:
        """Move a pin forward as its reader consumes (never backward)."""
        if token in self._pins:
            self._pins[token] = max(self._pins[token], offset)

    def unpin(self, token: int) -> None:
        """Release a pin; idempotent."""
        self._pins.pop(token, None)

    @property
    def pinned_floor(self) -> int | None:
        """Lowest offset any open pin protects (``None`` when unpinned)."""
        return min(self._pins.values()) if self._pins else None

    def truncate_below(self, offset: int) -> int:
        """Drop whole segments (and their in-memory window) below
        ``offset``; returns the new retention start. Open pins clamp the
        cut — segments a backfill cursor still needs survive until it
        advances past them or closes."""
        floor = self.pinned_floor
        if floor is not None:
            offset = min(offset, floor)
        start = self.segments.truncate_below(min(offset, self.end_offset))
        if start > self._base:
            self._messages = self._messages[start - self._base :]
            self._base = start
        return start

    def truncate_to(self, end_offset: int) -> None:
        """Roll the tail back so the next append gets ``end_offset``."""
        self.segments.truncate_to(end_offset)
        if end_offset < self._base + len(self._messages):
            del self._messages[max(0, end_offset - self._base) :]

    def close(self) -> None:
        self.segments.close()


# -- tiny CRC-framed side logs ------------------------------------------------


def _append_frames(path: str, frames: Iterable[bytes], fsync: bool) -> None:
    encoded = bytearray()
    for payload in frames:
        serde.write_u32(encoded, serde.crc32_of(payload))
        serde.write_varint(encoded, len(payload))
        encoded.extend(payload)
    if not encoded:
        return
    with open(path, "ab") as handle:
        handle.write(encoded)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())


def _read_frames(path: str) -> list[bytes]:
    """Intact frames of a side log; stops at the first torn record."""
    if not os.path.exists(path):
        return []
    with open(path, "rb") as handle:
        data = handle.read()
    frames: list[bytes] = []
    offset = 0
    while offset < len(data):
        try:
            crc, offset2 = serde.read_u32(data, offset)
            length, offset2 = serde.read_varint(data, offset2)
        except Exception:
            break
        end = offset2 + length
        if end > len(data):
            break
        payload = data[offset2:end]
        if serde.crc32_of(payload) != crc:
            break
        frames.append(payload)
        offset = end
    return frames


def write_cut(
    root: str, frames_applied: int, ends: Mapping[TopicPartition, int]
) -> None:
    """Atomically persist a consistent cut: applied ingest-frame count +
    per-partition end offsets.

    Written *after* the log data it describes is flushed, via tmp +
    rename, so a crash leaves either the previous cut or this one —
    never a torn file. Recovery truncates each log back to the recorded
    end (:meth:`DurableLog.truncate_to`) and replays the write-ahead
    journal from ``frames_applied``.
    """
    payload = bytearray()
    serde.write_varint(payload, frames_applied)
    pairs = sorted(ends.items(), key=lambda pair: str(pair[0]))
    serde.write_varint(payload, len(pairs))
    for tp, end in pairs:
        _write_tp(payload, tp)
        serde.write_varint(payload, end)
    framed = bytearray()
    serde.write_u32(framed, serde.crc32_of(payload))
    serde.write_bytes(framed, bytes(payload))
    tmp = os.path.join(root, _CUT_FILE + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(framed)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, os.path.join(root, _CUT_FILE))
    fsync_dir(root)  # the rename itself must survive power loss


def read_cut(root: str) -> tuple[int, dict[TopicPartition, int]]:
    """Read the consistent cut; ``(0, {})`` when none was ever written."""
    path = os.path.join(root, _CUT_FILE)
    if not os.path.exists(path):
        return 0, {}
    with open(path, "rb") as handle:
        data = handle.read()
    try:
        crc, offset = serde.read_u32(data, 0)
        payload, _ = serde.read_bytes(data, offset)
    except Exception:
        return 0, {}
    if serde.crc32_of(payload) != crc:
        return 0, {}
    view = memoryview(payload)
    frames_applied, offset = serde.read_varint(view, 0)
    count, offset = serde.read_varint(view, offset)
    ends: dict[TopicPartition, int] = {}
    for _ in range(count):
        tp, offset = _read_tp(view, offset)
        end, offset = serde.read_varint(view, offset)
        ends[tp] = end
    return frames_applied, ends


# -- the durable bus ----------------------------------------------------------


class DurableBus(MessageBus):
    """A :class:`MessageBus` whose partition logs live on disk.

    Construction over a non-empty ``root`` is recovery: the topic side
    log recreates the topology, every partition's segment files rebuild
    its log (torn tails truncated), the commit side log restores the
    committed offsets, and ``messages_published`` resumes at the total
    record count (so auto-minted ids stay unique across a reopen).
    """

    def __init__(
        self,
        root: str,
        brokers: int = 1,
        fsync: FsyncPolicy | str = FsyncPolicy.BATCH,
        segment_bytes: int = 1 << 20,
        flush_bytes: int = 1 << 16,
        index_interval: int = 64,
    ) -> None:
        super().__init__(brokers)
        self.root = root
        self.config = SegmentConfig(
            segment_bytes=segment_bytes,
            flush_bytes=flush_bytes,
            index_interval=index_interval,
            fsync=fsync_policy(fsync),
        )
        os.makedirs(root, exist_ok=True)
        self._commit_buffer: list[bytes] = []
        self.recovered = False
        self._recover_topics()
        self._recover_commits()

    # -- recovery --------------------------------------------------------------

    def _recover_topics(self) -> None:
        for payload in _read_frames(os.path.join(self.root, _TOPICS_FILE)):
            view = memoryview(payload)
            name, offset = serde.read_str(view, 0)
            partitions, offset = serde.read_varint(view, offset)
            replication, offset = serde.read_varint(view, offset)
            self._register_topic(name, partitions, replication)
            self.recovered = True
        if self.recovered:
            self.messages_published = sum(
                log.end_offset for log in self._logs.values()
            )

    def _recover_commits(self) -> None:
        for payload in _read_frames(os.path.join(self.root, _COMMITS_FILE)):
            view = memoryview(payload)
            group, offset = serde.read_str(view, 0)
            tp, offset = _read_tp(view, offset)
            committed, offset = serde.read_varint(view, offset)
            self._committed[(group, tp)] = committed  # last record wins

    # -- topic management ------------------------------------------------------

    def create_topic(self, name: str, partitions: int, replication: int = 1) -> None:
        if partitions <= 0:
            raise MessagingError(f"topic {name!r} needs at least one partition")
        if replication > self.broker_count:
            raise MessagingError(
                f"replication {replication} exceeds broker count {self.broker_count}"
            )
        existing = self._topics.get(name, 0)
        if existing > partitions:
            raise MessagingError(
                f"cannot shrink topic {name!r} from {existing} to {partitions}"
            )
        self._register_topic(name, partitions, replication)
        # Re-creating an already-recovered topic (a reopened coordinator
        # re-running its DDL path) must not duplicate the meta record.
        if partitions > existing:
            payload = bytearray()
            serde.write_str(payload, name)
            serde.write_varint(payload, partitions)
            serde.write_varint(payload, replication)
            _append_frames(
                os.path.join(self.root, _TOPICS_FILE),
                [bytes(payload)],
                fsync=self.config.fsync is not FsyncPolicy.NEVER,
            )

    def _register_topic(self, name: str, partitions: int, replication: int) -> None:
        """Recreate a recovered topic without re-writing the meta log."""
        existing = self._topics.get(name, 0)
        if existing >= partitions:
            return
        self._topics[name] = partitions
        for index in range(existing, partitions):
            tp = TopicPartition(name, index)
            self._logs[tp] = self._build_log(tp, replication)
            self._leaders[tp] = (hash(name) + index) % self.broker_count

    def _build_log(self, tp: TopicPartition, replication: int) -> DurableLog:
        return DurableLog(
            tp,
            os.path.join(self.root, str(tp)),
            replication,
            self.config,
        )

    # -- committed offsets -----------------------------------------------------

    def commit_offset(self, group: str, tp: TopicPartition, offset: int) -> None:
        super().commit_offset(group, tp, offset)
        payload = bytearray()
        serde.write_str(payload, group)
        _write_tp(payload, tp)
        serde.write_varint(payload, offset)
        self._commit_buffer.append(bytes(payload))

    # -- durability controls ---------------------------------------------------

    def flush(self) -> None:
        """Write out every log's buffer and the commit side log."""
        for log in self._logs.values():
            log.flush()
        if self._commit_buffer:
            _append_frames(
                os.path.join(self.root, _COMMITS_FILE),
                self._commit_buffer,
                fsync=self.config.fsync is not FsyncPolicy.NEVER,
            )
            self._commit_buffer.clear()

    def truncate_below(self, offsets: Mapping[TopicPartition, int]) -> None:
        """Checkpoint-aware retention: per task, delete whole segments
        entirely below its stored checkpoint offset."""
        for tp, offset in offsets.items():
            log = self._logs.get(tp)
            if log is not None and offset > 0:
                log.truncate_below(offset)

    def close(self) -> None:
        """Flush and release every log; idempotent."""
        self.flush()
        for log in self._logs.values():
            log.close()

    # -- introspection ---------------------------------------------------------

    def all_partitions(self) -> list[TopicPartition]:
        """Every hosted (topic, partition), sorted."""
        return sorted(self._logs, key=str)

    def disk_bytes(self) -> int:
        """Total segment-file bytes across all partitions."""
        return sum(log.segments.disk_bytes() for log in self._logs.values())

    def segment_spans(self) -> dict[TopicPartition, list[tuple[int, int]]]:
        """Per-partition ``(base, end)`` segment spans (for the gate)."""
        return {tp: log.segments.segment_spans() for tp, log in self._logs.items()}


def resolve_durable_dir(explicit: str | None, label: str) -> str | None:
    """The cluster's durable directory: the explicit argument, or a
    fresh private subdirectory of ``$RAILGUN_DURABLE_DIR`` when set.

    The environment hook is how CI runs the whole shard suite durably
    without touching each test; ``None`` (no argument, no environment)
    keeps the in-memory bus.
    """
    if explicit is not None:
        return explicit
    root = os.environ.get(DURABLE_DIR_ENV)
    if not root:
        return None
    import tempfile

    os.makedirs(root, exist_ok=True)
    return tempfile.mkdtemp(prefix=f"{label}-", dir=root)
