"""The messaging layer — an in-process Kafka stand-in (paper §3.3).

Railgun leans on a small set of Kafka guarantees, all implemented here:

- durable, offset-addressed partition logs that consumers can rewind
  ("allows a Railgun node to recover by rewinding the stream");
- keyed routing: messages with the same key always land in the same
  partition (entity locality, §4);
- consumer groups with **exactly one consumer per (topic, partition)**
  within a group, heartbeat-based failure detection, and generation
  numbers that fence zombies;
- pluggable assignment strategies invoked on rebalance, including an
  external-authority mode the engine uses to run the Figure 7 sticky
  strategy across the active group and all replica groups at once.
"""

from repro.messaging.broker import MessageBus
from repro.messaging.consumer import (
    Consumer,
    ConsumerRecord,
    PartitionView,
    RebalanceListener,
)
from repro.messaging.cursor import LogCursor
from repro.messaging.durable import DurableBus, DurableLog
from repro.messaging.groups import (
    GroupCoordinator,
    range_assignor,
    round_robin_assignor,
    sticky_assignor,
)
from repro.messaging.log import Message, PartitionLog, TopicPartition
from repro.messaging.producer import Producer
from repro.messaging.segments import FsyncPolicy, SegmentConfig, SegmentedLog

__all__ = [
    "Message",
    "PartitionLog",
    "TopicPartition",
    "MessageBus",
    "Producer",
    "Consumer",
    "ConsumerRecord",
    "PartitionView",
    "RebalanceListener",
    "GroupCoordinator",
    "range_assignor",
    "round_robin_assignor",
    "sticky_assignor",
    "FsyncPolicy",
    "SegmentConfig",
    "SegmentedLog",
    "DurableBus",
    "DurableLog",
    "LogCursor",
]
