"""Shared log-reader cursors that survive checkpoint-driven truncation.

A :class:`LogCursor` is the second reader of a partition log: while the
live consumer tails the head, a cursor replays history (backfill, as-of
queries, migration export) from an arbitrary start offset. On durable
logs the cursor *pins retention* — checkpoint truncation clamps to the
lowest open pin (:meth:`~repro.messaging.durable.DurableLog.pin`), so
the segments between the cursor and the live frontier cannot be deleted
while the replay is in flight. Reading advances the pin in lock-step,
so retention resumes reclaiming behind the cursor as it catches up.

In-memory :class:`~repro.messaging.log.PartitionLog` partitions never
truncate, so the pin calls degrade to no-ops and the cursor is just a
positioned reader — one code path for every bus.
"""

from __future__ import annotations

from repro.messaging.broker import MessageBus
from repro.messaging.log import Message, TopicPartition


class LogCursor:
    """A positioned, retention-pinning reader over one partition log."""

    def __init__(self, bus: MessageBus, tp: TopicPartition, start: int = 0) -> None:
        self.bus = bus
        self.tp = tp
        log = bus.log(tp)
        # Reads below the retention start are gone; clamp like the log does.
        self.position = max(start, getattr(log, "start_offset", 0))
        self.closed = False
        self._pin_token: int | None = None
        pin = getattr(log, "pin", None)
        if pin is not None:
            self._pin_token = pin(self.position)

    def lag(self) -> int:
        """Records between the cursor and the live log end."""
        return max(0, self.bus.end_offset(self.tp) - self.position)

    def read(self, max_records: int) -> list[Message]:
        """The next run of messages; advances position and pin."""
        messages = self.bus.read(self.tp, self.position, max_records)
        if messages:
            self.position = messages[-1].offset + 1
            self._advance_pin()
        return messages

    def seek(self, offset: int) -> None:
        """Jump forward (e.g. to a checkpoint's offset); pins follow."""
        if offset > self.position:
            self.position = offset
            self._advance_pin()

    def _advance_pin(self) -> None:
        if self._pin_token is not None:
            log = self.bus.log(self.tp)
            log.advance_pin(self._pin_token, self.position)

    def close(self) -> None:
        """Release the retention pin; idempotent."""
        self.closed = True
        if self._pin_token is not None:
            self.bus.log(self.tp).unpin(self._pin_token)
            self._pin_token = None

    def __enter__(self) -> "LogCursor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
