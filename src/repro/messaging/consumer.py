"""Consumers: pull-based readers with group membership.

"Kafka follows a pull-based approach where consumers continuously poll
for new messages by providing their individual offset since the last
poll" (§3.3). A consumer tracks one position per assigned partition,
starting from the group's committed offset, and exposes ``seek`` so the
engine can rewind to a checkpointed offset during recovery.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from repro.common.clock import Clock, SystemClock
from repro.common.errors import MessagingError
from repro.messaging.broker import MessageBus
from repro.messaging.groups import AssignmentStrategy, GroupCoordinator
from repro.messaging.log import TopicPartition


class RebalanceListener(Protocol):
    """Callbacks invoked around assignment changes (Kafka-style)."""

    def on_partitions_revoked(self, partitions: list[TopicPartition]) -> None:
        """Partitions leaving this consumer."""

    def on_partitions_assigned(self, partitions: list[TopicPartition]) -> None:
        """Partitions newly owned by this consumer."""


class ConsumerRecord:
    """A polled message with its provenance."""

    __slots__ = ("tp", "offset", "key", "value", "timestamp")

    def __init__(self, tp: TopicPartition, offset: int, key, value, timestamp: int) -> None:
        self.tp = tp
        self.offset = offset
        self.key = key
        self.value = value
        self.timestamp = timestamp

    @property
    def topic(self) -> str:
        return self.tp.topic

    @property
    def partition(self) -> int:
        return self.tp.partition

    def __repr__(self) -> str:
        return f"ConsumerRecord({self.tp}@{self.offset})"


class _NullListener:
    def on_partitions_revoked(self, partitions: list[TopicPartition]) -> None:
        pass

    def on_partitions_assigned(self, partitions: list[TopicPartition]) -> None:
        pass


class Consumer:
    """A group member polling its assigned partitions."""

    def __init__(
        self,
        bus: MessageBus,
        coordinator: GroupCoordinator,
        group_id: str,
        member_id: str,
        clock: Clock | None = None,
    ) -> None:
        self._bus = bus
        self._coordinator = coordinator
        self.group_id = group_id
        self.member_id = member_id
        self._clock = clock if clock is not None else SystemClock()
        self._positions: dict[TopicPartition, int] = {}
        self._subscribed = False
        self.records_polled = 0

    # -- membership -----------------------------------------------------------------

    def subscribe(
        self,
        topics: Iterable[str],
        listener: RebalanceListener | None = None,
        strategy: AssignmentStrategy | None = None,
    ) -> None:
        """Join the group for ``topics``; assignment arrives on next tick."""
        if self._subscribed:
            raise MessagingError(f"consumer {self.member_id!r} already subscribed")
        self._coordinator.join(
            self.group_id,
            self.member_id,
            topics,
            self._clock.now(),
            listener=listener if listener is not None else _NullListener(),
            strategy=strategy,
        )
        self._subscribed = True

    def update_subscription(self, topics: Iterable[str]) -> None:
        """Change the subscribed topic set (triggers a rebalance)."""
        if not self._subscribed:
            raise MessagingError(f"consumer {self.member_id!r} not subscribed")
        self._coordinator.update_subscription(self.group_id, self.member_id, topics)

    def is_member(self) -> bool:
        """True while the coordinator still counts us in (not expired)."""
        return self.member_id in self._coordinator.members_of(self.group_id)

    def rejoin(self, topics: Iterable[str], listener: RebalanceListener | None = None,
               strategy: AssignmentStrategy | None = None) -> None:
        """Re-enter the group after expiry (node revival path)."""
        self._coordinator.join(
            self.group_id,
            self.member_id,
            topics,
            self._clock.now(),
            listener=listener if listener is not None else _NullListener(),
            strategy=strategy,
        )
        self._subscribed = True

    def close(self) -> None:
        """Leave the group gracefully."""
        if self._subscribed:
            self._coordinator.leave(self.group_id, self.member_id)
            self._subscribed = False

    def heartbeat(self) -> None:
        """Signal liveness (the processor loop calls this every poll)."""
        self._coordinator.heartbeat(self.group_id, self.member_id, self._clock.now())

    # -- position management ------------------------------------------------------------

    def assignment(self) -> list[TopicPartition]:
        """Currently assigned partitions, sorted."""
        return sorted(
            self._coordinator.assignment_of(self.group_id, self.member_id), key=str
        )

    def position(self, tp: TopicPartition) -> int:
        """Next offset this consumer will read for ``tp``."""
        if tp not in self._positions:
            self._positions[tp] = self._bus.committed_offset(self.group_id, tp)
        return self._positions[tp]

    def seek(self, tp: TopicPartition, offset: int) -> None:
        """Rewind/forward the read position (recovery path)."""
        if offset < 0:
            raise MessagingError(f"cannot seek to negative offset {offset}")
        self._positions[tp] = offset

    def seek_to_end(self, tp: TopicPartition) -> None:
        """Skip to the log end (replica bootstrap fast-path)."""
        self._positions[tp] = self._bus.end_offset(tp)

    def commit(self, tp: TopicPartition | None = None) -> None:
        """Commit current position(s) for this group."""
        targets = [tp] if tp is not None else self.assignment()
        for target in targets:
            self._bus.commit_offset(self.group_id, target, self.position(target))

    # -- the data path ------------------------------------------------------------------

    def poll(self, max_records: int = 100) -> list[ConsumerRecord]:
        """Heartbeat + read from every assigned partition, round-robin.

        A consumer expelled by the coordinator (missed heartbeats) polls
        nothing until it rejoins — mirroring a fenced Kafka consumer.
        """
        records: list[ConsumerRecord] = []
        for _tp, batch in self.poll_batches(max_records):
            records.extend(batch)
        return records

    def poll_batches(
        self, max_records: int = 100
    ) -> list[tuple[TopicPartition, list[ConsumerRecord]]]:
        """Like :meth:`poll`, but grouped per partition.

        Each group is a contiguous offset run from one partition, in the
        same order :meth:`poll` would interleave them — the batched
        engine hot path hands whole runs to a task processor without
        re-bucketing. Empty partitions produce no group.
        """
        if not self.is_member():
            return []
        self.heartbeat()
        batches: list[tuple[TopicPartition, list[ConsumerRecord]]] = []
        assigned = self.assignment()
        if not assigned:
            return batches
        per_partition = max(1, max_records // len(assigned))
        total = 0
        for tp in assigned:
            position = self.position(tp)
            messages = self._bus.read(tp, position, per_partition)
            if not messages:
                continue
            batches.append(
                (
                    tp,
                    [
                        ConsumerRecord(
                            tp, message.offset, message.key, message.value,
                            message.timestamp,
                        )
                        for message in messages
                    ],
                )
            )
            self._positions[tp] = messages[-1].offset + 1
            total += len(messages)
        self.records_polled += total
        return batches

    def lag(self) -> int:
        """Total unread messages across the assignment."""
        return sum(
            self._bus.end_offset(tp) - self.position(tp) for tp in self.assignment()
        )


class PartitionView:
    """A coordinator-free reader over an explicitly assigned partition set.

    The process-parallel engine polls the bus *on behalf of* its shard
    workers: one view per worker tracks read positions for the worker's
    partitions and commits offsets back to the bus only once the
    corresponding replies landed. A restarted worker therefore replays
    exactly the uncommitted tail — the committed offset is the durable
    record of "replied up to here" that crosses the process boundary.

    Unlike :class:`Consumer` there is no group membership, heartbeat or
    rebalance protocol: assignment is installed directly (the shard
    supervisor is the assignment authority) and reads return raw
    :class:`~repro.messaging.log.Message` batches without per-record
    wrapping, keeping the dispatch hot path allocation-light.
    """

    def __init__(self, bus: MessageBus, group_id: str) -> None:
        self._bus = bus
        self.group_id = group_id
        self._positions: dict[TopicPartition, int] = {}
        self._assigned: list[TopicPartition] = []
        self.records_read = 0

    def set_assignment(self, partitions: Iterable[TopicPartition]) -> None:
        """Install the owned partition set (sorted for determinism)."""
        self._assigned = sorted(partitions, key=str)

    def assignment(self) -> list[TopicPartition]:
        """Currently assigned partitions, sorted."""
        return list(self._assigned)

    def position(self, tp: TopicPartition) -> int:
        """Next offset to read (starts at the group's committed offset)."""
        if tp not in self._positions:
            self._positions[tp] = self._bus.committed_offset(self.group_id, tp)
        return self._positions[tp]

    def seek(self, tp: TopicPartition, offset: int) -> None:
        """Rewind/forward the read position (replay-after-restart path)."""
        if offset < 0:
            raise MessagingError(f"cannot seek to negative offset {offset}")
        self._positions[tp] = offset

    def poll_one(self, tp: TopicPartition, max_records: int = 256) -> list:
        """One contiguous message run from a single partition.

        The parallel dispatcher polls partition-by-partition so it can
        stop the moment the owning worker runs out of flow-control
        credits, instead of over-reading the whole assignment.
        """
        position = self.position(tp)
        messages = self._bus.read(tp, position, max_records)
        if messages:
            self._positions[tp] = messages[-1].offset + 1
            self.records_read += len(messages)
        return messages

    def poll_batches(
        self, max_records_per_partition: int = 256
    ) -> list[tuple[TopicPartition, list]]:
        """One contiguous message run per non-empty assigned partition."""
        batches: list[tuple[TopicPartition, list]] = []
        for tp in self._assigned:
            messages = self.poll_one(tp, max_records_per_partition)
            if messages:
                batches.append((tp, messages))
        return batches

    def commit(self, tp: TopicPartition, offset: int) -> None:
        """Record the replied-up-to-here watermark for ``tp``."""
        self._bus.commit_offset(self.group_id, tp, offset)

    def committed(self, tp: TopicPartition) -> int:
        """The group's committed offset for ``tp``."""
        return self._bus.committed_offset(self.group_id, tp)

    def lag(self) -> int:
        """Total unread messages across the assignment."""
        return sum(
            self._bus.end_offset(tp) - self.position(tp) for tp in self._assigned
        )
