"""Consumer-group coordination: membership, heartbeats, rebalance.

Implements the Kafka guarantees Railgun exploits (§3.3):

- within a group, every partition of the subscribed topics is assigned
  to **exactly one** member (and members may get none when the group is
  larger than the partition count);
- the coordinator tracks heartbeats and evicts members that miss the
  session timeout, triggering a rebalance;
- each rebalance bumps a **generation**; stale members are fenced;
- the partition assignment strategy is pluggable. Built-ins: range,
  round-robin and sticky; the engine installs an *external authority*
  that runs the paper's Figure 7 strategy across multiple groups.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.common.errors import MessagingError
from repro.messaging.broker import MessageBus
from repro.messaging.log import TopicPartition

#: strategy(members -> subscribed topics, partitions, previous assignment)
#: -> member -> set of partitions
AssignmentStrategy = Callable[
    [dict[str, set[str]], list[TopicPartition], dict[str, set[TopicPartition]]],
    dict[str, set[TopicPartition]],
]


def range_assignor(
    subscriptions: dict[str, set[str]],
    partitions: list[TopicPartition],
    previous: dict[str, set[TopicPartition]],
) -> dict[str, set[TopicPartition]]:
    """Kafka's default: contiguous ranges per topic."""
    assignment: dict[str, set[TopicPartition]] = {m: set() for m in subscriptions}
    by_topic: dict[str, list[TopicPartition]] = defaultdict(list)
    for tp in partitions:
        by_topic[tp.topic].append(tp)
    for topic, tps in sorted(by_topic.items()):
        members = sorted(m for m, topics in subscriptions.items() if topic in topics)
        if not members:
            continue
        tps = sorted(tps, key=lambda tp: tp.partition)
        per_member = len(tps) // len(members)
        extra = len(tps) % len(members)
        cursor = 0
        for index, member in enumerate(members):
            take = per_member + (1 if index < extra else 0)
            for tp in tps[cursor : cursor + take]:
                assignment[member].add(tp)
            cursor += take
    return assignment


def round_robin_assignor(
    subscriptions: dict[str, set[str]],
    partitions: list[TopicPartition],
    previous: dict[str, set[TopicPartition]],
) -> dict[str, set[TopicPartition]]:
    """Spread partitions one-by-one over members."""
    assignment: dict[str, set[TopicPartition]] = {m: set() for m in subscriptions}
    ordered = sorted(partitions, key=lambda tp: (tp.topic, tp.partition))
    for index, tp in enumerate(ordered):
        members = sorted(m for m, topics in subscriptions.items() if tp.topic in topics)
        if not members:
            continue
        assignment[members[index % len(members)]].add(tp)
    return assignment


def sticky_assignor(
    subscriptions: dict[str, set[str]],
    partitions: list[TopicPartition],
    previous: dict[str, set[TopicPartition]],
) -> dict[str, set[TopicPartition]]:
    """Kafka's sticky assignment: keep previous owners, balance the rest.

    The base Railgun builds on ("built upon Kafka's sticky assignment
    implementation", §4.2): minimize movement subject to balance.
    """
    members = sorted(subscriptions)
    assignment: dict[str, set[TopicPartition]] = {m: set() for m in members}
    if not members:
        return assignment
    eligible = {
        tp: sorted(m for m in members if tp.topic in subscriptions[m])
        for tp in partitions
    }
    budget = -(-len(partitions) // len(members))  # ceil
    unassigned: list[TopicPartition] = []
    for tp in sorted(partitions, key=lambda tp: (tp.topic, tp.partition)):
        owner = next(
            (m for m, owned in previous.items()
             if tp in owned and m in assignment and tp.topic in subscriptions[m]),
            None,
        )
        if owner is not None and len(assignment[owner]) < budget:
            assignment[owner].add(tp)
        else:
            unassigned.append(tp)
    for tp in unassigned:
        candidates = eligible[tp]
        if not candidates:
            continue
        target = min(candidates, key=lambda m: (len(assignment[m]), m))
        assignment[target].add(tp)
    return assignment


@dataclass
class _Member:
    member_id: str
    topics: set[str]
    last_heartbeat_ms: int
    listener: "object | None" = None
    assignment: set[TopicPartition] = field(default_factory=set)


@dataclass
class _Group:
    group_id: str
    strategy: AssignmentStrategy
    members: dict[str, _Member] = field(default_factory=dict)
    generation: int = 0
    needs_rebalance: bool = True


class GroupCoordinator:
    """Coordinates all consumer groups over one :class:`MessageBus`."""

    def __init__(
        self,
        bus: MessageBus,
        session_timeout_ms: int = 10_000,
        default_strategy: AssignmentStrategy = sticky_assignor,
    ) -> None:
        self.bus = bus
        self.session_timeout_ms = session_timeout_ms
        self._default_strategy = default_strategy
        self._groups: dict[str, _Group] = {}
        self.rebalances = 0
        #: optional hook invoked after any group rebalances — the engine
        #: uses it to co-ordinate active/replica groups (Figure 7).
        self.external_authority: Callable[[str], None] | None = None

    # -- membership -----------------------------------------------------------------

    def join(
        self,
        group_id: str,
        member_id: str,
        topics: Iterable[str],
        now_ms: int,
        listener: object | None = None,
        strategy: AssignmentStrategy | None = None,
    ) -> None:
        """Add a member; marks the group for rebalance."""
        group = self._groups.get(group_id)
        if group is None:
            group = _Group(group_id, strategy or self._default_strategy)
            self._groups[group_id] = group
        elif strategy is not None:
            group.strategy = strategy
        if member_id in group.members:
            raise MessagingError(
                f"member {member_id!r} already in group {group_id!r}"
            )
        group.members[member_id] = _Member(member_id, set(topics), now_ms, listener)
        group.needs_rebalance = True

    def leave(self, group_id: str, member_id: str) -> None:
        """Graceful departure; marks the group for rebalance."""
        group = self._group(group_id)
        member = group.members.pop(member_id, None)
        if member is None:
            return
        if member.listener is not None:
            member.listener.on_partitions_revoked(sorted(member.assignment, key=str))
        group.needs_rebalance = True

    def update_subscription(
        self, group_id: str, member_id: str, topics: Iterable[str]
    ) -> None:
        """Replace a member's topic subscription; triggers a rebalance."""
        group = self._group(group_id)
        member = group.members.get(member_id)
        if member is None:
            raise MessagingError(
                f"unknown member {member_id!r} in group {group_id!r}"
            )
        member.topics = set(topics)
        group.needs_rebalance = True

    def heartbeat(self, group_id: str, member_id: str, now_ms: int) -> None:
        """Record liveness for a member."""
        group = self._group(group_id)
        member = group.members.get(member_id)
        if member is None:
            raise MessagingError(
                f"unknown member {member_id!r} in group {group_id!r} (fenced?)"
            )
        member.last_heartbeat_ms = now_ms

    def tick(self, now_ms: int) -> None:
        """Expire dead members and run any pending rebalances.

        This is the coordinator's event loop; the cluster harness calls
        it as part of pumping the world.
        """
        for group in self._groups.values():
            expired = [
                m.member_id
                for m in group.members.values()
                if now_ms - m.last_heartbeat_ms > self.session_timeout_ms
            ]
            for member_id in expired:
                group.members.pop(member_id)
                group.needs_rebalance = True
        for group in self._groups.values():
            if group.needs_rebalance:
                self._rebalance(group)

    def request_rebalance(self, group_id: str) -> None:
        """Force a rebalance on next tick (metadata change, new topics)."""
        self._group(group_id).needs_rebalance = True

    # -- assignment ------------------------------------------------------------------

    def _rebalance(self, group: _Group) -> None:
        group.needs_rebalance = False
        group.generation += 1
        self.rebalances += 1
        topics = set()
        for member in group.members.values():
            topics |= member.topics
        partitions = [
            tp for topic in sorted(topics)
            if self.bus.has_topic(topic)
            for tp in self.bus.topic_partitions(topic)
        ]
        previous = {
            member_id: set(member.assignment)
            for member_id, member in group.members.items()
        }
        subscriptions = {
            member_id: member.topics for member_id, member in group.members.items()
        }
        new_assignment = group.strategy(subscriptions, partitions, previous)
        require_complete = not getattr(group.strategy, "allows_incomplete", False)
        self._validate_assignment(
            group, partitions if require_complete else [], new_assignment
        )
        for member_id, member in group.members.items():
            assigned = new_assignment.get(member_id, set())
            revoked = member.assignment - assigned
            granted = assigned - member.assignment
            if member.listener is not None and revoked:
                member.listener.on_partitions_revoked(sorted(revoked, key=str))
            member.assignment = set(assigned)
            if member.listener is not None and granted:
                member.listener.on_partitions_assigned(sorted(granted, key=str))
        if self.external_authority is not None:
            self.external_authority(group.group_id)

    @staticmethod
    def _validate_assignment(
        group: _Group,
        partitions: list[TopicPartition],
        assignment: dict[str, set[TopicPartition]],
    ) -> None:
        seen: dict[TopicPartition, str] = {}
        for member_id, tps in assignment.items():
            if member_id not in group.members:
                raise MessagingError(
                    f"strategy assigned to unknown member {member_id!r}"
                )
            for tp in tps:
                if tp in seen:
                    raise MessagingError(
                        f"{tp} assigned to both {seen[tp]!r} and {member_id!r}"
                    )
                seen[tp] = member_id
        if group.members:
            for tp in partitions:
                if tp not in seen:
                    raise MessagingError(f"{tp} left unassigned")

    # -- queries ----------------------------------------------------------------------

    def assignment_of(self, group_id: str, member_id: str) -> set[TopicPartition]:
        """Current assignment of a member (empty set when absent)."""
        group = self._groups.get(group_id)
        if group is None:
            return set()
        member = group.members.get(member_id)
        return set(member.assignment) if member else set()

    def generation_of(self, group_id: str) -> int:
        """Current generation number (0 before first rebalance)."""
        group = self._groups.get(group_id)
        return group.generation if group else 0

    def members_of(self, group_id: str) -> list[str]:
        """Sorted live member ids."""
        group = self._groups.get(group_id)
        return sorted(group.members) if group else []

    def set_assignment(
        self, group_id: str, assignment: dict[str, set[TopicPartition]]
    ) -> None:
        """Directly install an assignment (external-authority mode).

        The engine's Figure 7 strategy spans multiple groups, which the
        per-group strategy interface cannot express; it computes
        assignments globally and installs them here.
        """
        group = self._group(group_id)
        self._validate_assignment(group, [], assignment)
        group.generation += 1
        for member_id, member in group.members.items():
            assigned = assignment.get(member_id, set())
            revoked = member.assignment - assigned
            granted = assigned - member.assignment
            if member.listener is not None and revoked:
                member.listener.on_partitions_revoked(sorted(revoked, key=str))
            member.assignment = set(assigned)
            if member.listener is not None and granted:
                member.listener.on_partitions_assigned(sorted(granted, key=str))

    def _group(self, group_id: str) -> _Group:
        try:
            return self._groups[group_id]
        except KeyError:
            raise MessagingError(f"unknown group {group_id!r}") from None
