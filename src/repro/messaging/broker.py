"""The message bus: topics, partitions, brokers and committed offsets.

A single in-process object stands in for the Kafka cluster. Brokers are
modelled as leader assignments over partitions — enough to reason about
replication placement and to let the simulator charge per-broker costs —
while the data path is the shared partition logs.
"""

from __future__ import annotations

from typing import Any

from repro.common.errors import MessagingError
from repro.common.hashing import partition_for
from repro.messaging.log import Message, PartitionLog, TopicPartition


class MessageBus:
    """Topic registry + partition logs + committed-offset store."""

    def __init__(self, brokers: int = 1) -> None:
        if brokers <= 0:
            raise ValueError(f"need at least one broker: {brokers}")
        self.broker_count = brokers
        self._logs: dict[TopicPartition, PartitionLog] = {}
        self._topics: dict[str, int] = {}  # topic -> partition count
        self._leaders: dict[TopicPartition, int] = {}
        self._committed: dict[tuple[str, TopicPartition], int] = {}
        self.messages_published = 0

    # -- topic management --------------------------------------------------------

    def create_topic(self, name: str, partitions: int, replication: int = 1) -> None:
        """Create a topic; adding partitions to an existing one is allowed."""
        if partitions <= 0:
            raise MessagingError(f"topic {name!r} needs at least one partition")
        if replication > self.broker_count:
            raise MessagingError(
                f"replication {replication} exceeds broker count {self.broker_count}"
            )
        existing = self._topics.get(name, 0)
        if existing > partitions:
            raise MessagingError(
                f"cannot shrink topic {name!r} from {existing} to {partitions}"
            )
        self._topics[name] = partitions
        for index in range(existing, partitions):
            tp = TopicPartition(name, index)
            self._logs[tp] = PartitionLog(tp, replication)
            self._leaders[tp] = (hash(name) + index) % self.broker_count

    def has_topic(self, name: str) -> bool:
        """True when the topic exists."""
        return name in self._topics

    def partitions_for(self, topic: str) -> int:
        """Partition count of a topic."""
        try:
            return self._topics[topic]
        except KeyError:
            raise MessagingError(f"unknown topic {topic!r}") from None

    def topic_partitions(self, topic: str) -> list[TopicPartition]:
        """All (topic, partition) pairs of a topic."""
        return [TopicPartition(topic, i) for i in range(self.partitions_for(topic))]

    def all_topics(self) -> list[str]:
        """Sorted topic names."""
        return sorted(self._topics)

    def leader_of(self, tp: TopicPartition) -> int:
        """Broker id leading a partition (used by the simulator)."""
        return self._leaders[tp]

    def total_partitions(self) -> int:
        """Total partitions across topics (Kafka-load proxy in §5.3)."""
        return sum(self._topics.values())

    # -- data path -----------------------------------------------------------------

    def log(self, tp: TopicPartition) -> PartitionLog:
        """The log behind a (topic, partition)."""
        try:
            return self._logs[tp]
        except KeyError:
            raise MessagingError(f"unknown partition {tp}") from None

    def publish(self, topic: str, key: Any, value: Any, timestamp: int) -> tuple[TopicPartition, int]:
        """Append with keyed routing; returns ``(tp, offset)``."""
        partitions = self.partitions_for(topic)
        index = partition_for(key, partitions) if key is not None else (
            self.messages_published % partitions
        )
        tp = TopicPartition(topic, index)
        offset = self._logs[tp].append(key, value, timestamp)
        self.messages_published += 1
        return tp, offset

    def read(self, tp: TopicPartition, from_offset: int, max_records: int) -> list[Message]:
        """Read messages at ``from_offset`` onwards."""
        return self.log(tp).read(from_offset, max_records)

    def end_offset(self, tp: TopicPartition) -> int:
        """Log-end offset of a partition."""
        return self.log(tp).end_offset

    # -- committed offsets -------------------------------------------------------------

    def commit_offset(self, group: str, tp: TopicPartition, offset: int) -> None:
        """Record a consumer group's committed position."""
        self._committed[(group, tp)] = offset

    def committed_offset(self, group: str, tp: TopicPartition) -> int:
        """Committed position (0 when the group never committed)."""
        return self._committed.get((group, tp), 0)
