"""Partition logs: append-only, offset-addressed message sequences."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class TopicPartition:
    """The unit of work distribution — a (topic, partition) pair (§3.2)."""

    topic: str
    partition: int

    def __str__(self) -> str:
        return f"{self.topic}-{self.partition}"


@dataclass(frozen=True)
class Message:
    """One log entry."""

    offset: int
    key: Any
    value: Any
    timestamp: int


class PartitionLog:
    """An append-only in-memory log with monotonically increasing offsets."""

    def __init__(self, tp: TopicPartition, replication: int = 1) -> None:
        self.tp = tp
        self.replication = replication
        self._messages: list[Message] = []

    def append(self, key: Any, value: Any, timestamp: int) -> int:
        """Append and return the assigned offset."""
        offset = len(self._messages)
        self._messages.append(Message(offset, key, value, timestamp))
        return offset

    def read(self, from_offset: int, max_records: int) -> list[Message]:
        """Messages with ``offset >= from_offset``, up to ``max_records``."""
        if from_offset < 0:
            from_offset = 0
        return self._messages[from_offset : from_offset + max_records]

    @property
    def end_offset(self) -> int:
        """Offset the next append will receive (aka log-end offset)."""
        return len(self._messages)

    def __len__(self) -> int:
        return len(self._messages)
