"""Baseline engines Railgun is compared against (paper §2.2, §5.1).

- :class:`~repro.baselines.hopping.HoppingWindowEngine` — the
  Flink-style approximation of sliding windows: ``windowSize/hopSize``
  overlapping pane states per key, events discarded after updating all
  panes, results quantized to hop boundaries (the Figure 1 inaccuracy);
- :class:`~repro.baselines.perevent_scan.PerEventScanEngine` — Flink's
  published custom fraud-detection pattern [21]: store every event,
  recompute each aggregation from scratch per event (quadratic);
- :class:`~repro.baselines.lambda_arch.LambdaArchitecture` — periodic
  batch jobs plus a small real-time window (§2.1's costly workaround);
- :class:`~repro.baselines.reference.TrueSlidingReference` — exact
  brute-force sliding-window results used as ground truth in accuracy
  experiments.
"""

from repro.baselines.hopping import HoppingWindowEngine
from repro.baselines.lambda_arch import LambdaArchitecture
from repro.baselines.perevent_scan import PerEventScanEngine
from repro.baselines.reference import TrueSlidingReference

__all__ = [
    "HoppingWindowEngine",
    "PerEventScanEngine",
    "LambdaArchitecture",
    "TrueSlidingReference",
]
