"""Hopping-window engine — the Flink-style baseline (paper §2, §2.2).

Mechanics mirrored from mainstream stream processors:

- a sliding window of size ``ws`` with hop ``s`` is approximated by
  ``ws/s`` overlapping *panes* per key, each covering ``[start, start+ws)``
  with starts at hop multiples;
- an arriving event updates **every** pane containing its timestamp
  (``ws/s`` state updates — the cost ratio of §2.2) and is then
  discarded (no storage, no expiry processing);
- a pane *fires* when event time passes its end; the fired result is
  what rules and queries observe until the next pane fires, so results
  are only refreshed once per hop — the Figure 1 inaccuracy;
- at every hop boundary, pane rotation creates/expires one pane per
  active key (the per-hop maintenance burst the latency simulation
  charges for).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass
class HoppingStats:
    """Cost counters the simulator's Flink model is calibrated from."""

    events: int = 0
    pane_updates: int = 0
    panes_created: int = 0
    panes_expired: int = 0
    fired_windows: int = 0

    @property
    def updates_per_event(self) -> float:
        return self.pane_updates / self.events if self.events else 0.0


class HoppingWindowEngine:
    """``sum``/``count`` per key over hopping windows."""

    def __init__(self, window_ms: int, hop_ms: int) -> None:
        if window_ms <= 0 or hop_ms <= 0:
            raise ValueError("window and hop must be positive")
        if hop_ms > window_ms:
            raise ValueError(
                f"hop {hop_ms} larger than window {window_ms} (step s is "
                "generally not bigger than ws, §2)"
            )
        self.window_ms = window_ms
        self.hop_ms = hop_ms
        self.stats = HoppingStats()
        # key -> pane start -> [sum, count]
        self._panes: dict[object, dict[int, list[float]]] = defaultdict(dict)
        # key -> start of the newest *fired* pane (results visible to queries)
        self._fired: dict[object, tuple[int, float, int]] = {}
        self._watermark = -1

    @property
    def panes_per_event(self) -> int:
        """The §2.2 ratio: window states touched per arriving event."""
        return -(-self.window_ms // self.hop_ms)  # ceil

    def _pane_starts(self, timestamp: int) -> list[int]:
        """All pane starts whose ``[start, start + ws)`` contains ``ts``."""
        first = ((timestamp - self.window_ms) // self.hop_ms + 1) * self.hop_ms
        starts = []
        start = first
        while start <= timestamp:
            starts.append(start)
            start += self.hop_ms
        return starts

    def on_event(self, key: object, timestamp: int, value: float) -> None:
        """Update all covering panes; fire this key's passed panes.

        Firing is lazy per key (as Flink's per-key timers would do), so
        the engine never scans the whole key space on a single event.
        """
        self.stats.events += 1
        if timestamp > self._watermark:
            self._watermark = timestamp
        self._maybe_fire(key, timestamp)
        panes = self._panes[key]
        for start in self._pane_starts(timestamp):
            state = panes.get(start)
            if state is None:
                state = [0.0, 0]
                panes[start] = state
                self.stats.panes_created += 1
            state[0] += value
            state[1] += 1
            self.stats.pane_updates += 1

    # -- queries (observe the last fired window, as a rule engine would) -----

    def count(self, key: object, now: int) -> int:
        """Count from the newest fired pane at ``now`` (0 before any fire)."""
        self._maybe_fire(key, now)
        fired = self._fired.get(key)
        return fired[2] if fired else 0

    def sum(self, key: object, now: int) -> float:
        """Sum from the newest fired pane at ``now``."""
        self._maybe_fire(key, now)
        fired = self._fired.get(key)
        return fired[1] if fired else 0.0

    def _maybe_fire(self, key: object, now: int) -> None:
        panes = self._panes.get(key)
        if not panes:
            return
        fired_start = None
        for start in sorted(panes):
            if start + self.window_ms <= now:
                fired_start = start
        if fired_start is None:
            return
        for start in [s for s in panes if s <= fired_start]:
            state = panes.pop(start)
            if start == fired_start:
                self._fired[key] = (start, state[0], state[1])
                self.stats.fired_windows += 1
            self.stats.panes_expired += 1

    def max_live_count(self, key: object) -> int:
        """Largest count over the key's *live* (unfired) panes.

        The most generous reading possible for hopping windows: an
        early-trigger rule that inspects every open pane per event. Even
        this cannot detect a burst unless some single pane's boundaries
        contain all its events — Figure 1's core argument.
        """
        panes = self._panes.get(key)
        if not panes:
            return 0
        return max(int(state[1]) for state in panes.values())

    def active_pane_count(self) -> int:
        """Total live pane states (the §2.2 memory-scaling story)."""
        return sum(len(panes) for panes in self._panes.values())

    def active_key_count(self) -> int:
        """Keys with live panes (per-hop rotation cost driver)."""
        return sum(1 for panes in self._panes.values() if panes)
