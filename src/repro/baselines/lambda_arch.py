"""Lambda architecture — the long-window workaround (paper §2.1, Fig 2).

"Imprecise but real-time aggregations are combined with precise but
outdated aggregations over complex pipelines": a batch layer recomputes
exact aggregates every ``batch_interval`` over everything older than the
batch boundary, and a speed layer keeps an exact real-time window over
events newer than the boundary. Queries merge the two — accurate only
up to the batch lag, which the accuracy experiments quantify.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass
class LambdaStats:
    """Cost counters: batch reprocessing dominates."""

    events: int = 0
    batch_runs: int = 0
    batch_events_processed: int = 0


class LambdaArchitecture:
    """``sum``/``count`` over a window via batch + speed layers."""

    def __init__(self, window_ms: int, batch_interval_ms: int) -> None:
        if window_ms <= 0 or batch_interval_ms <= 0:
            raise ValueError("window and batch interval must be positive")
        self.window_ms = window_ms
        self.batch_interval_ms = batch_interval_ms
        self.stats = LambdaStats()
        self._all_events: dict[object, list[tuple[int, float]]] = defaultdict(list)
        self._batch_boundary = 0  # events with ts < boundary are batch-owned
        self._batch_results: dict[object, tuple[float, int]] = {}

    def on_event(self, key: object, timestamp: int, value: float) -> None:
        """Ingest (both layers read from the same retained log here)."""
        self.stats.events += 1
        self._all_events[key].append((timestamp, value))
        due_boundary = (timestamp // self.batch_interval_ms) * self.batch_interval_ms
        if due_boundary > self._batch_boundary:
            self._run_batch(due_boundary)

    def _run_batch(self, boundary: int) -> None:
        """Recompute exact per-key aggregates for the batch-owned range.

        The batch job sees events with ``boundary - window < ts <
        boundary`` — it is *exact but stale* by up to one interval.
        """
        self.stats.batch_runs += 1
        self._batch_boundary = boundary
        cutoff = boundary - self.window_ms
        results: dict[object, tuple[float, int]] = {}
        for key, entries in self._all_events.items():
            total = 0.0
            count = 0
            for ts, value in entries:
                self.stats.batch_events_processed += 1
                if cutoff < ts < boundary:
                    total += value
                    count += 1
            if count:
                results[key] = (total, count)
        self._batch_results = results

    def _speed_layer(self, key: object, now: int) -> tuple[float, int]:
        """Exact aggregate over events newer than the batch boundary."""
        total = 0.0
        count = 0
        cutoff = max(self._batch_boundary, now - self.window_ms)
        for ts, value in self._all_events.get(key, []):
            if cutoff <= ts <= now:
                total += value
                count += 1
        return total, count

    def count(self, key: object, now: int) -> int:
        """Merged batch + speed count (stale by up to one interval)."""
        batch = self._batch_results.get(key, (0.0, 0))
        speed = self._speed_layer(key, now)
        return batch[1] + speed[1]

    def sum(self, key: object, now: int) -> float:
        """Merged batch + speed sum."""
        batch = self._batch_results.get(key, (0.0, 0))
        speed = self._speed_layer(key, now)
        return batch[0] + speed[0]
