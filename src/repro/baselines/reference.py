"""Exact sliding-window ground truth for accuracy experiments.

A per-key deque of (timestamp, value) pairs: on every query, expired
entries are dropped and the aggregate recomputed incrementally. This is
the semantics Railgun implements at scale; here it doubles as the test
oracle and the "accurate" reference in Figure 1/Figure 2 experiments.
"""

from __future__ import annotations

from collections import defaultdict, deque


class TrueSlidingReference:
    """Brute-force real-time sliding window ``sum``/``count`` per key."""

    def __init__(self, window_ms: int) -> None:
        if window_ms <= 0:
            raise ValueError(f"window must be positive: {window_ms}")
        self.window_ms = window_ms
        self._entries: dict[object, deque[tuple[int, float]]] = defaultdict(deque)

    def on_event(self, key: object, timestamp: int, value: float) -> None:
        """Ingest one event."""
        entries = self._entries[key]
        entries.append((timestamp, value))
        self._expire(entries, timestamp)

    def _expire(self, entries: deque, now: int) -> None:
        cutoff = now - self.window_ms
        while entries and entries[0][0] <= cutoff:
            entries.popleft()

    def count(self, key: object, now: int) -> int:
        """Exact event count in ``(now - window, now]``."""
        entries = self._entries.get(key)
        if not entries:
            return 0
        self._expire(entries, now)
        return len(entries)

    def sum(self, key: object, now: int) -> float:
        """Exact value sum in ``(now - window, now]``."""
        entries = self._entries.get(key)
        if not entries:
            return 0.0
        self._expire(entries, now)
        return sum(value for _, value in entries)

    def stored_events(self) -> int:
        """Total entries held (memory proxy)."""
        return sum(len(entries) for entries in self._entries.values())
