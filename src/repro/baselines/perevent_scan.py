"""Per-event-rescan engine — Flink's custom fraud pattern (paper [21]).

"For each event, the solution computes each aggregation from scratch by
iterating over all stored events (persisted in RocksDB) for those
matching the window interval. This approach has quadratic performance,
and since Flink was not designed to store events and manage event
expiration, few optimizations are possible" (§2.2). Results are exact
(it is a true sliding window) — the problem is cost, which the stats
expose for the latency model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


@dataclass
class ScanStats:
    """Cost counters: the quadratic blow-up made visible."""

    events: int = 0
    events_scanned: int = 0
    stored_events: int = 0

    @property
    def scans_per_event(self) -> float:
        return self.events_scanned / self.events if self.events else 0.0


class PerEventScanEngine:
    """Exact sliding ``sum``/``count`` by full rescan per event."""

    def __init__(self, window_ms: int, prune_factor: int = 4) -> None:
        if window_ms <= 0:
            raise ValueError(f"window must be positive: {window_ms}")
        self.window_ms = window_ms
        # Flink does not manage expiry; we model the practical variant
        # that prunes very old events occasionally (state TTL), keeping
        # storage bounded at prune_factor x window occupancy.
        self.prune_factor = prune_factor
        self.stats = ScanStats()
        self._store: dict[object, list[tuple[int, float]]] = defaultdict(list)

    def on_event(self, key: object, timestamp: int, value: float) -> tuple[float, int]:
        """Store, rescan the key's events, return exact (sum, count)."""
        self.stats.events += 1
        entries = self._store[key]
        entries.append((timestamp, value))
        self.stats.stored_events += 1
        cutoff = timestamp - self.window_ms
        total = 0.0
        count = 0
        for entry_ts, entry_value in entries:
            self.stats.events_scanned += 1
            if entry_ts > cutoff and entry_ts <= timestamp:
                total += entry_value
                count += 1
        # TTL-style pruning, not per-event expiry (Flink has no notion
        # of per-event window expiry for this pattern).
        if entries and entries[0][0] <= timestamp - self.prune_factor * self.window_ms:
            kept = [(ts, v) for ts, v in entries if ts > cutoff]
            self.stats.stored_events -= len(entries) - len(kept)
            self._store[key] = kept
        return total, count

    def count(self, key: object, now: int) -> int:
        """Exact count (rescan without storing)."""
        cutoff = now - self.window_ms
        entries = self._store.get(key, [])
        self.stats.events_scanned += len(entries)
        return sum(1 for ts, _ in entries if cutoff < ts <= now)

    def sum(self, key: object, now: int) -> float:
        """Exact sum (rescan without storing)."""
        cutoff = now - self.window_ms
        entries = self._store.get(key, [])
        self.stats.events_scanned += len(entries)
        return sum(v for ts, v in entries if cutoff < ts <= now)
