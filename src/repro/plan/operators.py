"""Plan DAG node types.

Nodes are passive descriptions; the traversal logic lives in
:class:`repro.plan.dag.TaskPlan` so the node classes stay trivially
testable. Node identity keys implement the prefix-sharing rule: two
metrics share a node when the key (window spec / filter text / group-by
fields) matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.ast import AggSpec
from repro.query.expressions import Expression
from repro.windows.spec import WindowSpec


@dataclass
class AggregatorNode:
    """Leaf: one aggregation with its state-store namespace."""

    metric_id: int
    agg_index: int
    spec: AggSpec

    @property
    def display_name(self) -> str:
        """Column name in replies, e.g. ``sum(amount)``."""
        return self.spec.metric_name()


@dataclass
class GroupByNode:
    """Partition by field tuple; children are aggregation leaves."""

    fields: tuple[str, ...]
    aggregators: list[AggregatorNode] = field(default_factory=list)

    def key_of(self, event) -> tuple:
        """Group key extracted from one event (missing fields -> None)."""
        return tuple(event.get(name) for name in self.fields)


@dataclass
class FilterNode:
    """Optional predicate; children are group-bys."""

    filter_key: str  # canonical text, "" for no filter
    expression: Expression | None
    group_bys: dict[tuple[str, ...], GroupByNode] = field(default_factory=dict)

    def passes(self, event) -> bool:
        """True when the event satisfies the predicate (or none is set)."""
        if self.expression is None:
            return True
        return self.expression.matches(event)


@dataclass
class WindowNode:
    """Root: one window spec; children are filters."""

    spec: WindowSpec
    filters: dict[str, FilterNode] = field(default_factory=dict)

    def node_count(self) -> int:
        """Total DAG nodes under (and including) this window."""
        total = 1
        for filter_node in self.filters.values():
            total += 1
            for group_by in filter_node.group_bys.values():
                total += 1 + len(group_by.aggregators)
        return total
