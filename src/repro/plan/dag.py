"""The task-plan runtime.

``TaskPlan`` owns the reservoir iterators and the operator DAG for one
task processor. Per processed event it advances each *distinct* iterator
exactly once ("every time a plan advances time, the Window operator
produces the events that arrive and expire, to the downstream operators
of the DAG", §4.1.2), fans the entering/expiring batches through shared
filters and group-bys, folds them into the per-entity aggregator states,
and assembles the reply for the event's own entity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.events.event import Event
from repro.plan.operators import AggregatorNode, FilterNode, GroupByNode, WindowNode
from repro.query.ast import Query
from repro.reservoir.iterator import ReservoirIterator
from repro.reservoir.reservoir import EventReservoir
from repro.state.store import MetricStateStore, encode_group_key
from repro.windows.spec import WindowSpec


@dataclass
class MetricHandle:
    """Everything the plan knows about one registered metric."""

    metric_id: int
    query: Query
    window: WindowNode
    filter: FilterNode
    group_by: GroupByNode
    aggregators: list[AggregatorNode] = field(default_factory=list)

    def display_names(self) -> list[str]:
        """Reply column names."""
        return [node.display_name for node in self.aggregators]


@dataclass
class _IteratorEntry:
    iterator: ReservoirIterator
    spec: WindowSpec
    is_head: bool

    def limit(self, eval_ts: int) -> int | None:
        if self.is_head:
            return self.spec.head_limit(eval_ts)
        return self.spec.tail_limit(eval_ts)


class TaskPlan:
    """Operator DAG + iterator management for one task processor."""

    def __init__(self, reservoir: EventReservoir, state: MetricStateStore) -> None:
        self.reservoir = reservoir
        self.state = state
        self._windows: dict[WindowSpec, WindowNode] = {}
        self._iterators: dict[tuple, _IteratorEntry] = {}
        self._metrics: dict[int, MetricHandle] = {}
        self._next_metric_id = 0
        self.events_processed = 0

    # -- registration -------------------------------------------------------------

    def add_metric(
        self, query: Query, backfill: bool = False, metric_id: int | None = None
    ) -> MetricHandle:
        """Register a parsed query; optionally backfill from history.

        Without backfill the metric starts empty and only accumulates
        events arriving after registration. With backfill (the paper's
        §6 future-work item) the current window contents are read from
        the reservoir's timestamp index and folded in, so the metric is
        immediately as accurate as if it had always existed.

        ``metric_id`` may be pinned by the engine so state-store keys
        stay identical across replicas and restores.
        """
        if metric_id is None:
            metric_id = self._next_metric_id
        elif metric_id in self._metrics:
            raise ValueError(f"metric id {metric_id} already registered")
        self._next_metric_id = max(self._next_metric_id, metric_id) + 1

        window = self._windows.get(query.window)
        if window is None:
            window = WindowNode(query.window)
            self._windows[query.window] = window

        filter_key = repr(query.where) if query.where is not None else ""
        filter_node = window.filters.get(filter_key)
        if filter_node is None:
            filter_node = FilterNode(filter_key, query.where)
            window.filters[filter_key] = filter_node

        group_node = filter_node.group_bys.get(query.group_by)
        if group_node is None:
            group_node = GroupByNode(query.group_by)
            filter_node.group_bys[query.group_by] = group_node

        handle = MetricHandle(metric_id, query, window, filter_node, group_node)
        for agg_index, agg_spec in enumerate(query.aggregations):
            node = AggregatorNode(metric_id, agg_index, agg_spec)
            group_node.aggregators.append(node)
            handle.aggregators.append(node)
        self._metrics[metric_id] = handle

        self._ensure_iterators(query.window, backfill)
        if backfill:
            self._backfill(handle)
        return handle

    def _ensure_iterators(self, spec: WindowSpec, backfill: bool) -> None:
        head_key = spec.head_share_key()
        if head_key not in self._iterators:
            self._iterators[head_key] = _IteratorEntry(
                self.reservoir.new_iterator(spec.delay_ms, name=str(head_key)),
                spec,
                is_head=True,
            )
        tail_key = spec.tail_share_key()
        if tail_key is None or tail_key in self._iterators:
            return
        if backfill and self.reservoir.max_seen_ts >= 0:
            boundary = spec.tail_limit(self.reservoir.max_seen_ts)
            iterator = self.reservoir.new_iterator_at(
                boundary if boundary is not None else -1,
                spec.delay_ms + (spec.size_ms or 0),
                name=str(tail_key),
            )
        else:
            iterator = self.reservoir.new_iterator(
                spec.delay_ms + (spec.size_ms or 0), name=str(tail_key)
            )
        self._iterators[tail_key] = _IteratorEntry(iterator, spec, is_head=False)

    def _backfill(self, handle: MetricHandle) -> None:
        """Prime a new metric's state with the current window contents."""
        now = self.reservoir.max_seen_ts
        if now < 0:
            return
        spec = handle.query.window
        upper = spec.head_limit(now)
        lower = spec.tail_limit(now)
        events = self.reservoir.read_range(
            lower if lower is not None else -1, upper
        )
        grouped: dict[tuple, list[Event]] = {}
        for event in events:
            if not handle.filter.passes(event):
                continue
            grouped.setdefault(handle.group_by.key_of(event), []).append(event)
        for key, key_events in grouped.items():
            key_bytes = encode_group_key(key)
            for node in handle.aggregators:
                enters = [
                    (self._value_of(node, event), event) for event in key_events
                ]
                self.state.apply(
                    node.metric_id, node.agg_index, node.spec.name, key_bytes,
                    enters, (),
                )

    # -- metric catalogue ------------------------------------------------------------

    @property
    def metric_count(self) -> int:
        """Registered metrics."""
        return len(self._metrics)

    @property
    def iterator_count(self) -> int:
        """Distinct reservoir iterators (the Figure 9b x-axis)."""
        return len(self._iterators)

    def node_count(self) -> int:
        """Total DAG nodes (windows + filters + group-bys + aggregators)."""
        return sum(window.node_count() for window in self._windows.values())

    def metrics(self) -> list[MetricHandle]:
        """All registered metric handles."""
        return list(self._metrics.values())

    def remove_metric(self, metric_id: int) -> None:
        """Unregister a metric (operational request from the client)."""
        handle = self._metrics.pop(metric_id, None)
        if handle is None:
            return
        handle.group_by.aggregators = [
            node for node in handle.group_by.aggregators
            if node.metric_id != metric_id
        ]
        self._prune_empty_nodes()

    def _prune_empty_nodes(self) -> None:
        for spec, window in list(self._windows.items()):
            for filter_key, filter_node in list(window.filters.items()):
                for group_key, group_node in list(filter_node.group_bys.items()):
                    if not group_node.aggregators:
                        del filter_node.group_bys[group_key]
                if not filter_node.group_bys:
                    del window.filters[filter_key]
            if not window.filters:
                del self._windows[spec]
                self._release_iterators_for(spec)

    def _release_iterators_for(self, spec: WindowSpec) -> None:
        still_used_heads = {w.head_share_key() for w in self._windows}
        still_used_tails = {w.tail_share_key() for w in self._windows}
        for key in (spec.head_share_key(), spec.tail_share_key()):
            if key is None or key in still_used_heads or key in still_used_tails:
                continue
            entry = self._iterators.pop(key, None)
            if entry is not None:
                self.reservoir.release_iterator(entry.iterator)

    # -- checkpoint support ---------------------------------------------------------

    def iterator_positions(self) -> dict[str, tuple[int, int]]:
        """Current cursor positions keyed by canonical share-key text."""
        return {
            repr(key): entry.iterator.position
            for key, entry in self._iterators.items()
        }

    def set_iterator_positions(self, positions: dict[str, tuple[int, int]]) -> None:
        """Restore cursor positions saved by :meth:`iterator_positions`.

        Called after metrics are re-registered during recovery, so the
        iterators line up with the restored aggregator states.
        """
        for key, entry in self._iterators.items():
            saved = positions.get(repr(key))
            if saved is None:
                continue
            entry.iterator.chunk_id, entry.iterator.index = saved
            entry.iterator.invalidate_cached_chunk()
            entry.iterator.missed.clear()

    # -- event processing -----------------------------------------------------------

    def process_event(
        self, event: Event, eval_ts: int | None = None, tie_cap: int | None = None
    ) -> dict[int, dict[str, Any]]:
        """Advance time to ``event`` and return per-metric replies.

        The reply for each metric is the aggregation values for *this
        event's* group key — "all the aggregations computed for that
        particular event" (§3.1).

        ``eval_ts`` pins the evaluation time explicitly. The batched
        ingestion path appends a whole run to the reservoir before the
        plan advances, which pushes ``reservoir.max_seen_ts`` past the
        events still awaiting their plan turn — the caller passes each
        event's own in-order timestamp to keep replies identical to the
        per-event interleaving.

        ``tie_cap`` bounds, for iterators whose limit is exactly
        ``eval_ts`` (delay-0 window heads), how many events *at* that
        timestamp one advance may consume. The batched path passes 1:
        a timestamp-tied run is fully in the reservoir before any plan
        turn, and on the per-event path each tie member's reply sees
        only the members appended before it — the cap reproduces that
        cut-off exactly. Iterators whose limit falls below ``eval_ts``
        are unaffected: every event at or below their limit is already
        visible on both paths.
        """
        self.events_processed += 1
        if eval_ts is None:
            eval_ts = max(event.timestamp, self.reservoir.max_seen_ts)

        # 1. Advance each distinct iterator exactly once.
        batches: dict[tuple, list[Event]] = {}
        for key, entry in self._iterators.items():
            limit = entry.limit(eval_ts)
            if limit is None:
                batches[key] = []
            elif tie_cap is not None and limit == eval_ts:
                batches[key] = entry.iterator.advance_upto(limit, tie_cap)
            else:
                batches[key] = entry.iterator.advance_upto(limit)

        # 2..4. Window -> Filter -> GroupBy -> Aggregator, sharing prefixes.
        updated: dict[tuple[int, int, bytes], Any] = {}
        for spec, window in self._windows.items():
            enters = batches.get(spec.head_share_key(), [])
            tail_key = spec.tail_share_key()
            exits = batches.get(tail_key, []) if tail_key is not None else []
            if not enters and not exits:
                continue
            for filter_node in window.filters.values():
                f_enters = [e for e in enters if filter_node.passes(e)]
                f_exits = [e for e in exits if filter_node.passes(e)]
                if not f_enters and not f_exits:
                    continue
                for group_node in filter_node.group_bys.values():
                    self._apply_group(
                        group_node, f_enters, f_exits, updated
                    )

        # 5. Assemble the reply for this event's own keys.
        return self._build_reply(event, updated)

    def process_event_readonly(self, event: Event) -> dict[int, dict[str, Any]]:
        """Reply for an event without advancing time or mutating state.

        Used for duplicates and policy-discarded out-of-order events:
        the client still gets the entity's current aggregations, but the
        window does not move (§4.1.1 — duplicates are never processed
        twice).
        """
        return self._build_reply(event, {})

    def _apply_group(
        self,
        group_node: GroupByNode,
        enters: list[Event],
        exits: list[Event],
        updated: dict[tuple[int, int, bytes], Any],
    ) -> None:
        per_key: dict[tuple, tuple[list[Event], list[Event]]] = {}
        for event in enters:
            per_key.setdefault(group_node.key_of(event), ([], []))[0].append(event)
        for event in exits:
            per_key.setdefault(group_node.key_of(event), ([], []))[1].append(event)
        for key, (key_enters, key_exits) in per_key.items():
            key_bytes = encode_group_key(key)
            for node in group_node.aggregators:
                result = self.state.apply(
                    node.metric_id,
                    node.agg_index,
                    node.spec.name,
                    key_bytes,
                    [(self._value_of(node, e), e) for e in key_enters],
                    [(self._value_of(node, e), e) for e in key_exits],
                )
                updated[(node.metric_id, node.agg_index, key_bytes)] = result

    @staticmethod
    def _value_of(node: AggregatorNode, event: Event) -> Any:
        if node.spec.field is None:
            return True  # count(*): every event counts
        return event.get(node.spec.field)

    def _build_reply(
        self,
        event: Event,
        updated: dict[tuple[int, int, bytes], Any],
    ) -> dict[int, dict[str, Any]]:
        replies: dict[int, dict[str, Any]] = {}
        for handle in self._metrics.values():
            key_bytes = encode_group_key(handle.group_by.key_of(event))
            values: dict[str, Any] = {}
            for node in handle.aggregators:
                cache_key = (node.metric_id, node.agg_index, key_bytes)
                if cache_key in updated:
                    values[node.display_name] = updated[cache_key]
                else:
                    values[node.display_name] = self.state.peek(
                        node.metric_id, node.agg_index, node.spec.name, key_bytes
                    )
            replies[handle.metric_id] = values
        return replies
