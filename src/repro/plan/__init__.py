"""Task plans (paper §4.1.2, Figure 6).

A task plan is a DAG of operations computing all the metrics of a task,
in the strict order ``Window -> Filter -> GroupBy -> Aggregator``.
Metrics sharing a prefix (same window, same filter, same group-by) share
the corresponding DAG nodes, so shared work — especially window
iteration — happens once.
"""

from repro.plan.dag import MetricHandle, TaskPlan
from repro.plan.operators import AggregatorNode, FilterNode, GroupByNode, WindowNode

__all__ = [
    "TaskPlan",
    "MetricHandle",
    "WindowNode",
    "FilterNode",
    "GroupByNode",
    "AggregatorNode",
]
