"""Storage backends for the reservoir and the LSM store.

The paper's reservoir writes chunks to "ordered and append-only files"
on locally-attached disks (§4.1.1), and relies on OS read-ahead for
sequential access. We abstract the file surface so that:

- :class:`FileStorage` writes real files under a directory (used by the
  examples and durability tests), and
- :class:`MemoryStorage` keeps everything in process (used by the unit
  tests and the simulator), while both count I/O operations so the
  experiment harness can charge latency for them.

Files are append-only while *open* and become immutable once *sealed* —
the same life-cycle the paper gives reservoir files.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.common.errors import StorageError


@dataclass
class IoStats:
    """Operation counters a latency model can translate into time."""

    appends: int = 0
    appended_bytes: int = 0
    reads: int = 0
    read_bytes: int = 0
    seals: int = 0
    deletes: int = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain dict (for reports and tests)."""
        return {
            "appends": self.appends,
            "appended_bytes": self.appended_bytes,
            "reads": self.reads,
            "read_bytes": self.read_bytes,
            "seals": self.seals,
            "deletes": self.deletes,
        }


class StorageBackend(ABC):
    """A namespace of append-only, seal-able byte files."""

    def __init__(self) -> None:
        self.stats = IoStats()

    @abstractmethod
    def create(self, name: str) -> None:
        """Create an empty open file; error if it already exists."""

    @abstractmethod
    def append(self, name: str, data: bytes) -> int:
        """Append to an open file; return the offset the data landed at."""

    @abstractmethod
    def read(self, name: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``; short reads are errors."""

    @abstractmethod
    def read_all(self, name: str) -> bytes:
        """Read a whole file."""

    @abstractmethod
    def size(self, name: str) -> int:
        """Current size of a file in bytes."""

    @abstractmethod
    def seal(self, name: str) -> None:
        """Make a file immutable; further appends raise."""

    @abstractmethod
    def is_sealed(self, name: str) -> bool:
        """True once :meth:`seal` was called on the file."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove a file (sealed or not)."""

    @abstractmethod
    def exists(self, name: str) -> bool:
        """True if the file exists."""

    @abstractmethod
    def list(self) -> list[str]:
        """All file names, sorted."""


class MemoryStorage(StorageBackend):
    """In-process storage with the same semantics as file storage."""

    def __init__(self) -> None:
        super().__init__()
        self._files: dict[str, bytearray] = {}
        self._sealed: set[str] = set()

    def create(self, name: str) -> None:
        if name in self._files:
            raise StorageError(f"file already exists: {name}")
        self._files[name] = bytearray()

    def append(self, name: str, data: bytes) -> int:
        buf = self._file(name)
        if name in self._sealed:
            raise StorageError(f"cannot append to sealed file: {name}")
        offset = len(buf)
        buf.extend(data)
        self.stats.appends += 1
        self.stats.appended_bytes += len(data)
        return offset

    def read(self, name: str, offset: int, length: int) -> bytes:
        buf = self._file(name)
        end = offset + length
        if end > len(buf):
            raise StorageError(
                f"short read on {name}: wanted [{offset}, {end}), size {len(buf)}"
            )
        self.stats.reads += 1
        self.stats.read_bytes += length
        return bytes(buf[offset:end])

    def read_all(self, name: str) -> bytes:
        buf = self._file(name)
        self.stats.reads += 1
        self.stats.read_bytes += len(buf)
        return bytes(buf)

    def size(self, name: str) -> int:
        return len(self._file(name))

    def seal(self, name: str) -> None:
        self._file(name)
        self._sealed.add(name)
        self.stats.seals += 1

    def is_sealed(self, name: str) -> bool:
        self._file(name)
        return name in self._sealed

    def delete(self, name: str) -> None:
        self._file(name)
        del self._files[name]
        self._sealed.discard(name)
        self.stats.deletes += 1

    def exists(self, name: str) -> bool:
        return name in self._files

    def list(self) -> list[str]:
        return sorted(self._files)

    def _file(self, name: str) -> bytearray:
        try:
            return self._files[name]
        except KeyError:
            raise StorageError(f"no such file: {name}") from None


class FileStorage(StorageBackend):
    """Real files under ``root``; names may contain ``/`` subpaths."""

    _SEAL_SUFFIX = ".sealed"

    def __init__(self, root: str) -> None:
        super().__init__()
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str) -> str:
        path = os.path.normpath(os.path.join(self.root, name))
        if not path.startswith(os.path.abspath(self.root) if os.path.isabs(self.root) else self.root):
            raise StorageError(f"file name escapes storage root: {name}")
        return path

    def create(self, name: str) -> None:
        path = self._path(name)
        if os.path.exists(path):
            raise StorageError(f"file already exists: {name}")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb"):
            pass

    def append(self, name: str, data: bytes) -> int:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        if self.is_sealed(name):
            raise StorageError(f"cannot append to sealed file: {name}")
        with open(path, "ab") as handle:
            offset = handle.tell()
            handle.write(data)
        self.stats.appends += 1
        self.stats.appended_bytes += len(data)
        return offset

    def read(self, name: str, offset: int, length: int) -> bytes:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read(length)
        if len(data) != length:
            raise StorageError(
                f"short read on {name}: wanted {length} at {offset}, got {len(data)}"
            )
        self.stats.reads += 1
        self.stats.read_bytes += length
        return data

    def read_all(self, name: str) -> bytes:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        with open(path, "rb") as handle:
            data = handle.read()
        self.stats.reads += 1
        self.stats.read_bytes += len(data)
        return data

    def size(self, name: str) -> int:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        return os.path.getsize(path)

    def seal(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        with open(path + self._SEAL_SUFFIX, "wb"):
            pass
        self.stats.seals += 1

    def is_sealed(self, name: str) -> bool:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        return os.path.exists(path + self._SEAL_SUFFIX)

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise StorageError(f"no such file: {name}")
        os.remove(path)
        if os.path.exists(path + self._SEAL_SUFFIX):
            os.remove(path + self._SEAL_SUFFIX)
        self.stats.deletes += 1

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list(self) -> list[str]:
        names: list[str] = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                if filename.endswith(self._SEAL_SUFFIX):
                    continue
                full = os.path.join(dirpath, filename)
                names.append(os.path.relpath(full, self.root))
        return sorted(names)
