"""Latency recording and percentile estimation.

The paper reports full latency distributions on a percentile grid
(0, 50, 75, 90, 95, 99, 99.9, 99.99, 99.999, 100 — Figures 8 and 9) and
p95/p99.9 series (Figure 10). :class:`LatencyRecorder` is an
HdrHistogram-style recorder: values are bucketed with bounded relative
error so millions of samples cost a fixed, small amount of memory, and
high percentiles stay accurate.

It also implements the coordinated-omission correction the paper applies
(§5: "latencies are corrected to take into account the coordination
omission problem"): when a recorded value exceeds the injector's expected
inter-arrival interval, the missing back-to-back samples are synthesized.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

#: The percentile grid used across the paper's latency figures.
PERCENTILE_GRID = (0.0, 50.0, 75.0, 90.0, 95.0, 99.0, 99.9, 99.99, 99.999, 100.0)


class LatencyRecorder:
    """Log-bucketed histogram of latency samples (milliseconds, float).

    Buckets grow geometrically: bucket ``i`` covers
    ``[min_value * growth**i, min_value * growth**(i+1))``, giving a
    bounded relative error of ``growth - 1`` (default 1%) at any scale
    from microseconds to minutes.
    """

    def __init__(self, min_value_ms: float = 0.001, relative_error: float = 0.01) -> None:
        if min_value_ms <= 0:
            raise ValueError("min_value_ms must be positive")
        if not 0 < relative_error < 1:
            raise ValueError("relative_error must be in (0, 1)")
        self._min = min_value_ms
        self._growth = 1.0 + relative_error
        self._log_growth = math.log(self._growth)
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._min_seen = math.inf

    def __len__(self) -> int:
        return self._count

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self._count

    @property
    def max_value(self) -> float:
        """Largest recorded sample (exact, not bucketed)."""
        return self._max

    @property
    def min_value(self) -> float:
        """Smallest recorded sample (exact, not bucketed)."""
        return 0.0 if self._count == 0 else self._min_seen

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded samples."""
        return self._sum / self._count if self._count else 0.0

    def _bucket_index(self, value: float) -> int:
        if value <= self._min:
            return 0
        return 1 + int(math.log(value / self._min) / self._log_growth)

    def _bucket_value(self, index: int) -> float:
        if index == 0:
            return self._min
        # Midpoint of the geometric bucket keeps the estimate unbiased.
        low = self._min * self._growth ** (index - 1)
        return low * (1.0 + (self._growth - 1.0) / 2.0)

    def record(self, value_ms: float, count: int = 1) -> None:
        """Record ``count`` occurrences of a latency sample."""
        if value_ms < 0:
            raise ValueError(f"negative latency: {value_ms}")
        if count <= 0:
            raise ValueError(f"count must be positive: {count}")
        idx = self._bucket_index(value_ms)
        self._buckets[idx] = self._buckets.get(idx, 0) + count
        self._count += count
        self._sum += value_ms * count
        if value_ms > self._max:
            self._max = value_ms
        if value_ms < self._min_seen:
            self._min_seen = value_ms

    def record_corrected(self, value_ms: float, expected_interval_ms: float) -> None:
        """Record with coordinated-omission correction.

        If a sample exceeds the expected inter-arrival interval of an
        open-loop injector, the stalled injector *would have* produced
        additional requests that all queue behind the slow one; we
        synthesize those phantom samples at ``value - k*interval`` as
        HdrHistogram does.
        """
        self.record(value_ms)
        if expected_interval_ms <= 0:
            return
        missing = value_ms - expected_interval_ms
        while missing >= expected_interval_ms:
            self.record(missing)
            missing -= expected_interval_ms

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0..100)."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if self._count == 0:
            return 0.0
        if pct == 0.0:
            return self.min_value
        if pct == 100.0:
            return self._max
        target = pct / 100.0 * self._count
        running = 0
        for idx in sorted(self._buckets):
            running += self._buckets[idx]
            if running >= target:
                # Clamp the bucket-midpoint estimate to the observed
                # range so the percentile function stays monotone with
                # the exact min/max endpoints.
                estimate = self._bucket_value(idx)
                return min(max(estimate, self.min_value), self._max)
        return self._max

    def percentiles(self, grid: Iterable[float] = PERCENTILE_GRID) -> dict[float, float]:
        """Estimate several percentiles in one sorted pass."""
        return {pct: self.percentile(pct) for pct in grid}

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold another recorder's samples into this one.

        Both recorders must share bucket geometry; merging is how the
        multi-processor simulation combines per-queue recorders into the
        cluster-wide distribution.
        """
        if (other._min, other._growth) != (self._min, self._growth):
            raise ValueError("cannot merge recorders with different geometry")
        for idx, count in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + count
        self._count += other._count
        self._sum += other._sum
        self._max = max(self._max, other._max)
        self._min_seen = min(self._min_seen, other._min_seen)

    def summary(self) -> dict[str, float]:
        """A compact dict of the headline statistics."""
        return {
            "count": float(self._count),
            "mean": self.mean,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "p99.9": self.percentile(99.9),
            "max": self._max,
        }
