"""Shared substrate: clock, errors, hashing, serde, compression, stats."""

from repro.common.clock import ManualClock, SystemClock, Clock
from repro.common.errors import (
    ReproError,
    SchemaError,
    SerdeError,
    StorageError,
    QueryError,
    MessagingError,
    EngineError,
    CheckpointError,
)
from repro.common.hashing import fnv1a_64, stable_hash
from repro.common.percentiles import LatencyRecorder, PERCENTILE_GRID

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "ReproError",
    "SchemaError",
    "SerdeError",
    "StorageError",
    "QueryError",
    "MessagingError",
    "EngineError",
    "CheckpointError",
    "fnv1a_64",
    "stable_hash",
    "LatencyRecorder",
    "PERCENTILE_GRID",
]
