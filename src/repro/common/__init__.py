"""Shared substrate: clock, errors, hashing, serde, compression, stats."""

from repro.common.clock import Clock, ManualClock, SystemClock
from repro.common.errors import (
    CheckpointError,
    EngineError,
    MessagingError,
    QueryError,
    ReproError,
    SchemaError,
    SerdeError,
    StorageError,
)
from repro.common.hashing import fnv1a_64, stable_hash
from repro.common.percentiles import PERCENTILE_GRID, LatencyRecorder

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "ReproError",
    "SchemaError",
    "SerdeError",
    "StorageError",
    "QueryError",
    "MessagingError",
    "EngineError",
    "CheckpointError",
    "fnv1a_64",
    "stable_hash",
    "LatencyRecorder",
    "PERCENTILE_GRID",
]
