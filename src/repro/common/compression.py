"""Pluggable compression codecs for reservoir chunks and SSTable blocks.

The paper (§4.1.1) compresses chunks "aggressively to guarantee a good
compression ratio", trading CPU for storage because events are
replicated across task processors. We expose a small codec registry so
the ablation bench can sweep codecs (none / zlib levels) and measure the
storage-vs-deserialization trade-off the paper alludes to.
"""

from __future__ import annotations

import zlib
from abc import ABC, abstractmethod

from repro.common.errors import SerdeError


class Codec(ABC):
    """A reversible byte-level compressor."""

    #: single-byte wire id stored alongside compressed payloads
    wire_id: int = -1
    name: str = "abstract"

    @abstractmethod
    def compress(self, data: bytes) -> bytes:
        """Compress ``data``."""

    @abstractmethod
    def decompress(self, data: bytes) -> bytes:
        """Decompress ``data`` (inverse of :meth:`compress`)."""


class NoneCodec(Codec):
    """Identity codec — useful as an ablation baseline."""

    wire_id = 0
    name = "none"

    def compress(self, data: bytes) -> bytes:
        return data

    def decompress(self, data: bytes) -> bytes:
        return data


class ZlibCodec(Codec):
    """zlib/DEFLATE at a configurable level (1 = fast, 9 = aggressive)."""

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise ValueError(f"zlib level out of range: {level}")
        self.level = level
        self.wire_id = level  # wire ids 1..9 reserved for zlib levels

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        try:
            return zlib.decompress(data)
        except zlib.error as exc:
            raise SerdeError(f"corrupt zlib payload: {exc}") from exc


_CODECS: dict[int, Codec] = {0: NoneCodec()}
for _level in range(1, 10):
    _CODECS[_level] = ZlibCodec(_level)


def codec_by_id(wire_id: int) -> Codec:
    """Look up a codec by its single-byte wire id."""
    try:
        return _CODECS[wire_id]
    except KeyError:
        raise SerdeError(f"unknown codec id {wire_id}") from None


def codec_by_name(name: str) -> Codec:
    """Look up a codec by name: ``"none"``, ``"zlib"`` or ``"zlib:<level>"``."""
    if name == "none":
        return _CODECS[0]
    if name == "zlib":
        return _CODECS[6]
    if name.startswith("zlib:"):
        try:
            level = int(name.split(":", 1)[1])
        except ValueError:
            raise SerdeError(f"bad codec spec {name!r}") from None
        return codec_by_id(level)
    raise SerdeError(f"unknown codec {name!r}")


def compress_with_header(codec: Codec, data: bytes) -> bytes:
    """Compress and prepend the codec wire id so readers self-describe."""
    return bytes([codec.wire_id]) + codec.compress(data)


def decompress_with_header(payload: bytes) -> bytes:
    """Inverse of :func:`compress_with_header`."""
    if not payload:
        raise SerdeError("empty compressed payload")
    codec = codec_by_id(payload[0])
    return codec.decompress(payload[1:])
