"""Exception hierarchy for the Railgun reproduction.

Every package raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors (``TypeError``
and friends propagate untouched).
"""


class ReproError(Exception):
    """Base class for all library errors."""


class SchemaError(ReproError):
    """Schema registration, lookup or compatibility failure."""


class SerdeError(ReproError):
    """Serialization or deserialization failure (corrupt/truncated data)."""


class StorageError(ReproError):
    """Storage backend failure (missing file, bad checksum, sealed file)."""


class QueryError(ReproError):
    """Query parse or validation failure."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class ExpressionError(QueryError):
    """Filter-expression parse or evaluation failure."""


class MessagingError(ReproError):
    """Messaging layer failure (unknown topic, fenced consumer, ...)."""


class RebalanceInProgress(MessagingError):
    """Raised when an operation races a consumer-group rebalance."""


class EngineError(ReproError):
    """Engine-level failure (bad stream, missing task, recovery error)."""


class CheckpointError(EngineError):
    """Checkpoint creation or restore failure."""


class BackfillError(EngineError):
    """Metric backfill failure (reservoir data missing for range)."""
