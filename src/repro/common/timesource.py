"""The time plane: one injectable source for every clock read and sleep.

Railgun has two notions of time. **Event time** (the paper's §2 model:
every event carries an integer-millisecond timestamp) drives window
semantics and is already virtual — the engine takes a :class:`Clock`.
**Infrastructure time** (deadlines, heartbeats, backoff, latency
measurement) used to reach straight for :mod:`time`, which made every
fault suite either sleep for real seconds or be unwritable. This module
unifies both behind :class:`TimeSource`:

- :class:`SystemTimeSource` — real monotonic time, optionally
  *compressed* by ``$RAILGUN_TIME_SCALE``: at scale ``S`` every
  monotonic read runs ``S`` times faster and every sleep is ``S`` times
  shorter, uniformly, so timeout-heavy fault suites spanning multiple
  processes (which cannot share a Python object) run 10–50× faster
  while every deadline/heartbeat/backoff relationship is preserved.
  Monotonic values stay comparable *across processes* (they are the
  system-wide ``CLOCK_MONOTONIC`` scaled by a shared constant), which
  is what the shared-memory ring heartbeats require.
- :class:`DeterministicTimeSource` — fully virtual time for
  single-process tests and the chaos harness. ``sleep()`` parks the
  calling thread as a *waiter*; when every participating thread is
  parked, virtual time jumps straight to the earliest wakeup — a
  timeout-heavy suite runs in microseconds of real time, and wakeup
  order is a deterministic function of the requested deadlines.

The old :class:`Clock`/:class:`ManualClock` event-time abstraction is
folded in here (``common/clock.py`` re-exports them): every
``TimeSource`` offers :meth:`TimeSource.event_clock`, a ``Clock`` view
over the same timeline, so a test can drive engine event-time and
infrastructure wall-time from one deterministic object.

The three deadline-loop idioms that used to be hand-rolled per call
site (compute ``deadline``, compare, ``sleep`` a poll) are provided
once as :meth:`TimeSource.deadline` and :meth:`TimeSource.wait_until`.
``tools/check_time.py`` lints that no module under ``src/repro`` other
than this one calls ``time.time``/``time.monotonic``/``time.sleep``.
"""

from __future__ import annotations

import math
import os
import threading
import time as _time
from abc import ABC, abstractmethod
from typing import Callable

#: Environment knob compressing real time; mirrors ``RAILGUN_TRANSPORT``
#: / ``RAILGUN_DURABLE_DIR``. Inherited by child processes, so every
#: member of a cluster observes the same scaled clock.
TIME_SCALE_ENV = "RAILGUN_TIME_SCALE"

#: Sanity ceiling for the scale: beyond this, scaled sleeps round to
#: zero and spin loops would burn a core without making tests faster.
MAX_TIME_SCALE = 1000.0


def parse_time_scale(value: str | None) -> float:
    """Parse a ``$RAILGUN_TIME_SCALE`` value; unset/empty means 1.0.

    Misconfiguration is loud: a garbage value raises instead of
    silently running the suite at real time (the failure mode would be
    a "passing" fault suite that quietly took 50× longer than CI
    budgets for).
    """
    if value is None or not value.strip():
        return 1.0
    try:
        scale = float(value)
    except ValueError:
        raise ValueError(
            f"bad {TIME_SCALE_ENV} value {value!r}: expected a number"
        ) from None
    if math.isnan(scale) or not (0.0 < scale <= MAX_TIME_SCALE):
        raise ValueError(
            f"bad {TIME_SCALE_ENV} value {value!r}: "
            f"must be in (0, {MAX_TIME_SCALE:g}]"
        )
    return scale


class Deadline:
    """A point on a source's monotonic timeline, with remaining/expired.

    Replaces the hand-rolled ``deadline = time.monotonic() + t`` loops:
    construct via :meth:`TimeSource.deadline`, then test
    :meth:`expired` (or budget sleeps with :meth:`remaining`).
    ``timeout=None`` never expires.
    """

    __slots__ = ("_source", "at")

    def __init__(self, source: "TimeSource", timeout: float | None) -> None:
        self._source = source
        self.at = None if timeout is None else source.monotonic() + timeout

    def remaining(self) -> float:
        """Seconds left (``inf`` for a ``None`` timeout, floored at 0)."""
        if self.at is None:
            return math.inf
        return max(0.0, self.at - self._source.monotonic())

    def expired(self) -> bool:
        if self.at is None:
            return False
        return self._source.monotonic() >= self.at


class TimeSource(ABC):
    """Monotonic time + sleeping, injectable at every layer.

    ``monotonic()``/``monotonic_ns()`` are the same timeline at two
    precisions (``monotonic_ns() == int(monotonic() * 1e9)`` up to
    float rounding). ``sleep`` blocks the calling thread for that much
    *source* time — which may be compressed real time or purely
    virtual.
    """

    @abstractmethod
    def monotonic(self) -> float:
        """Seconds on this source's monotonic timeline."""

    @abstractmethod
    def monotonic_ns(self) -> int:
        """Nanoseconds on the same timeline as :meth:`monotonic`."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Block the calling thread for ``seconds`` of source time."""

    @abstractmethod
    def wall_ms(self) -> int:
        """Epoch-style wall clock in integer milliseconds (event time)."""

    def real_delay(self, seconds: float) -> float:
        """Wall-clock seconds a cooperative waiter (e.g. ``asyncio``)
        should actually pause to represent ``seconds`` of source time.

        The bridge for code that cannot call :meth:`sleep` because it
        would block an event loop: ``await asyncio.sleep(ts.real_delay(s))``.
        A deterministic source advances virtual time instead and
        returns 0.0.
        """
        return seconds

    def deadline(self, timeout: float | None) -> Deadline:
        """A :class:`Deadline` ``timeout`` seconds from now."""
        return Deadline(self, timeout)

    def wait_until(
        self,
        predicate: Callable[[], object],
        timeout: float | None,
        poll: float = 0.005,
    ) -> bool:
        """Poll ``predicate`` every ``poll`` seconds until truthy or
        ``timeout`` expires; returns the final truthiness.

        The one deadline-loop idiom: callers that must raise on timeout
        do ``if not ts.wait_until(...): raise``. One last check runs
        *after* expiry so a predicate that became true during the final
        sleep still wins.
        """
        limit = self.deadline(timeout)
        while not predicate():
            if limit.expired():
                return bool(predicate())
            self.sleep(min(poll, limit.remaining()))
        return True

    def event_clock(self, start_ms: int | None = None) -> "Clock":
        """A :class:`Clock` (event-time, integer ms) view of this source.

        With ``start_ms`` the view starts there and advances with the
        source's monotonic timeline; without it, the view reads the
        source's wall clock directly.
        """
        if start_ms is None:
            return SystemClock(self)
        return _OffsetClock(self, start_ms)


class SystemTimeSource(TimeSource):
    """Real time, uniformly compressed by ``$RAILGUN_TIME_SCALE``.

    At scale ``S``: ``monotonic()`` is the system-wide monotonic clock
    times ``S`` (still monotonic, still cross-process comparable) and
    ``sleep(s)`` blocks ``s/S`` real seconds. Scale 1.0 (the default)
    is plain :mod:`time` behavior. The wall clock (event time) is
    **not** scaled — event timestamps must stay meaningful off-host.
    """

    def __init__(self, scale: float | None = None) -> None:
        if scale is None:
            scale = parse_time_scale(os.environ.get(TIME_SCALE_ENV))
        elif math.isnan(scale) or not (0.0 < scale <= MAX_TIME_SCALE):
            raise ValueError(f"time scale must be in (0, {MAX_TIME_SCALE:g}]: {scale}")
        self.scale = float(scale)

    def monotonic(self) -> float:
        if self.scale == 1.0:
            return _time.monotonic()
        return _time.monotonic() * self.scale

    def monotonic_ns(self) -> int:
        if self.scale == 1.0:
            return _time.monotonic_ns()
        return int(_time.monotonic_ns() * self.scale)

    def sleep(self, seconds: float) -> None:
        _time.sleep(max(0.0, seconds) / self.scale)

    def wall_ms(self) -> int:
        return int(_time.time() * 1000)

    def real_delay(self, seconds: float) -> float:
        return max(0.0, seconds) / self.scale


class DeterministicTimeSource(TimeSource):
    """Virtual time: explicit :meth:`advance` plus parked-waiter jumps.

    Threads *participate* by sleeping on this source. ``sleep()`` parks
    the caller as a waiter at ``now + seconds``; whenever every live
    participating thread is parked, virtual time jumps to the earliest
    requested wakeup and exactly the waiters due at that instant wake —
    so wakeup order is the deadline order, not the scheduler's whim.
    A single-threaded caller's ``sleep`` therefore returns immediately
    after advancing virtual time — the property the chaos harness and
    the admission tests rely on for "zero real sleeping".

    ``sleep(0)`` is a fairness yield: it briefly releases the GIL and
    returns without advancing virtual time or parking (a spinner is
    *runnable*, and runnable work must hold time still).

    :meth:`advance` steps through intermediate waiter deadlines in
    order, waiting (in real time, briefly) for each woken thread to
    unpark before moving further, so a manual advance observes the same
    deterministic wakeup order as the automatic jumps.
    """

    def __init__(self, start: float = 0.0, wall_start_ms: int = 0) -> None:
        if start < 0:
            raise ValueError(f"time cannot start negative: {start}")
        self._now = float(start)
        self._start = float(start)
        self._wall_start_ms = int(wall_start_ms)
        self._cond = threading.Condition()
        self._waiters: dict[threading.Thread, float] = {}
        self._participants: set[threading.Thread] = set()
        #: threads woken in order — the observable for ordering tests.
        self.wake_log: list[str] = []

    # -- reads -----------------------------------------------------------------

    def monotonic(self) -> float:
        with self._cond:
            return self._now

    def monotonic_ns(self) -> int:
        return int(round(self.monotonic() * 1e9))

    def wall_ms(self) -> int:
        with self._cond:
            return self._wall_start_ms + int(round((self._now - self._start) * 1000))

    def real_delay(self, seconds: float) -> float:
        self.advance(max(0.0, seconds))
        return 0.0

    # -- sleeping --------------------------------------------------------------

    def sleep(self, seconds: float) -> None:
        me = threading.current_thread()
        if seconds <= 0:
            with self._cond:
                self._participants.add(me)
                self._cond.notify_all()
            _time.sleep(0)  # plain GIL yield; virtual time holds still
            return
        with self._cond:
            self._participants.add(me)
            wake_at = self._now + seconds
            self._waiters[me] = wake_at
            try:
                self._maybe_jump()
                while self._now < wake_at:
                    self._cond.wait(timeout=0.05)
                    self._prune_dead()
                    self._maybe_jump()
            finally:
                self._waiters.pop(me, None)
                self.wake_log.append(me.name)
                self._cond.notify_all()

    def _prune_dead(self) -> None:
        dead = [t for t in self._participants if not t.is_alive()]
        for t in dead:
            self._participants.discard(t)
            self._waiters.pop(t, None)

    def _maybe_jump(self) -> None:
        """Jump to the earliest wakeup iff all live participants are parked."""
        if not self._waiters:
            return
        live = [t for t in self._participants if t.is_alive()]
        if any(t not in self._waiters for t in live):
            return  # runnable work exists: time holds still
        target = min(self._waiters.values())
        if target > self._now:
            self._now = target
        self._cond.notify_all()

    # -- driving ---------------------------------------------------------------

    def advance(self, seconds: float) -> float:
        """Move virtual time forward, waking waiters in deadline order.

        Returns the new :meth:`monotonic`. Intermediate deadlines are
        visited one at a time: each batch of due waiters unparks (and
        may re-park further out) before time moves again.
        """
        if seconds < 0:
            raise ValueError(f"cannot move time backwards: {seconds}")
        with self._cond:
            target = self._now + seconds
            while True:
                self._prune_dead()
                due = [at for at in self._waiters.values() if at <= target]
                if not due:
                    break
                step = min(due)
                if step > self._now:
                    self._now = step
                self._cond.notify_all()
                # Wait (real time, bounded ticks) for the due waiters to
                # unpark so ordering matches the automatic jumps.
                while any(at <= self._now for at in self._waiters.values()):
                    self._cond.wait(timeout=0.05)
                    self._prune_dead()
            self._now = target
            self._cond.notify_all()
            return self._now

    def advance_ms(self, delta_ms: int) -> int:
        """:meth:`advance` in event-time units; returns :meth:`wall_ms`."""
        self.advance(delta_ms / 1000.0)
        return self.wall_ms()


# -- event-time view (the former common/clock.py abstraction) -----------------


class Clock(ABC):
    """Source of the current *event* time in integer milliseconds."""

    @abstractmethod
    def now(self) -> int:
        """Return the current time in milliseconds."""

    def now_seconds(self) -> float:
        """Return the current time in (fractional) seconds."""
        return self.now() / 1000.0


class SystemClock(Clock):
    """Wall-clock time; used by the interactive examples.

    Reads its :class:`TimeSource`'s wall clock, so examples and servers
    share one timeline with the infrastructure plane.
    """

    def __init__(self, time_source: TimeSource | None = None) -> None:
        self._source = resolve_time_source(time_source)

    def now(self) -> int:
        return self._source.wall_ms()


class _OffsetClock(Clock):
    """Event time anchored at ``start_ms``, advancing with a source's
    monotonic timeline — :meth:`TimeSource.event_clock`'s view."""

    def __init__(self, source: TimeSource, start_ms: int) -> None:
        self._source = source
        self._start_ms = int(start_ms)
        self._origin = source.monotonic()

    def now(self) -> int:
        elapsed = self._source.monotonic() - self._origin
        return self._start_ms + int(round(elapsed * 1000))


class ManualClock(Clock):
    """Deterministic event clock advanced explicitly by tests/simulators."""

    def __init__(self, start_ms: int = 0) -> None:
        if start_ms < 0:
            raise ValueError(f"clock cannot start at negative time: {start_ms}")
        self._now_ms = start_ms

    def now(self) -> int:
        return self._now_ms

    def advance(self, delta_ms: int) -> int:
        """Move time forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards: {delta_ms}")
        self._now_ms += delta_ms
        return self._now_ms

    def set(self, now_ms: int) -> None:
        """Jump to an absolute time (must be monotonically non-decreasing)."""
        if now_ms < self._now_ms:
            raise ValueError(
                f"clock must be monotonic: {now_ms} < {self._now_ms}"
            )
        self._now_ms = now_ms


# -- process-wide default ------------------------------------------------------

#: The system source every component falls back to when none is
#: injected. Built once per process; honors ``$RAILGUN_TIME_SCALE``.
SYSTEM = SystemTimeSource()

_default: TimeSource = SYSTEM
_default_lock = threading.Lock()


def default_time_source() -> TimeSource:
    """The process-wide source components use when none is injected."""
    return _default


def set_default_time_source(source: TimeSource | None) -> TimeSource:
    """Install ``source`` (``None`` restores :data:`SYSTEM`) process-wide;
    returns the previous default so tests can restore it.

    Components resolve their source *at construction*, not at import —
    installing a deterministic default therefore affects objects built
    afterwards, which is exactly what a test fixture wants.
    """
    global _default
    with _default_lock:
        previous = _default
        _default = source if source is not None else SYSTEM
        return previous


def resolve_time_source(explicit: TimeSource | None) -> TimeSource:
    """The injected source, or the process default. Call at
    construction time (never bind a default in a signature — that
    freezes the default at import, the bug this module exists to fix)."""
    return explicit if explicit is not None else _default
