"""Stable hashing for partitioning and bloom filters.

Python's builtin ``hash()`` is randomized per process, which would make
partition assignment non-reproducible across runs. We use FNV-1a, the
same family of cheap multiplicative hashes used by Kafka's murmur2
partitioner — stable, fast, and good enough dispersion for routing keys.
"""

from __future__ import annotations

_FNV_OFFSET_64 = 0xCBF29CE484222325
_FNV_PRIME_64 = 0x100000001B3
_MASK_64 = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes, seed: int = 0) -> int:
    """64-bit FNV-1a hash of ``data`` with an optional ``seed``."""
    value = (_FNV_OFFSET_64 ^ seed) & _MASK_64
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME_64) & _MASK_64
    return value


def stable_hash(key: object, seed: int = 0) -> int:
    """Hash an arbitrary routing key (str/bytes/int/float/None) stably."""
    if key is None:
        data = b"\x00"
    elif isinstance(key, bytes):
        data = key
    elif isinstance(key, str):
        data = key.encode("utf-8")
    elif isinstance(key, bool):
        data = b"\x01" if key else b"\x02"
    elif isinstance(key, int):
        data = key.to_bytes(16, "little", signed=True)
    elif isinstance(key, float):
        data = repr(key).encode("ascii")
    else:
        raise TypeError(f"unhashable routing key type: {type(key).__name__}")
    return fnv1a_64(data, seed)


def partition_for(key: object, num_partitions: int) -> int:
    """Map a routing key to a partition, mirroring Kafka's keyed routing.

    Messages with the same key always land in the same partition — the
    guarantee Railgun uses to keep each entity's events inside a single
    task processor (paper §4).
    """
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive: {num_partitions}")
    return stable_hash(key) % num_partitions
