"""Compact binary serialization primitives.

The reservoir persists chunks of events in a binary format (paper §4.1.1:
"define a data format and compression for efficient storage, both in
terms of deserialization time and size"). These helpers implement the
primitive encoders that the chunk codec and the LSM store build on:
varints, zig-zag signed ints, length-prefixed bytes/strings, and tagged
scalar values.

All functions either append to a ``bytearray`` (writers) or read from a
``memoryview``/``bytes`` at an offset and return ``(value, new_offset)``
(readers), so codecs can be composed without intermediate copies.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.common.errors import SerdeError

_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def write_varint(buf: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise SerdeError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def read_varint(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; return ``(value, new_offset)``."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise SerdeError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise SerdeError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed int to an unsigned one with small absolute values small."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


def write_signed_varint(buf: bytearray, value: int) -> None:
    """Append a zig-zag encoded signed varint (delta timestamps use this)."""
    write_varint(buf, zigzag_encode(value))


def read_signed_varint(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    """Read a zig-zag encoded signed varint."""
    raw, offset = read_varint(data, offset)
    return zigzag_decode(raw), offset


def write_bytes(buf: bytearray, value: bytes) -> None:
    """Append length-prefixed raw bytes."""
    write_varint(buf, len(value))
    buf.extend(value)


def read_bytes(data: bytes | memoryview, offset: int) -> tuple[bytes, int]:
    """Read length-prefixed raw bytes."""
    length, offset = read_varint(data, offset)
    end = offset + length
    if end > len(data):
        raise SerdeError("truncated byte string")
    return bytes(data[offset:end]), end


def write_str(buf: bytearray, value: str) -> None:
    """Append a length-prefixed UTF-8 string."""
    write_bytes(buf, value.encode("utf-8"))


def read_str(data: bytes | memoryview, offset: int) -> tuple[str, int]:
    """Read a length-prefixed UTF-8 string."""
    raw, offset = read_bytes(data, offset)
    return raw.decode("utf-8"), offset


def write_str_list(buf: bytearray, values: Sequence[str]) -> None:
    """Append a count-prefixed list of UTF-8 strings.

    Used by the shard wire layer for string tables (field and column
    names are interned once per message instead of once per event).
    """
    write_varint(buf, len(values))
    for value in values:
        write_str(buf, value)


def read_str_list(data: bytes | memoryview, offset: int) -> tuple[list[str], int]:
    """Read a count-prefixed list of strings written by :func:`write_str_list`."""
    count, offset = read_varint(data, offset)
    values = []
    for _ in range(count):
        value, offset = read_str(data, offset)
        values.append(value)
    return values, offset


def write_f64(buf: bytearray, value: float) -> None:
    """Append a little-endian IEEE-754 double."""
    buf.extend(_F64.pack(value))


def read_f64(data: bytes | memoryview, offset: int) -> tuple[float, int]:
    """Read a little-endian IEEE-754 double."""
    end = offset + 8
    if end > len(data):
        raise SerdeError("truncated float64")
    return _F64.unpack_from(data, offset)[0], end


def write_u32(buf: bytearray, value: int) -> None:
    """Append a fixed-width little-endian uint32 (checksums, counts)."""
    buf.extend(_U32.pack(value))


def read_u32(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    """Read a fixed-width little-endian uint32."""
    end = offset + 4
    if end > len(data):
        raise SerdeError("truncated uint32")
    return _U32.unpack_from(data, offset)[0], end


def write_u64(buf: bytearray, value: int) -> None:
    """Append a fixed-width little-endian uint64."""
    buf.extend(_U64.pack(value))


def read_u64(data: bytes | memoryview, offset: int) -> tuple[int, int]:
    """Read a fixed-width little-endian uint64."""
    end = offset + 8
    if end > len(data):
        raise SerdeError("truncated uint64")
    return _U64.unpack_from(data, offset)[0], end


# Tagged scalar values. Events carry heterogeneous field values; schemas
# pin field types but nullable fields and the generic state store need a
# self-describing encoding.

_TAG_NONE = 0
_TAG_BOOL_FALSE = 1
_TAG_BOOL_TRUE = 2
_TAG_INT = 3
_TAG_FLOAT = 4
_TAG_STR = 5
_TAG_BYTES = 6


def write_value(buf: bytearray, value: object) -> None:
    """Append a tagged scalar (None, bool, int, float, str, bytes)."""
    if value is None:
        buf.append(_TAG_NONE)
    elif value is False:
        buf.append(_TAG_BOOL_FALSE)
    elif value is True:
        buf.append(_TAG_BOOL_TRUE)
    elif isinstance(value, int):
        buf.append(_TAG_INT)
        write_signed_varint(buf, value)
    elif isinstance(value, float):
        buf.append(_TAG_FLOAT)
        write_f64(buf, value)
    elif isinstance(value, str):
        buf.append(_TAG_STR)
        write_str(buf, value)
    elif isinstance(value, bytes):
        buf.append(_TAG_BYTES)
        write_bytes(buf, value)
    else:
        raise SerdeError(f"unsupported value type: {type(value).__name__}")


def read_value(data: bytes | memoryview, offset: int) -> tuple[object, int]:
    """Read a tagged scalar written by :func:`write_value`."""
    if offset >= len(data):
        raise SerdeError("truncated value tag")
    tag = data[offset]
    offset += 1
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_BOOL_FALSE:
        return False, offset
    if tag == _TAG_BOOL_TRUE:
        return True, offset
    if tag == _TAG_INT:
        return read_signed_varint(data, offset)
    if tag == _TAG_FLOAT:
        return read_f64(data, offset)
    if tag == _TAG_STR:
        return read_str(data, offset)
    if tag == _TAG_BYTES:
        return read_bytes(data, offset)
    raise SerdeError(f"unknown value tag {tag}")


def crc32_of(data: bytes | memoryview) -> int:
    """CRC-32 checksum used to detect torn writes in WAL and segments."""
    import zlib

    return zlib.crc32(data) & 0xFFFFFFFF
