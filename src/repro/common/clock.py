"""Event-time clock abstraction (re-exported from the time plane).

All engine components take a :class:`Clock` so tests and the discrete
event simulator can drive virtual time deterministically. Timestamps are
integer **milliseconds** throughout the library, mirroring the paper's
event-time model (§2: every event carries a timestamp).

The classes now live in :mod:`repro.common.timesource`, where they are
the *event-time view* of the unified :class:`~repro.common.timesource.
TimeSource` plane (``source.event_clock()`` hands back a ``Clock`` on
the same timeline); this module keeps the historical import path plus
the duration parsing/formatting helpers.
"""

from __future__ import annotations

from repro.common.timesource import Clock, ManualClock, SystemClock

__all__ = [
    "Clock",
    "SystemClock",
    "ManualClock",
    "MILLIS",
    "SECONDS",
    "MINUTES",
    "HOURS",
    "DAYS",
    "parse_duration_ms",
    "format_duration_ms",
]


# Convenient duration constants (milliseconds).
MILLIS = 1
SECONDS = 1000
MINUTES = 60 * SECONDS
HOURS = 60 * MINUTES
DAYS = 24 * HOURS


def parse_duration_ms(text: str) -> int:
    """Parse a human-friendly duration like ``"5 minutes"`` or ``"30s"``.

    Supported units: ms, s/sec/second(s), m/min/minute(s), h/hour(s),
    d/day(s), w/week(s). Used by the query language (``OVER sliding 5
    minutes``) and by configuration files.
    """
    units = {
        "ms": MILLIS,
        "millis": MILLIS,
        "millisecond": MILLIS,
        "milliseconds": MILLIS,
        "s": SECONDS,
        "sec": SECONDS,
        "secs": SECONDS,
        "second": SECONDS,
        "seconds": SECONDS,
        "m": MINUTES,
        "min": MINUTES,
        "mins": MINUTES,
        "minute": MINUTES,
        "minutes": MINUTES,
        "h": HOURS,
        "hour": HOURS,
        "hours": HOURS,
        "d": DAYS,
        "day": DAYS,
        "days": DAYS,
        "w": 7 * DAYS,
        "week": 7 * DAYS,
        "weeks": 7 * DAYS,
    }
    stripped = text.strip().lower()
    if not stripped:
        raise ValueError("empty duration")
    # Split the numeric prefix from the unit suffix.
    idx = 0
    while idx < len(stripped) and (stripped[idx].isdigit() or stripped[idx] == "."):
        idx += 1
    number_part = stripped[:idx]
    unit_part = stripped[idx:].strip()
    if not number_part:
        raise ValueError(f"duration missing number: {text!r}")
    if unit_part not in units:
        raise ValueError(f"unknown duration unit {unit_part!r} in {text!r}")
    value = float(number_part)
    result = int(round(value * units[unit_part]))
    if result <= 0:
        raise ValueError(f"duration must be positive: {text!r}")
    return result


def format_duration_ms(ms: int) -> str:
    """Render a millisecond duration compactly, e.g. ``300000`` -> ``"5m"``."""
    if ms % DAYS == 0:
        return f"{ms // DAYS}d"
    if ms % HOURS == 0:
        return f"{ms // HOURS}h"
    if ms % MINUTES == 0:
        return f"{ms // MINUTES}m"
    if ms % SECONDS == 0:
        return f"{ms // SECONDS}s"
    return f"{ms}ms"
