"""Clock abstraction.

All engine components take a :class:`Clock` so tests and the discrete
event simulator can drive virtual time deterministically. Timestamps are
integer **milliseconds** throughout the library, mirroring the paper's
event-time model (§2: every event carries a timestamp).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Source of the current time in milliseconds."""

    @abstractmethod
    def now(self) -> int:
        """Return the current time in milliseconds."""

    def now_seconds(self) -> float:
        """Return the current time in (fractional) seconds."""
        return self.now() / 1000.0


class SystemClock(Clock):
    """Wall-clock time; used by the interactive examples."""

    def now(self) -> int:
        return int(time.time() * 1000)


class ManualClock(Clock):
    """Deterministic clock advanced explicitly by tests and simulators."""

    def __init__(self, start_ms: int = 0) -> None:
        if start_ms < 0:
            raise ValueError(f"clock cannot start at negative time: {start_ms}")
        self._now_ms = start_ms

    def now(self) -> int:
        return self._now_ms

    def advance(self, delta_ms: int) -> int:
        """Move time forward by ``delta_ms`` and return the new time."""
        if delta_ms < 0:
            raise ValueError(f"cannot move time backwards: {delta_ms}")
        self._now_ms += delta_ms
        return self._now_ms

    def set(self, now_ms: int) -> None:
        """Jump to an absolute time (must be monotonically non-decreasing)."""
        if now_ms < self._now_ms:
            raise ValueError(
                f"clock must be monotonic: {now_ms} < {self._now_ms}"
            )
        self._now_ms = now_ms


# Convenient duration constants (milliseconds).
MILLIS = 1
SECONDS = 1000
MINUTES = 60 * SECONDS
HOURS = 60 * MINUTES
DAYS = 24 * HOURS


def parse_duration_ms(text: str) -> int:
    """Parse a human-friendly duration like ``"5 minutes"`` or ``"30s"``.

    Supported units: ms, s/sec/second(s), m/min/minute(s), h/hour(s),
    d/day(s), w/week(s). Used by the query language (``OVER sliding 5
    minutes``) and by configuration files.
    """
    units = {
        "ms": MILLIS,
        "millis": MILLIS,
        "millisecond": MILLIS,
        "milliseconds": MILLIS,
        "s": SECONDS,
        "sec": SECONDS,
        "secs": SECONDS,
        "second": SECONDS,
        "seconds": SECONDS,
        "m": MINUTES,
        "min": MINUTES,
        "mins": MINUTES,
        "minute": MINUTES,
        "minutes": MINUTES,
        "h": HOURS,
        "hour": HOURS,
        "hours": HOURS,
        "d": DAYS,
        "day": DAYS,
        "days": DAYS,
        "w": 7 * DAYS,
        "week": 7 * DAYS,
        "weeks": 7 * DAYS,
    }
    stripped = text.strip().lower()
    if not stripped:
        raise ValueError("empty duration")
    # Split the numeric prefix from the unit suffix.
    idx = 0
    while idx < len(stripped) and (stripped[idx].isdigit() or stripped[idx] == "."):
        idx += 1
    number_part = stripped[:idx]
    unit_part = stripped[idx:].strip()
    if not number_part:
        raise ValueError(f"duration missing number: {text!r}")
    if unit_part not in units:
        raise ValueError(f"unknown duration unit {unit_part!r} in {text!r}")
    value = float(number_part)
    result = int(round(value * units[unit_part]))
    if result <= 0:
        raise ValueError(f"duration must be positive: {text!r}")
    return result


def format_duration_ms(ms: int) -> str:
    """Render a millisecond duration compactly, e.g. ``300000`` -> ``"5m"``."""
    if ms % DAYS == 0:
        return f"{ms // DAYS}d"
    if ms % HOURS == 0:
        return f"{ms // HOURS}h"
    if ms % MINUTES == 0:
        return f"{ms // MINUTES}m"
    if ms % SECONDS == 0:
        return f"{ms // SECONDS}s"
    return f"{ms}ms"
