"""Synthetic fraud workload.

The paper evaluates on "a real fraud dataset from one of our clients"
with **103 fields**, chosen to "simulate real-world dictionary
cardinalities for the aggregation states, and the expected load
differences among the several Railgun processors" (§5). That dataset is
proprietary, so we synthesize the closest equivalent:

- a 103-field payments schema (ids, amounts, card/merchant attributes,
  device fingerprints, address fields, enrichment columns);
- heavy-tailed (Zipf) card and merchant popularity, which produces both
  the large aggregation-state dictionaries and the per-partition load
  skew the real dataset exhibits;
- lognormal transaction amounts (the standard model for payment values).

The generator is deterministic given a seed.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterator

from repro.events.event import Event
from repro.events.schema import FieldType, Schema, SchemaField

#: Core fields every query in the paper touches.
_CORE_FIELDS = [
    SchemaField("cardId", FieldType.STRING),
    SchemaField("merchantId", FieldType.STRING),
    SchemaField("amount", FieldType.FLOAT),
    SchemaField("currency", FieldType.STRING),
    SchemaField("mcc", FieldType.INT),
    SchemaField("terminalId", FieldType.STRING),
    SchemaField("deviceId", FieldType.STRING),
    SchemaField("channel", FieldType.STRING),
    SchemaField("country", FieldType.STRING),
    SchemaField("city", FieldType.STRING),
    SchemaField("zip", FieldType.STRING),
    SchemaField("emailDomain", FieldType.STRING),
    SchemaField("ipOctet", FieldType.INT),
    SchemaField("isCardPresent", FieldType.BOOL),
    SchemaField("isRecurring", FieldType.BOOL),
    SchemaField("authResult", FieldType.STRING),
]

_PAD_PREFIXES = ("enr", "risk", "bin", "geo", "hist")


def fraud_schema(total_fields: int = 103) -> Schema:
    """Build the synthetic payments schema with ``total_fields`` columns.

    The first columns are the semantically meaningful ones; the rest are
    enrichment-style padding columns (float scores, int codes, string
    labels) so the serialized event size and deserialization cost match a
    wide real-world record.
    """
    if total_fields < len(_CORE_FIELDS):
        raise ValueError(
            f"total_fields must be >= {len(_CORE_FIELDS)}: {total_fields}"
        )
    fields = list(_CORE_FIELDS)
    pad_types = (FieldType.FLOAT, FieldType.INT, FieldType.STRING)
    index = 0
    while len(fields) < total_fields:
        prefix = _PAD_PREFIXES[index % len(_PAD_PREFIXES)]
        fields.append(SchemaField(f"{prefix}_{index:03d}", pad_types[index % 3]))
        index += 1
    return Schema(fields)


class ZipfSampler:
    """Zipf(s) sampler over ``n`` ranks using inverse-CDF binary search.

    Precomputing the CDF costs O(n) once; each sample is O(log n). Rank 0
    is the most popular entity.
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive: {n}")
        if s < 0:
            raise ValueError(f"s must be non-negative: {s}")
        self._rng = rng
        self._cdf: list[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += 1.0 / math.pow(rank, s)
            self._cdf.append(total)
        self._total = total

    def sample(self) -> int:
        """Draw a rank in ``[0, n)``."""
        target = self._rng.random() * self._total
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < target:
                lo = mid + 1
            else:
                hi = mid
        return lo


class FraudWorkload:
    """Deterministic stream of synthetic payment events.

    Parameters
    ----------
    cards / merchants:
        Entity population sizes (dictionary cardinalities).
    card_skew / merchant_skew:
        Zipf exponents; ~1.1 reproduces the head-heavy behaviour of real
        card activity.
    events_per_second:
        Sustained event rate; inter-arrival times are exponential
        (Poisson arrivals) unless ``jitter`` is 0, which produces a
        perfectly-paced open-loop injector.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        cards: int = 50_000,
        merchants: int = 2_000,
        card_skew: float = 1.1,
        merchant_skew: float = 1.05,
        events_per_second: float = 500.0,
        start_ms: int = 0,
        seed: int = 7,
        total_fields: int = 103,
        jitter: float = 1.0,
    ) -> None:
        if events_per_second <= 0:
            raise ValueError("events_per_second must be positive")
        self.schema = fraud_schema(total_fields)
        self._rng = random.Random(seed)
        self._cards = ZipfSampler(cards, card_skew, self._rng)
        self._merchants = ZipfSampler(merchants, merchant_skew, self._rng)
        self._rate = events_per_second
        self._now_ms = float(start_ms)
        self._seq = 0
        self._jitter = jitter
        self._pad_names = [
            f.name for f in self.schema.fields if f.name not in {c.name for c in _CORE_FIELDS}
        ]
        self._pad_types = {f.name: f.field_type for f in self.schema.fields}

    @property
    def events_generated(self) -> int:
        """Number of events produced so far."""
        return self._seq

    def _next_interarrival_ms(self) -> float:
        mean = 1000.0 / self._rate
        if self._jitter == 0:
            return mean
        return self._rng.expovariate(1.0 / mean)

    def _amount(self) -> float:
        # Lognormal with median ~30 and a heavy right tail, the standard
        # shape for card-payment values.
        return round(self._rng.lognormvariate(3.4, 1.2), 2)

    def next_event(self) -> Event:
        """Generate the next event (advances the workload clock)."""
        self._now_ms += self._next_interarrival_ms()
        return self.event_at(int(self._now_ms))

    def event_at(self, timestamp_ms: int) -> Event:
        """Generate one event at an explicit timestamp."""
        card_rank = self._cards.sample()
        merchant_rank = self._merchants.sample()
        rng = self._rng
        fields: dict[str, object] = {
            "cardId": f"card-{card_rank:06d}",
            "merchantId": f"merch-{merchant_rank:05d}",
            "amount": self._amount(),
            "currency": rng.choice(("USD", "EUR", "GBP", "BRL")),
            "mcc": rng.choice((5411, 5812, 4829, 5999, 7995, 6011)),
            "terminalId": f"term-{rng.randrange(10_000):05d}",
            "deviceId": f"dev-{rng.randrange(100_000):06d}",
            "channel": rng.choice(("pos", "ecom", "atm", "moto")),
            "country": rng.choice(("US", "PT", "GB", "DE", "BR", "FR")),
            "city": f"city-{rng.randrange(500):03d}",
            "zip": f"{rng.randrange(100_000):05d}",
            "emailDomain": rng.choice(("gmail.com", "yahoo.com", "proton.me", "corp.example")),
            "ipOctet": rng.randrange(256),
            "isCardPresent": rng.random() < 0.6,
            "isRecurring": rng.random() < 0.1,
            "authResult": rng.choice(("approved", "declined", "review")),
        }
        # Enrichment padding: cheap deterministic values, full width.
        for name in self._pad_names:
            field_type = self._pad_types[name]
            if field_type is FieldType.FLOAT:
                fields[name] = round(rng.random(), 6)
            elif field_type is FieldType.INT:
                fields[name] = rng.randrange(1_000)
            else:
                fields[name] = f"v{rng.randrange(64):02d}"
        event = Event(f"evt-{self._seq:012d}", timestamp_ms, fields)
        self._seq += 1
        return event

    def take(self, count: int) -> list[Event]:
        """Generate ``count`` events."""
        return [self.next_event() for _ in range(count)]

    def stream(self) -> Iterator[Event]:
        """An endless iterator of events."""
        while True:
            yield self.next_event()


class BurstWorkload:
    """Adversarial burst generator for the Figure 1 accuracy experiment.

    Emits, per entity, ``burst_size`` events packed *just inside* a
    ``window_ms`` interval — the exact pattern a fraudster exploiting a
    hopping window's predictable hop would use (§2.1). Between bursts,
    entities idle for longer than the window so each burst is isolated.
    """

    def __init__(
        self,
        window_ms: int,
        burst_size: int = 5,
        entities: int = 50,
        seed: int = 13,
        start_ms: int = 0,
        span_range: tuple[float, float] = (0.5, 0.998),
    ) -> None:
        if burst_size < 2:
            raise ValueError("burst_size must be at least 2")
        low, high = span_range
        if not 0.0 < low <= high < 1.0:
            raise ValueError(f"span_range must satisfy 0 < low <= high < 1: {span_range}")
        self.window_ms = window_ms
        self.burst_size = burst_size
        self.entities = entities
        self.span_range = span_range
        self._rng = random.Random(seed)
        self._start = start_ms
        self._seq = 0

    def bursts(self) -> Iterator[list[Event]]:
        """Yield one isolated burst (list of events) per entity.

        Each burst spans a random fraction of the window (``span_range``)
        and starts at a random phase against any hop grid — shorter
        spans give hopping windows a fighting chance, which is exactly
        what makes the detection-rate-vs-hop-size curve informative.
        """
        cursor = self._start + self.window_ms  # leave room before first burst
        for entity in range(self.entities):
            offset = self._rng.randrange(self.window_ms)
            burst_start = cursor + offset
            low, high = self.span_range
            span = max(
                self.burst_size,
                int(self.window_ms * self._rng.uniform(low, high)) - 1,
            )
            gaps = sorted(self._rng.randrange(span) for _ in range(self.burst_size - 2))
            times = [burst_start] + [burst_start + 1 + g for g in gaps] + [burst_start + span]
            burst = []
            for ts in sorted(times):
                burst.append(
                    Event(
                        f"burst-{self._seq:08d}",
                        ts,
                        {"cardId": f"attacker-{entity:04d}", "amount": 9.99},
                    )
                )
                self._seq += 1
            yield burst
            cursor = burst_start + 2 * self.window_ms
