"""Event model, schemas with evolution, and workload generators."""

from repro.events.event import Event
from repro.events.schema import FieldType, SchemaField, Schema, SchemaRegistry
from repro.events.generators import FraudWorkload, fraud_schema

__all__ = [
    "Event",
    "FieldType",
    "SchemaField",
    "Schema",
    "SchemaRegistry",
    "FraudWorkload",
    "fraud_schema",
]
