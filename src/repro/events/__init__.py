"""Event model, schemas with evolution, and workload generators."""

from repro.events.event import Event
from repro.events.generators import FraudWorkload, fraud_schema
from repro.events.schema import FieldType, Schema, SchemaField, SchemaRegistry

__all__ = [
    "Event",
    "FieldType",
    "SchemaField",
    "Schema",
    "SchemaRegistry",
    "FraudWorkload",
    "fraud_schema",
]
