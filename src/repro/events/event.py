"""The event record.

A data stream is an unbounded sequence of events, each with a timestamp
(paper §2). Events additionally carry a client-assigned ``id`` used for
deduplication (§4.1.1: "events are also deduplicated based on an id")
and a dict of named fields.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping


class Event:
    """An immutable stream event.

    Parameters
    ----------
    event_id:
        Client-assigned unique id; the reservoir deduplicates on it.
    timestamp:
        Event time in milliseconds.
    fields:
        Mapping of field name to scalar value (None/bool/int/float/str).
    """

    __slots__ = ("event_id", "timestamp", "_fields")

    def __init__(self, event_id: str, timestamp: int, fields: Mapping[str, Any]) -> None:
        if timestamp < 0:
            raise ValueError(f"negative event timestamp: {timestamp}")
        self.event_id = event_id
        self.timestamp = timestamp
        self._fields = dict(fields)

    def __getitem__(self, name: str) -> Any:
        return self._fields[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Field value or ``default`` when absent."""
        return self._fields.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[str]:
        return iter(self._fields)

    @property
    def fields(self) -> dict[str, Any]:
        """A copy of the field mapping (events are immutable)."""
        return dict(self._fields)

    def field_names(self) -> list[str]:
        """Field names in insertion order."""
        return list(self._fields)

    def field_count(self) -> int:
        """Number of fields (no list allocation, unlike field_names)."""
        return len(self._fields)

    def items(self):
        """A live ``(name, value)`` view (no copy, unlike ``fields``)."""
        return self._fields.items()

    def with_timestamp(self, timestamp: int) -> "Event":
        """A copy with a rewritten timestamp.

        Used by the out-of-order ``rewrite`` policy (§4.1.1: late events
        may "have their timestamp rewritten").
        """
        return Event(self.event_id, timestamp, self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_id == other.event_id
            and self.timestamp == other.timestamp
            and self._fields == other._fields
        )

    def __hash__(self) -> int:
        return hash((self.event_id, self.timestamp))

    def __repr__(self) -> str:
        preview = ", ".join(f"{k}={v!r}" for k, v in list(self._fields.items())[:3])
        suffix = ", ..." if len(self._fields) > 3 else ""
        return f"Event(id={self.event_id!r}, ts={self.timestamp}, {preview}{suffix})"
