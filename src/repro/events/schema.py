"""Event schemas and the schema registry.

The reservoir serializes chunks "using a specific events' schema and
stored referencing their current schema id. Each time the event schema
changes, a new entry is added to the schema registry" (§4.1.1). A schema
pins field order and types so events encode positionally (no per-event
field names on disk), and old chunks remain readable after the schema
evolves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable

from repro.common import serde
from repro.common.errors import SchemaError, SerdeError
from repro.events.event import Event


class FieldType(enum.Enum):
    """Scalar types supported by event fields."""

    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STRING = "string"

    def validate(self, value: Any) -> bool:
        """True when ``value`` (or None — all fields are nullable) fits."""
        if value is None:
            return True
        return _TYPE_CHECKERS[self](value)


def _check_bool(value: Any) -> bool:
    return isinstance(value, bool)


def _check_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_float(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_str(value: Any) -> bool:
    return isinstance(value, str)


#: per-type non-None checkers, precomputed so the validation hot loop
#: avoids the enum if-chain dispatch
_TYPE_CHECKERS = {
    FieldType.BOOL: _check_bool,
    FieldType.INT: _check_int,
    FieldType.FLOAT: _check_float,
    FieldType.STRING: _check_str,
}


@dataclass(frozen=True)
class SchemaField:
    """A named, typed, nullable field."""

    name: str
    field_type: FieldType


class Schema:
    """An ordered list of fields with a registry-assigned id."""

    def __init__(self, fields: Iterable[SchemaField], schema_id: int = -1) -> None:
        self.fields = tuple(fields)
        self.schema_id = schema_id
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in schema: {names}")
        self._index = {f.name: i for i, f in enumerate(self.fields)}
        self._validators = {
            f.name: (f.field_type.value, _TYPE_CHECKERS[f.field_type])
            for f in self.fields
        }

    def __len__(self) -> int:
        return len(self.fields)

    def field_names(self) -> list[str]:
        """Field names in schema order."""
        return [f.name for f in self.fields]

    def has_field(self, name: str) -> bool:
        """True when the schema declares ``name``."""
        return name in self._index

    def validate_event(self, event: Event) -> None:
        """Raise :class:`SchemaError` when an event does not fit.

        Single pass over the event's own fields — declared fields the
        event omits need no check (all fields are nullable), so only
        present values are typed and probed for declaration.
        """
        validators = self._validators
        for name, value in event.items():
            spec = validators.get(name)
            if spec is None:
                raise SchemaError(f"event carries undeclared field {name!r}")
            if value is not None and not spec[1](value):
                raise SchemaError(
                    f"field {name!r} expects {spec[0]}, "
                    f"got {type(value).__name__}: {value!r}"
                )

    def validate_events(self, events: Iterable[Event]) -> None:
        """Validate many events with the per-event dispatch hoisted.

        Raises at the first offending event, exactly like calling
        :meth:`validate_event` in sequence.
        """
        validators = self._validators
        get = validators.get
        for event in events:
            for name, value in event.items():
                spec = get(name)
                if spec is None:
                    raise SchemaError(f"event carries undeclared field {name!r}")
                if value is not None and not spec[1](value):
                    raise SchemaError(
                        f"field {name!r} expects {spec[0]}, "
                        f"got {type(value).__name__}: {value!r}"
                    )

    def encode_event(self, event: Event, buf: bytearray) -> None:
        """Append a positional binary encoding of ``event`` to ``buf``."""
        serde.write_str(buf, event.event_id)
        serde.write_varint(buf, event.timestamp)
        for field in self.fields:
            serde.write_value(buf, event.get(field.name))

    def decode_event(self, data: bytes | memoryview, offset: int) -> tuple[Event, int]:
        """Decode one event; returns ``(event, new_offset)``."""
        event_id, offset = serde.read_str(data, offset)
        timestamp, offset = serde.read_varint(data, offset)
        fields: dict[str, Any] = {}
        for field in self.fields:
            value, offset = serde.read_value(data, offset)
            if value is not None:
                fields[field.name] = value
        return Event(event_id, timestamp, fields), offset

    def is_compatible_upgrade(self, new: "Schema") -> bool:
        """True when ``new`` only appends fields or keeps them identical.

        This is the evolution rule the registry enforces: existing fields
        must keep name and type; new fields go at the end (old chunks
        decode them as absent).
        """
        if len(new) < len(self):
            return False
        return all(
            new.fields[i] == self.fields[i] for i in range(len(self.fields))
        )

    def to_bytes(self) -> bytes:
        """Serialize the schema itself (persisted with reservoir data)."""
        buf = bytearray()
        serde.write_varint(buf, max(self.schema_id, 0))
        serde.write_varint(buf, len(self.fields))
        for field in self.fields:
            serde.write_str(buf, field.name)
            serde.write_str(buf, field.field_type.value)
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Schema":
        """Inverse of :meth:`to_bytes`."""
        offset = 0
        schema_id, offset = serde.read_varint(data, offset)
        count, offset = serde.read_varint(data, offset)
        fields = []
        for _ in range(count):
            name, offset = serde.read_str(data, offset)
            type_name, offset = serde.read_str(data, offset)
            try:
                field_type = FieldType(type_name)
            except ValueError:
                raise SerdeError(f"unknown field type {type_name!r}") from None
            fields.append(SchemaField(name, field_type))
        return cls(fields, schema_id=schema_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.fields == other.fields

    def __repr__(self) -> str:
        return f"Schema(id={self.schema_id}, fields={len(self.fields)})"


class SchemaRegistry:
    """Registry of schema versions for one stream.

    ``register`` assigns monotonically increasing ids; ``current`` is the
    id chunks reference at write time; any historical id stays resolvable
    so old chunks can always be deserialized (§4.1.1).
    """

    def __init__(self) -> None:
        self._schemas: dict[int, Schema] = {}
        self._current_id: int | None = None

    def register(self, schema: Schema) -> Schema:
        """Register a schema version; returns the stored (id-stamped) schema.

        Re-registering an identical schema is a no-op returning the
        existing version.
        """
        if self._current_id is not None:
            current = self._schemas[self._current_id]
            if current == schema:
                return current
            if not current.is_compatible_upgrade(schema):
                raise SchemaError(
                    "incompatible schema evolution: fields may only be appended"
                )
        new_id = (self._current_id + 1) if self._current_id is not None else 0
        stored = Schema(schema.fields, schema_id=new_id)
        self._schemas[new_id] = stored
        self._current_id = new_id
        return stored

    def current(self) -> Schema:
        """The latest schema version."""
        if self._current_id is None:
            raise SchemaError("registry has no schemas")
        return self._schemas[self._current_id]

    def get(self, schema_id: int) -> Schema:
        """Resolve a historical schema id."""
        try:
            return self._schemas[schema_id]
        except KeyError:
            raise SchemaError(f"unknown schema id {schema_id}") from None

    def __len__(self) -> int:
        return len(self._schemas)

    def to_bytes(self) -> bytes:
        """Serialize all versions (used by checkpoint/recovery transfer)."""
        buf = bytearray()
        serde.write_varint(buf, len(self._schemas))
        for schema_id in sorted(self._schemas):
            serde.write_bytes(buf, self._schemas[schema_id].to_bytes())
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SchemaRegistry":
        """Inverse of :meth:`to_bytes`."""
        registry = cls()
        offset = 0
        count, offset = serde.read_varint(data, offset)
        for _ in range(count):
            raw, offset = serde.read_bytes(data, offset)
            schema = Schema.from_bytes(raw)
            registry._schemas[schema.schema_id] = schema
            if registry._current_id is None or schema.schema_id > registry._current_id:
                registry._current_id = schema.schema_id
        return registry
