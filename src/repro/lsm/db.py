"""The embedded LSM database: column families, compaction, checkpoints.

This is the surface :mod:`repro.state` programs against, shaped after the
slice of RocksDB the paper uses (§4.1.3):

- point ``get``/``put``/``delete`` per column family;
- ``prefix_scan`` (the ``countDistinct`` aggregator keeps per-value
  counts in an auxiliary column family and scans them by prefix);
- cheap **checkpoints**: flush memtables, snapshot the manifest — all
  table files are immutable, so a checkpoint is just a list of names;
- **delta transfer**: given a previous checkpoint, only the files the
  receiver is missing need to be copied (the engine's stale-task
  recovery, §4.2).

Compaction is whole-level: L0 collects flushed memtables (overlapping,
newest first); when L0 grows past a threshold it is merged with L1 into
a fresh sorted run, and levels cascade when they exceed their size
budget. Tombstones are dropped only when the output is the bottom-most
populated level.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.common import serde
from repro.common.errors import StorageError
from repro.common.storage import MemoryStorage, StorageBackend
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import SSTable
from repro.lsm.wal import WriteAheadLog

_MANIFEST = "MANIFEST"
_WAL = "WAL"


@dataclass
class LsmConfig:
    """Tuning knobs for the store."""

    memtable_flush_bytes: int = 256 * 1024
    l0_compaction_threshold: int = 4
    level_size_multiplier: int = 8
    base_level_bytes: int = 2 * 1024 * 1024
    index_interval: int = 16
    bloom_fp_rate: float = 0.01
    wal_enabled: bool = True


@dataclass
class Checkpoint:
    """An immutable snapshot: per-CF, per-level lists of table files."""

    sequence: int
    files: dict[str, list[list[str]]] = field(default_factory=dict)

    def all_files(self) -> set[str]:
        """Every table file referenced by the snapshot."""
        return {
            name
            for levels in self.files.values()
            for level in levels
            for name in level
        }

    def to_bytes(self) -> bytes:
        """Serialize (for the checkpoint topic and recovery transfer)."""
        buf = bytearray()
        serde.write_varint(buf, self.sequence)
        serde.write_varint(buf, len(self.files))
        for cf_name in sorted(self.files):
            serde.write_str(buf, cf_name)
            levels = self.files[cf_name]
            serde.write_varint(buf, len(levels))
            for level in levels:
                serde.write_varint(buf, len(level))
                for name in level:
                    serde.write_str(buf, name)
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Checkpoint":
        """Inverse of :meth:`to_bytes`."""
        offset = 0
        sequence, offset = serde.read_varint(data, offset)
        cf_count, offset = serde.read_varint(data, offset)
        files: dict[str, list[list[str]]] = {}
        for _ in range(cf_count):
            cf_name, offset = serde.read_str(data, offset)
            level_count, offset = serde.read_varint(data, offset)
            levels: list[list[str]] = []
            for _ in range(level_count):
                entry_count, offset = serde.read_varint(data, offset)
                names = []
                for _ in range(entry_count):
                    name, offset = serde.read_str(data, offset)
                    names.append(name)
                levels.append(names)
            files[cf_name] = levels
        return cls(sequence=sequence, files=files)


class _ColumnFamily:
    """One keyspace: a memtable plus leveled immutable tables."""

    def __init__(self, name: str, cf_id: int) -> None:
        self.name = name
        self.cf_id = cf_id
        self.memtable = MemTable(seed=cf_id)
        # levels[0] is L0 (newest table first, may overlap);
        # levels[i>0] are sorted runs (tables ordered by key, disjoint).
        self.levels: list[list[SSTable]] = [[]]


@dataclass
class LsmStats:
    """Operation counters (read by the latency cost models and tests)."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    memtable_hits: int = 0
    sstable_reads: int = 0
    bloom_skips: int = 0
    flushes: int = 0
    compactions: int = 0
    checkpoint_count: int = 0


class LsmDb:
    """An embedded multi-column-family LSM store."""

    def __init__(self, storage: StorageBackend | None = None, config: LsmConfig | None = None) -> None:
        self._live_checkpoints: list[Checkpoint] = []
        self.storage = storage if storage is not None else MemoryStorage()
        self.config = config if config is not None else LsmConfig()
        self.stats = LsmStats()
        self._cfs: dict[str, _ColumnFamily] = {}
        self._cf_by_id: dict[int, _ColumnFamily] = {}
        self._next_file = 0
        self._sequence = 0
        self._wal: WriteAheadLog | None = None
        if self.storage.exists(_MANIFEST):
            self._recover()
        else:
            self.create_column_family("default")
            self._write_manifest()
        if self.config.wal_enabled and self._wal is None:
            self._wal = WriteAheadLog(self.storage, _WAL)

    # -- column families ---------------------------------------------------

    def create_column_family(self, name: str) -> None:
        """Create a keyspace; no-op if it already exists."""
        if name in self._cfs:
            return
        cf = _ColumnFamily(name, cf_id=len(self._cfs))
        self._cfs[name] = cf
        self._cf_by_id[cf.cf_id] = cf

    def column_families(self) -> list[str]:
        """Names of all column families."""
        return sorted(self._cfs)

    def _cf(self, name: str) -> _ColumnFamily:
        try:
            return self._cfs[name]
        except KeyError:
            raise StorageError(f"unknown column family {name!r}") from None

    # -- mutations -----------------------------------------------------------

    def put(self, key: bytes, value: bytes, cf: str = "default") -> None:
        """Insert or overwrite a key."""
        family = self._cf(cf)
        if self._wal is not None:
            self._wal.append_put(family.cf_id, key, value)
        family.memtable.put(key, value)
        self.stats.puts += 1
        self._maybe_flush(family)

    def delete(self, key: bytes, cf: str = "default") -> None:
        """Delete a key (write a tombstone)."""
        family = self._cf(cf)
        if self._wal is not None:
            self._wal.append_delete(family.cf_id, key)
        family.memtable.delete(key)
        self.stats.deletes += 1
        self._maybe_flush(family)

    # -- reads ----------------------------------------------------------------

    def get(self, key: bytes, cf: str = "default") -> bytes | None:
        """Latest value for ``key`` or None (tombstones hide older values)."""
        family = self._cf(cf)
        self.stats.gets += 1
        value = family.memtable.get(key)
        if value is not None:
            self.stats.memtable_hits += 1
            return None if value is TOMBSTONE else value  # type: ignore[return-value]
        for level_no, level in enumerate(family.levels):
            tables = level if level_no == 0 else self._run_candidates(level, key)
            for table in tables:
                if not table.might_contain(key):
                    self.stats.bloom_skips += 1
                    continue
                self.stats.sstable_reads += 1
                found = table.get(key)
                if found is not None:
                    return None if found is TOMBSTONE else found  # type: ignore[return-value]
        return None

    @staticmethod
    def _run_candidates(level: list[SSTable], key: bytes) -> list[SSTable]:
        """Binary search the (disjoint, sorted) run for the covering table."""
        lo, hi = 0, len(level) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            table = level[mid]
            if key < table.min_key:
                hi = mid - 1
            elif key > table.max_key:
                lo = mid + 1
            else:
                return [table]
        return []

    def scan(self, start: bytes | None = None, end: bytes | None = None, cf: str = "default"):
        """Yield live ``(key, value)`` pairs with ``start <= key < end``.

        Sources are merged newest-first so shadowed versions and deleted
        keys never surface.
        """
        family = self._cf(cf)
        sources: list = [family.memtable.scan(start, end)]
        for level_no, level in enumerate(family.levels):
            if level_no == 0:
                sources.extend(table.entries(start, end) for table in level)
            else:
                sources.extend(table.entries(start, end) for table in level)
        yield from _merge_entries(sources, drop_tombstones=True)

    def prefix_scan(self, prefix: bytes, cf: str = "default"):
        """All live entries whose key starts with ``prefix``."""
        end = _prefix_end(prefix)
        yield from self.scan(prefix, end, cf=cf)

    # -- flush & compaction ---------------------------------------------------

    def _maybe_flush(self, family: _ColumnFamily) -> None:
        if family.memtable.approximate_bytes >= self.config.memtable_flush_bytes:
            self._flush_family(family)

    def flush(self) -> None:
        """Flush every memtable to L0 and reset the WAL."""
        for family in self._cfs.values():
            if len(family.memtable):
                self._flush_family(family, reset_wal=False)
        if self._wal is not None:
            self._wal.reset()
        self._write_manifest()

    def _flush_family(self, family: _ColumnFamily, reset_wal: bool = True) -> None:
        if not len(family.memtable):
            return
        name = self._new_file_name(family, level=0)
        table = SSTable.write(
            self.storage,
            name,
            family.memtable.items(),
            index_interval=self.config.index_interval,
            bloom_fp_rate=self.config.bloom_fp_rate,
        )
        family.levels[0].insert(0, table)  # newest first
        family.memtable = MemTable(seed=family.cf_id)
        self.stats.flushes += 1
        if len(family.levels[0]) >= self.config.l0_compaction_threshold:
            self._compact(family, 0)
        if reset_wal and self._wal is not None and self._all_memtables_empty():
            self._wal.reset()
        self._write_manifest()

    def _all_memtables_empty(self) -> bool:
        return all(not len(f.memtable) for f in self._cfs.values())

    def _level_bytes(self, level: list[SSTable]) -> int:
        return sum(table.file_size() for table in level)

    def _compact(self, family: _ColumnFamily, level_no: int) -> None:
        """Merge ``level_no`` into ``level_no + 1`` as one fresh run."""
        while len(family.levels) <= level_no + 1:
            family.levels.append([])
        upper = family.levels[level_no]
        lower = family.levels[level_no + 1]
        if not upper:
            return
        is_bottom = all(
            not family.levels[i] for i in range(level_no + 2, len(family.levels))
        )
        # Newest-first ordering: L0 tables are newest-first already; the
        # lower run is older than anything above it.
        sources = [table.entries() for table in upper] + [table.entries() for table in lower]
        merged = _merge_entries(sources, drop_tombstones=is_bottom)

        out_name = self._new_file_name(family, level=level_no + 1)
        new_table = SSTable.write(
            self.storage,
            out_name,
            merged,
            index_interval=self.config.index_interval,
            bloom_fp_rate=self.config.bloom_fp_rate,
        )
        for stale in upper + lower:
            self._delete_table_if_unreferenced(stale)
        family.levels[level_no] = []
        family.levels[level_no + 1] = [new_table] if new_table.count else []
        self.stats.compactions += 1
        # Cascade when the freshly-built level exceeds its budget.
        budget = self.config.base_level_bytes * (
            self.config.level_size_multiplier ** max(level_no, 0)
        )
        if self._level_bytes(family.levels[level_no + 1]) > budget:
            self._compact(family, level_no + 1)

    def _delete_table_if_unreferenced(self, table: SSTable) -> None:
        # Checkpoints may still reference the file; keep it if so.
        if table.name in self._checkpointed_files:
            return
        if self.storage.exists(table.name):
            self.storage.delete(table.name)

    # -- checkpoints ------------------------------------------------------------

    @property
    def _checkpointed_files(self) -> set[str]:
        files: set[str] = set()
        for checkpoint in self._live_checkpoints:
            files |= checkpoint.all_files()
        return files

    def checkpoint(self) -> Checkpoint:
        """Flush and snapshot the manifest; cheap because files are immutable."""
        self.flush()
        self._sequence += 1
        snapshot = Checkpoint(
            sequence=self._sequence,
            files={
                name: [[t.name for t in level] for level in family.levels]
                for name, family in self._cfs.items()
            },
        )
        self._live_checkpoints.append(snapshot)
        self.stats.checkpoint_count += 1
        return snapshot

    def release_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Drop a checkpoint and garbage-collect files it pinned."""
        self._live_checkpoints = [
            cp for cp in self._live_checkpoints if cp.sequence != checkpoint.sequence
        ]
        live: set[str] = self._checkpointed_files
        for family in self._cfs.values():
            for level in family.levels:
                live |= {t.name for t in level}
        for name in checkpoint.all_files():
            if name not in live and self.storage.exists(name):
                self.storage.delete(name)

    def export_checkpoint(self, checkpoint: Checkpoint, exclude: set[str] | None = None) -> dict[str, bytes]:
        """File name -> contents for transfer; ``exclude`` enables delta copy."""
        exclude = exclude or set()
        payload: dict[str, bytes] = {}
        for name in sorted(checkpoint.all_files()):
            if name in exclude:
                continue
            payload[name] = self.storage.read_all(name)
        return payload

    @classmethod
    def import_checkpoint(
        cls,
        checkpoint: Checkpoint,
        files: dict[str, bytes],
        storage: StorageBackend | None = None,
        config: LsmConfig | None = None,
    ) -> "LsmDb":
        """Materialize a DB from a checkpoint + transferred file contents."""
        storage = storage if storage is not None else MemoryStorage()
        for name, data in files.items():
            if not storage.exists(name):
                storage.create(name)
                storage.append(name, data)
                storage.seal(name)
        db = cls(storage=storage, config=config)
        db._restore_from_checkpoint(checkpoint)
        return db

    def _restore_from_checkpoint(self, checkpoint: Checkpoint) -> None:
        self._cfs.clear()
        self._cf_by_id.clear()
        for cf_name in sorted(checkpoint.files):
            self.create_column_family(cf_name)
            family = self._cfs[cf_name]
            family.levels = []
            for level in checkpoint.files[cf_name]:
                tables = [SSTable.open(self.storage, name) for name in level]
                family.levels.append(tables)
            if not family.levels:
                family.levels = [[]]
        if "default" not in self._cfs:
            self.create_column_family("default")
        self._sequence = checkpoint.sequence
        self._next_file = self._max_file_number() + 1
        self._write_manifest()

    def _max_file_number(self) -> int:
        best = -1
        for family in self._cfs.values():
            for level in family.levels:
                for table in level:
                    try:
                        number = int(table.name.split("-")[-1].split(".")[0])
                    except ValueError:
                        continue
                    best = max(best, number)
        return best

    # -- manifest & recovery ------------------------------------------------------

    def _new_file_name(self, family: _ColumnFamily, level: int) -> str:
        name = f"sst-{family.name}-L{level}-{self._next_file:08d}.sst"
        self._next_file += 1
        return name

    def _write_manifest(self) -> None:
        snapshot = Checkpoint(
            sequence=self._sequence,
            files={
                name: [[t.name for t in level] for level in family.levels]
                for name, family in self._cfs.items()
            },
        )
        blob = snapshot.to_bytes()
        buf = bytearray()
        serde.write_u32(buf, serde.crc32_of(blob))
        serde.write_bytes(buf, blob)
        if self.storage.exists(_MANIFEST):
            self.storage.delete(_MANIFEST)
        self.storage.create(_MANIFEST)
        self.storage.append(_MANIFEST, bytes(buf))

    def _recover(self) -> None:
        raw = self.storage.read_all(_MANIFEST)
        crc, offset = serde.read_u32(raw, 0)
        blob, _ = serde.read_bytes(raw, offset)
        if serde.crc32_of(blob) != crc:
            raise StorageError("corrupt manifest")
        snapshot = Checkpoint.from_bytes(blob)
        self._restore_from_checkpoint(snapshot)
        # Replay the WAL into fresh memtables.
        if self.config.wal_enabled and self.storage.exists(_WAL):
            self._wal = WriteAheadLog(self.storage, _WAL)
            for cf_id, kind, key, value in self._wal.replay():
                family = self._cf_by_id.get(cf_id)
                if family is None:
                    continue
                if WriteAheadLog.kind_is_put(kind):
                    family.memtable.put(key, value)  # type: ignore[arg-type]
                else:
                    family.memtable.delete(key)

    # -- introspection -----------------------------------------------------------

    def total_entries_estimate(self, cf: str = "default") -> int:
        """Upper bound on live entries (duplicates across levels counted)."""
        family = self._cf(cf)
        total = len(family.memtable)
        for level in family.levels:
            total += sum(t.count for t in level)
        return total

    def level_shape(self, cf: str = "default") -> list[int]:
        """Tables per level — handy for compaction assertions in tests."""
        return [len(level) for level in self._cf(cf).levels]


def _prefix_end(prefix: bytes) -> bytes | None:
    """Smallest key greater than every key with ``prefix``."""
    buf = bytearray(prefix)
    while buf:
        if buf[-1] < 0xFF:
            buf[-1] += 1
            return bytes(buf)
        buf.pop()
    return None


def _merge_entries(sources: list, drop_tombstones: bool) -> "list[tuple[bytes, object]]":
    """K-way merge of sorted entry iterators, newest source first.

    For duplicate keys, only the entry from the *earliest* source wins
    (sources must be ordered newest-first). Returns a generator.
    """

    def generator():
        heap: list[tuple[bytes, int, object]] = []
        iters = [iter(src) for src in sources]
        for priority, it in enumerate(iters):
            try:
                key, value = next(it)
                heapq.heappush(heap, (key, priority, value))
            except StopIteration:
                pass
        last_key: bytes | None = None
        while heap:
            key, priority, value = heapq.heappop(heap)
            try:
                nkey, nvalue = next(iters[priority])
                heapq.heappush(heap, (nkey, priority, nvalue))
            except StopIteration:
                pass
            if key == last_key:
                continue
            last_key = key
            if value is TOMBSTONE:
                if not drop_tombstones:
                    yield key, TOMBSTONE
                continue
            yield key, value

    return generator()
