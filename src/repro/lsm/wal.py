"""Write-ahead log.

Every mutation is appended here before touching the memtable, so an
unflushed memtable can be rebuilt after a crash. Records carry a CRC-32
so a torn tail write is detected and replay stops cleanly at the last
complete record (instead of resurrecting garbage).

Record wire format::

    u32 crc | varint len | payload
    payload := varint cf_id | u8 kind | bytes key | [bytes value]

``kind`` is 0 for put, 1 for delete.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.common import serde
from repro.common.errors import StorageError
from repro.common.storage import StorageBackend

_KIND_PUT = 0
_KIND_DELETE = 1


class WriteAheadLog:
    """Append-only mutation log over a :class:`StorageBackend` file."""

    def __init__(self, storage: StorageBackend, name: str) -> None:
        self._storage = storage
        self.name = name
        if not storage.exists(name):
            storage.create(name)

    def append_put(self, cf_id: int, key: bytes, value: bytes) -> None:
        """Log a put."""
        payload = bytearray()
        serde.write_varint(payload, cf_id)
        payload.append(_KIND_PUT)
        serde.write_bytes(payload, key)
        serde.write_bytes(payload, value)
        self._append_record(bytes(payload))

    def append_delete(self, cf_id: int, key: bytes) -> None:
        """Log a delete."""
        payload = bytearray()
        serde.write_varint(payload, cf_id)
        payload.append(_KIND_DELETE)
        serde.write_bytes(payload, key)
        self._append_record(bytes(payload))

    def _append_record(self, payload: bytes) -> None:
        record = bytearray()
        serde.write_u32(record, serde.crc32_of(payload))
        serde.write_varint(record, len(payload))
        record.extend(payload)
        self._storage.append(self.name, bytes(record))

    def replay(self) -> Iterator[tuple[int, int, bytes, bytes | None]]:
        """Yield ``(cf_id, kind, key, value_or_None)`` for intact records.

        Stops silently at the first corrupt/truncated record — that is
        the torn tail of an interrupted write, and everything before it
        is durable.
        """
        data = self._storage.read_all(self.name)
        offset = 0
        while offset < len(data):
            try:
                crc, offset2 = serde.read_u32(data, offset)
                length, offset2 = serde.read_varint(data, offset2)
                end = offset2 + length
                if end > len(data):
                    return
                payload = data[offset2:end]
                if serde.crc32_of(payload) != crc:
                    return
                cf_id, poff = serde.read_varint(payload, 0)
                kind = payload[poff]
                poff += 1
                key, poff = serde.read_bytes(payload, poff)
                value: bytes | None = None
                if kind == _KIND_PUT:
                    value, poff = serde.read_bytes(payload, poff)
                elif kind != _KIND_DELETE:
                    return
                yield cf_id, kind, key, value
                offset = end
            except StorageError:
                return
            except Exception:
                # Any decode failure inside a record means a torn write.
                return

    def size(self) -> int:
        """Current log size in bytes."""
        return self._storage.size(self.name)

    def reset(self) -> None:
        """Truncate the log (called after a successful memtable flush)."""
        self._storage.delete(self.name)
        self._storage.create(self.name)

    @staticmethod
    def kind_is_put(kind: int) -> bool:
        """True for put records from :meth:`replay`."""
        return kind == _KIND_PUT
