"""Immutable sorted-string tables.

An SSTable is written once from a sorted stream of entries and never
mutated — the property that makes LSM checkpoints cheap (§4.1.3) and
lets the engine's recovery transfer files wholesale.

File layout::

    data region  : N x [ u8 kind | bytes key | [bytes value] ]
    index region : sparse index, every `index_interval`-th key -> offset
    bloom region : serialized bloom filter over all keys
    footer       : varint data_end | varint index_off | varint bloom_off |
                   varint count | min_key | max_key | u32 crc(footer body)
    trailer      : u32 footer_length (fixed width, read from file end)
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.common import serde
from repro.common.errors import StorageError
from repro.common.storage import StorageBackend
from repro.lsm.bloom import BloomFilter
from repro.lsm.memtable import TOMBSTONE

_KIND_PUT = 0
_KIND_DELETE = 1


class SSTable:
    """Reader handle over one immutable table file."""

    def __init__(
        self,
        storage: StorageBackend,
        name: str,
        *,
        index: list[tuple[bytes, int]],
        bloom: BloomFilter,
        count: int,
        min_key: bytes,
        max_key: bytes,
        data_end: int,
    ) -> None:
        self._storage = storage
        self.name = name
        self._index = index
        self._bloom = bloom
        self.count = count
        self.min_key = min_key
        self.max_key = max_key
        self._data_end = data_end

    # -- writing ---------------------------------------------------------

    @classmethod
    def write(
        cls,
        storage: StorageBackend,
        name: str,
        entries: Iterable[tuple[bytes, object]],
        index_interval: int = 16,
        bloom_fp_rate: float = 0.01,
    ) -> "SSTable":
        """Write sorted ``(key, value_or_TOMBSTONE)`` entries to a new file.

        Entries must be strictly increasing by key; violations raise
        :class:`StorageError` (they would corrupt binary search).
        """
        materialized = list(entries)
        data = bytearray()
        index: list[tuple[bytes, int]] = []
        bloom = BloomFilter.for_capacity(len(materialized), bloom_fp_rate)
        prev_key: bytes | None = None
        min_key = b""
        max_key = b""
        for position, (key, value) in enumerate(materialized):
            if prev_key is not None and key <= prev_key:
                raise StorageError(
                    f"sstable entries out of order: {key!r} after {prev_key!r}"
                )
            prev_key = key
            if position == 0:
                min_key = key
            max_key = key
            if position % index_interval == 0:
                index.append((key, len(data)))
            bloom.add(key)
            if value is TOMBSTONE:
                data.append(_KIND_DELETE)
                serde.write_bytes(data, key)
            else:
                data.append(_KIND_PUT)
                serde.write_bytes(data, key)
                serde.write_bytes(data, value)  # type: ignore[arg-type]

        index_blob = bytearray()
        serde.write_varint(index_blob, len(index))
        for key, offset in index:
            serde.write_bytes(index_blob, key)
            serde.write_varint(index_blob, offset)
        bloom_blob = bloom.to_bytes()

        footer = bytearray()
        serde.write_varint(footer, len(data))
        serde.write_varint(footer, len(data))  # index offset == data end
        serde.write_varint(footer, len(data) + len(index_blob))
        serde.write_varint(footer, len(materialized))
        serde.write_bytes(footer, min_key)
        serde.write_bytes(footer, max_key)
        serde.write_u32(footer, serde.crc32_of(bytes(footer)))

        blob = bytearray()
        blob.extend(data)
        blob.extend(index_blob)
        blob.extend(bloom_blob)
        blob.extend(footer)
        trailer = bytearray()
        serde.write_u32(trailer, len(footer))
        blob.extend(trailer)

        storage.create(name)
        storage.append(name, bytes(blob))
        storage.seal(name)
        return cls(
            storage,
            name,
            index=index,
            bloom=bloom,
            count=len(materialized),
            min_key=min_key,
            max_key=max_key,
            data_end=len(data),
        )

    # -- opening ---------------------------------------------------------

    @classmethod
    def open(cls, storage: StorageBackend, name: str) -> "SSTable":
        """Open an existing table, reading its index/bloom/footer."""
        size = storage.size(name)
        if size < 4:
            raise StorageError(f"sstable too small: {name}")
        trailer = storage.read(name, size - 4, 4)
        footer_len, _ = serde.read_u32(trailer, 0)
        footer_off = size - 4 - footer_len
        if footer_off < 0:
            raise StorageError(f"corrupt sstable trailer: {name}")
        footer = storage.read(name, footer_off, footer_len)
        body = footer[:-4]
        crc, _ = serde.read_u32(footer, footer_len - 4)
        if serde.crc32_of(body) != crc:
            raise StorageError(f"corrupt sstable footer: {name}")
        offset = 0
        data_end, offset = serde.read_varint(footer, offset)
        index_off, offset = serde.read_varint(footer, offset)
        bloom_off, offset = serde.read_varint(footer, offset)
        count, offset = serde.read_varint(footer, offset)
        min_key, offset = serde.read_bytes(footer, offset)
        max_key, offset = serde.read_bytes(footer, offset)

        index_blob = storage.read(name, index_off, bloom_off - index_off)
        index: list[tuple[bytes, int]] = []
        ioff = 0
        n, ioff = serde.read_varint(index_blob, ioff)
        for _ in range(n):
            key, ioff = serde.read_bytes(index_blob, ioff)
            rec_off, ioff = serde.read_varint(index_blob, ioff)
            index.append((key, rec_off))

        bloom_blob = storage.read(name, bloom_off, footer_off - bloom_off)
        bloom, _ = BloomFilter.from_bytes(bloom_blob, 0)
        return cls(
            storage,
            name,
            index=index,
            bloom=bloom,
            count=count,
            min_key=min_key,
            max_key=max_key,
            data_end=data_end,
        )

    # -- reading ---------------------------------------------------------

    def might_contain(self, key: bytes) -> bool:
        """Bloom + key-range pre-check (False is authoritative)."""
        if self.count == 0:
            return False
        if key < self.min_key or key > self.max_key:
            return False
        return self._bloom.might_contain(key)

    def _seek_slot(self, key: bytes) -> int:
        """Index slot of the largest sparse-index key that is <= ``key``."""
        lo, hi = 0, len(self._index) - 1
        best = 0
        while lo <= hi:
            mid = (lo + hi) // 2
            if self._index[mid][0] <= key:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1
        return best

    def _seek_offset(self, key: bytes) -> int:
        """Largest sparse-index offset whose key is <= ``key``."""
        if not self._index:
            return 0
        return self._index[self._seek_slot(key)][1]

    def get(self, key: bytes) -> object | None:
        """Value bytes, TOMBSTONE, or None when absent from this table."""
        if not self.might_contain(key):
            return None
        # A point lookup only needs the records between two consecutive
        # sparse-index entries (the key, if present, cannot be elsewhere).
        slot = self._seek_slot(key)
        start = self._index[slot][1] if self._index else 0
        end = self._index[slot + 1][1] if slot + 1 < len(self._index) else self._data_end
        data = self._storage.read(self.name, start, end - start)
        offset = 0
        while offset < len(data):
            kind = data[offset]
            offset += 1
            entry_key, offset = serde.read_bytes(data, offset)
            if kind == _KIND_PUT:
                value, offset = serde.read_bytes(data, offset)
            else:
                value = TOMBSTONE  # type: ignore[assignment]
            if entry_key == key:
                return value
            if entry_key > key:
                return None
        return None

    def entries(self, start: bytes | None = None, end: bytes | None = None) -> Iterator[tuple[bytes, object]]:
        """All entries with ``start <= key < end`` in key order."""
        data = self._read_data()
        offset = self._seek_offset(start) if start is not None else 0
        while offset < len(data):
            kind = data[offset]
            offset += 1
            key, offset = serde.read_bytes(data, offset)
            if kind == _KIND_PUT:
                value, offset = serde.read_bytes(data, offset)
            else:
                value = TOMBSTONE  # type: ignore[assignment]
            if start is not None and key < start:
                continue
            if end is not None and key >= end:
                return
            yield key, value

    def _read_data(self) -> bytes:
        return self._storage.read(self.name, 0, self._data_end)

    def file_size(self) -> int:
        """On-disk size in bytes."""
        return self._storage.size(self.name)

    def __repr__(self) -> str:
        return f"SSTable({self.name}, count={self.count})"
