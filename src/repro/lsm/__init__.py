"""Embedded LSM-tree key-value store — the RocksDB stand-in (paper §4.1.3).

Railgun keeps aggregation states in an embedded store "built on top of
LSM-trees"; this package implements that substrate from scratch:

- :class:`~repro.lsm.memtable.MemTable` — skip-list in-memory buffer;
- :class:`~repro.lsm.wal.WriteAheadLog` — per-record CRC, replay on open;
- :class:`~repro.lsm.sstable.SSTable` — immutable sorted files with a
  sparse index and bloom filter;
- :class:`~repro.lsm.db.LsmDb` — column families, leveled compaction,
  cheap checkpoints (flush + manifest snapshot over immutable files),
  the property the engine's recovery path relies on (§4.1.3: "this
  makes checkpoints very efficient").
"""

from repro.lsm.bloom import BloomFilter
from repro.lsm.db import Checkpoint, LsmConfig, LsmDb
from repro.lsm.memtable import TOMBSTONE, MemTable
from repro.lsm.sstable import SSTable
from repro.lsm.wal import WriteAheadLog

__all__ = [
    "BloomFilter",
    "MemTable",
    "TOMBSTONE",
    "SSTable",
    "WriteAheadLog",
    "LsmDb",
    "LsmConfig",
    "Checkpoint",
]
