"""Bloom filter for SSTable point lookups.

A negative answer lets :meth:`LsmDb.get` skip reading a table entirely —
the standard LSM optimization for read amplification.
"""

from __future__ import annotations

import math

from repro.common import serde
from repro.common.hashing import fnv1a_64


class BloomFilter:
    """Fixed-size bloom filter with double hashing.

    Uses the Kirsch–Mitzenmacher trick: ``h_i = h1 + i * h2`` gives k
    independent-enough probes from two base hashes.
    """

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        if num_bits <= 0 or num_hashes <= 0:
            raise ValueError("num_bits and num_hashes must be positive")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)

    @classmethod
    def for_capacity(cls, expected_items: int, false_positive_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for ``expected_items`` at a target FP rate."""
        expected_items = max(expected_items, 1)
        if not 0 < false_positive_rate < 1:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        num_bits = max(8, int(-expected_items * math.log(false_positive_rate) / (ln2 * ln2)))
        num_hashes = max(1, int(round(num_bits / expected_items * ln2)))
        return cls(num_bits, num_hashes)

    def _probes(self, key: bytes):
        h1 = fnv1a_64(key, seed=0x51ED)
        h2 = fnv1a_64(key, seed=0xC0FFEE) | 1
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, key: bytes) -> None:
        """Insert a key."""
        for bit in self._probes(key):
            self._bits[bit >> 3] |= 1 << (bit & 7)

    def might_contain(self, key: bytes) -> bool:
        """False means definitely absent; True means probably present."""
        return all(self._bits[bit >> 3] & (1 << (bit & 7)) for bit in self._probes(key))

    def to_bytes(self) -> bytes:
        """Serialize for embedding in an SSTable."""
        buf = bytearray()
        serde.write_varint(buf, self.num_bits)
        serde.write_varint(buf, self.num_hashes)
        serde.write_bytes(buf, bytes(self._bits))
        return bytes(buf)

    @classmethod
    def from_bytes(cls, data: bytes | memoryview, offset: int = 0) -> tuple["BloomFilter", int]:
        """Inverse of :meth:`to_bytes`."""
        num_bits, offset = serde.read_varint(data, offset)
        num_hashes, offset = serde.read_varint(data, offset)
        raw, offset = serde.read_bytes(data, offset)
        bloom = cls(num_bits, num_hashes)
        bloom._bits = bytearray(raw)
        return bloom, offset
