"""Skip-list memtable.

The in-memory write buffer of the LSM store: sorted by key, O(log n)
point and range operations, and a deterministic-iteration structure we
can flush straight into an SSTable. A skip list matches what RocksDB
uses and keeps inserts cheap without rebalancing.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

#: Sentinel stored as a value to mark deletions. Distinct from any bytes.
TOMBSTONE = object()

_MAX_LEVEL = 16
_P = 0.25


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: bytes | None, value: object, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: list[_Node | None] = [None] * level


class MemTable:
    """Sorted in-memory map from ``bytes`` keys to ``bytes`` or TOMBSTONE."""

    def __init__(self, seed: int | None = 0) -> None:
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._rng = random.Random(seed)
        self._count = 0
        self._bytes = 0

    def __len__(self) -> int:
        return self._count

    @property
    def approximate_bytes(self) -> int:
        """Rough payload size, used for flush threshold decisions."""
        return self._bytes

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: bytes) -> list[_Node]:
        update: list[_Node] = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lvl]
            update[lvl] = node
        return update

    def put(self, key: bytes, value: object) -> None:
        """Insert or overwrite; ``value`` is bytes or :data:`TOMBSTONE`."""
        update = self._find_predecessors(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            old = candidate.value
            candidate.value = value
            if old is not TOMBSTONE and isinstance(old, bytes):
                self._bytes -= len(old)
            if value is not TOMBSTONE and isinstance(value, bytes):
                self._bytes += len(value)
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = update[lvl].forward[lvl]
            update[lvl].forward[lvl] = node
        self._count += 1
        self._bytes += len(key)
        if value is not TOMBSTONE and isinstance(value, bytes):
            self._bytes += len(value)

    def delete(self, key: bytes) -> None:
        """Record a deletion (tombstone); the key may not exist yet."""
        self.put(key, TOMBSTONE)

    def get(self, key: bytes) -> object | None:
        """Value bytes, :data:`TOMBSTONE`, or None when the key is absent."""
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and nxt.key < key:  # type: ignore[operator]
                node = nxt
                nxt = node.forward[lvl]
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return None

    def items(self) -> Iterator[tuple[bytes, object]]:
        """All entries in key order (including tombstones)."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]

    def scan(self, start: bytes | None = None, end: bytes | None = None) -> Iterator[tuple[bytes, object]]:
        """Entries with ``start <= key < end`` in key order."""
        if start is None:
            node = self._head.forward[0]
        else:
            update = self._find_predecessors(start)
            node = update[0].forward[0]
        while node is not None:
            if end is not None and node.key >= end:  # type: ignore[operator]
                return
            yield node.key, node.value  # type: ignore[misc]
            node = node.forward[0]
