"""Query AST: the parsed form of a Figure 4 statement."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.expressions import Expression
from repro.windows.spec import WindowSpec


@dataclass(frozen=True)
class AggSpec:
    """One aggregation: ``name(field)``; field is None for ``count(*)``."""

    name: str
    field: str | None

    def metric_name(self) -> str:
        """Stable display/storage name, e.g. ``sum(amount)``."""
        return f"{self.name}({self.field if self.field is not None else '*'})"


@dataclass(frozen=True)
class Query:
    """A parsed metric statement.

    The strict operator order (Window -> Filter -> GroupBy -> Aggregator,
    §4.1.2) is inherent in the shape: one window, one optional filter,
    one group-by key list, many aggregations.
    """

    aggregations: tuple[AggSpec, ...]
    stream: str
    window: WindowSpec
    where: Expression | None = None
    group_by: tuple[str, ...] = field(default=())
    raw_text: str = ""
    #: read-time clause (``AS OF <epoch-ms>``): evaluate the metric as it
    #: stood at this event-time instant via checkpoint + bounded log
    #: replay. Not valid in DDL — a metric definition has no read instant.
    as_of: int | None = None

    def metric_names(self) -> list[str]:
        """Display names for each aggregation column."""
        return [agg.metric_name() for agg in self.aggregations]

    def describe(self) -> str:
        """Canonical one-line rendering of the query."""
        parts = [
            "SELECT " + ", ".join(self.metric_names()),
            f"FROM {self.stream}",
        ]
        if self.where is not None:
            parts.append("WHERE <filter>")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(self.group_by))
        parts.append(f"OVER {self.window.describe()}")
        if self.as_of is not None:
            parts.append(f"AS OF {self.as_of}")
        return " ".join(parts)
