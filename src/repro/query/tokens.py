"""Tokenizer shared by the query parser and the expression language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import QueryError


class TokenKind(enum.Enum):
    """Lexical token categories."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    STAR = "*"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: TokenKind
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword match on identifier tokens."""
        return self.kind is TokenKind.IDENT and self.text.lower() == word.lower()


_OPERATORS = (
    "||", "&&", "==", "!=", "<=", ">=", "<", ">",
    "+", "-", "*", "/", "%", "!", "?", ":", ".",
)


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`QueryError` on bad input."""
    tokens: list[Token] = []
    position = 0
    length = len(text)
    while position < length:
        char = text[position]
        if char.isspace():
            position += 1
            continue
        if char == "(":
            tokens.append(Token(TokenKind.LPAREN, char, position))
            position += 1
            continue
        if char == ")":
            tokens.append(Token(TokenKind.RPAREN, char, position))
            position += 1
            continue
        if char == ",":
            tokens.append(Token(TokenKind.COMMA, char, position))
            position += 1
            continue
        if char in "'\"":
            end = position + 1
            chars: list[str] = []
            while end < length and text[end] != char:
                if text[end] == "\\" and end + 1 < length:
                    chars.append(text[end + 1])
                    end += 2
                else:
                    chars.append(text[end])
                    end += 1
            if end >= length:
                raise QueryError("unterminated string literal", position)
            tokens.append(Token(TokenKind.STRING, "".join(chars), position))
            position = end + 1
            continue
        if char.isdigit() or (
            char == "." and position + 1 < length and text[position + 1].isdigit()
        ):
            end = position
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenKind.NUMBER, text[position:end], position))
            position = end
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            tokens.append(Token(TokenKind.IDENT, text[position:end], position))
            position = end
            continue
        matched = False
        for operator in _OPERATORS:
            if text.startswith(operator, position):
                if operator == "*":
                    tokens.append(Token(TokenKind.STAR, operator, position))
                else:
                    tokens.append(Token(TokenKind.OPERATOR, operator, position))
                position += len(operator)
                matched = True
                break
        if not matched:
            raise QueryError(f"unexpected character {char!r}", position)
    tokens.append(Token(TokenKind.EOF, "", length))
    return tokens
