"""The filter-expression language (JEXL-like, paper §3.4).

A small, null-safe expression language evaluated against events:

- literals: numbers, ``'strings'``, ``true``/``false``/``null``;
- identifiers resolve to event fields (absent fields read as null);
- operators (by precedence, loosest first): ``?:`` ternary, ``||``,
  ``&&``, equality ``== !=``, comparison ``< <= > >=``, additive
  ``+ -``, multiplicative ``* / %``, unary ``! -``;
- null propagates through arithmetic and comparisons (a comparison with
  null is false; arithmetic with null is null), so filters never throw
  on missing data — events simply fail the predicate.

Expressions are parsed once at metric-creation time into an AST of
:class:`Expression` nodes and evaluated per event.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ExpressionError
from repro.events.event import Event
from repro.query.tokens import Token, TokenKind, tokenize


class Expression(ABC):
    """AST node; ``evaluate`` never raises on missing/odd-typed data."""

    @abstractmethod
    def evaluate(self, event: Event) -> Any:
        """Value of this expression for ``event``."""

    @abstractmethod
    def referenced_fields(self) -> set[str]:
        """Field names the expression reads (used by the validator)."""

    def matches(self, event: Event) -> bool:
        """Predicate view: only an exact ``True`` passes the filter."""
        return self.evaluate(event) is True


@dataclass(frozen=True)
class Literal(Expression):
    """A constant."""

    value: Any

    def evaluate(self, event: Event) -> Any:
        return self.value

    def referenced_fields(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class FieldRef(Expression):
    """An event-field reference."""

    name: str

    def evaluate(self, event: Event) -> Any:
        return event.get(self.name)

    def referenced_fields(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class Unary(Expression):
    """``!x`` or ``-x``."""

    operator: str
    operand: Expression

    def evaluate(self, event: Event) -> Any:
        value = self.operand.evaluate(event)
        if self.operator == "!":
            if value is None:
                return None
            return not _truthy(value)
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return None
        return -value

    def referenced_fields(self) -> set[str]:
        return self.operand.referenced_fields()


@dataclass(frozen=True)
class Binary(Expression):
    """Any two-operand operator."""

    operator: str
    left: Expression
    right: Expression

    def evaluate(self, event: Event) -> Any:
        operator = self.operator
        if operator == "||":
            left = self.left.evaluate(event)
            if _truthy(left):
                return True
            return _truthy(self.right.evaluate(event))
        if operator == "&&":
            left = self.left.evaluate(event)
            if not _truthy(left):
                return False
            return _truthy(self.right.evaluate(event))
        left = self.left.evaluate(event)
        right = self.right.evaluate(event)
        if operator == "==":
            return left == right
        if operator == "!=":
            return left != right
        if operator in ("<", "<=", ">", ">="):
            if not _comparable(left, right):
                return False
            if operator == "<":
                return left < right
            if operator == "<=":
                return left <= right
            if operator == ">":
                return left > right
            return left >= right
        # Arithmetic: null-propagating, numeric only (+ also concatenates
        # strings, the JEXL behaviour).
        if left is None or right is None:
            return None
        if operator == "+":
            if isinstance(left, str) and isinstance(right, str):
                return left + right
            if _numeric(left) and _numeric(right):
                return left + right
            return None
        if not (_numeric(left) and _numeric(right)):
            return None
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            return left / right if right != 0 else None
        if operator == "%":
            return left % right if right != 0 else None
        raise ExpressionError(f"unknown operator {operator!r}")

    def referenced_fields(self) -> set[str]:
        return self.left.referenced_fields() | self.right.referenced_fields()


@dataclass(frozen=True)
class Ternary(Expression):
    """``cond ? a : b``."""

    condition: Expression
    if_true: Expression
    if_false: Expression

    def evaluate(self, event: Event) -> Any:
        if _truthy(self.condition.evaluate(event)):
            return self.if_true.evaluate(event)
        return self.if_false.evaluate(event)

    def referenced_fields(self) -> set[str]:
        return (
            self.condition.referenced_fields()
            | self.if_true.referenced_fields()
            | self.if_false.referenced_fields()
        )


def _truthy(value: Any) -> bool:
    return value is not None and value is not False


def _numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _comparable(left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False
    if _numeric(left) and _numeric(right):
        return True
    return isinstance(left, str) and isinstance(right, str)


class _Parser:
    """Pratt-style recursive descent over a token list."""

    def __init__(self, tokens: list[Token], stop_keywords: frozenset[str]) -> None:
        self._tokens = tokens
        self._position = 0
        self._stop = stop_keywords

    def peek(self) -> Token:
        return self._tokens[self._position]

    def advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def at_end(self) -> bool:
        token = self.peek()
        if token.kind is TokenKind.EOF:
            return True
        return token.kind is TokenKind.IDENT and token.text.lower() in self._stop

    def parse(self) -> Expression:
        expr = self.parse_ternary()
        return expr

    def parse_ternary(self) -> Expression:
        condition = self.parse_or()
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text == "?":
            self.advance()
            if_true = self.parse_ternary()
            colon = self.advance()
            if not (colon.kind is TokenKind.OPERATOR and colon.text == ":"):
                raise ExpressionError("expected ':' in ternary", colon.position)
            if_false = self.parse_ternary()
            return Ternary(condition, if_true, if_false)
        return condition

    def _binary_level(self, operators: tuple[str, ...], next_level) -> Expression:
        left = next_level()
        while True:
            token = self.peek()
            if token.kind is TokenKind.OPERATOR and token.text in operators:
                self.advance()
                right = next_level()
                left = Binary(token.text, left, right)
            elif token.kind is TokenKind.STAR and "*" in operators:
                self.advance()
                right = next_level()
                left = Binary("*", left, right)
            else:
                return left

    def parse_or(self) -> Expression:
        return self._binary_level(("||",), self.parse_and)

    def parse_and(self) -> Expression:
        return self._binary_level(("&&",), self.parse_equality)

    def parse_equality(self) -> Expression:
        return self._binary_level(("==", "!="), self.parse_comparison)

    def parse_comparison(self) -> Expression:
        return self._binary_level(("<", "<=", ">", ">="), self.parse_additive)

    def parse_additive(self) -> Expression:
        return self._binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> Expression:
        return self._binary_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> Expression:
        token = self.peek()
        if token.kind is TokenKind.OPERATOR and token.text in ("!", "-"):
            self.advance()
            return Unary(token.text, self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.advance()
        if token.kind is TokenKind.NUMBER:
            if "." in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind is TokenKind.STRING:
            return Literal(token.text)
        if token.kind is TokenKind.LPAREN:
            inner = self.parse_ternary()
            closing = self.advance()
            if closing.kind is not TokenKind.RPAREN:
                raise ExpressionError("expected ')'", closing.position)
            return inner
        if token.kind is TokenKind.IDENT:
            lowered = token.text.lower()
            if lowered == "true":
                return Literal(True)
            if lowered == "false":
                return Literal(False)
            if lowered in ("null", "nil"):
                return Literal(None)
            return FieldRef(token.text)
        raise ExpressionError(f"unexpected token {token.text!r}", token.position)


def parse_expression(text: str) -> Expression:
    """Parse a standalone filter expression."""
    tokens = tokenize(text)
    parser = _Parser(tokens, frozenset())
    expr = parser.parse()
    trailing = parser.peek()
    if trailing.kind is not TokenKind.EOF:
        raise ExpressionError(
            f"unexpected trailing input {trailing.text!r}", trailing.position
        )
    return expr


def parse_embedded_expression(
    tokens: list[Token], start: int, stop_keywords: frozenset[str]
) -> tuple[Expression, int]:
    """Parse an expression inside a query until a stop keyword.

    Returns the expression and the index of the first unconsumed token.
    """
    parser = _Parser(tokens[start:] , stop_keywords)
    expr = parser.parse()
    return expr, start + parser._position
