"""The Railgun query language (paper §3.4, Figure 4).

SQL-like statements with a strict clause order — the restriction that
lets the planner share operator prefixes (§4.1.2)::

    SELECT sum(amount), count(*) FROM payments
    WHERE amount > 0 AND channel == 'ecom'
    GROUP BY cardId
    OVER sliding 5 minutes

Filter expressions are a small JEXL-like language (§3.4 uses Apache
Commons JEXL); see :mod:`repro.query.expressions`.
"""

from repro.query.ast import AggSpec, Query
from repro.query.expressions import Expression, parse_expression
from repro.query.parser import parse_query

__all__ = ["AggSpec", "Query", "Expression", "parse_expression", "parse_query"]
