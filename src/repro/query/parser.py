"""Parser for the Figure 4 query grammar.

::

    SELECT AggExpression FROM streamName
    [WHERE filterExpression]
    [GROUP BY fields]
    OVER WindowExpression
    [AS OF epochMillis]

    AggExpression    ::= Aggregation(field) | Aggregation(field), AggExpression
    Aggregation      ::= count | sum | avg | stdDev | max | min | last |
                         prev | countDistinct
    WindowExpression ::= TimeWindowExpr | TimeWindowExpr delayed by offset
    TimeWindowExpr   ::= sliding windowSize | tumbling windowSize | infinite

Clause order is strict (§4.1.2 relies on it for plan-prefix sharing);
out-of-order clauses are a parse error, not a reordering.
"""

from __future__ import annotations

from repro.aggregates.registry import AGGREGATOR_NAMES
from repro.common.clock import parse_duration_ms
from repro.common.errors import QueryError
from repro.query.ast import AggSpec, Query
from repro.query.expressions import parse_embedded_expression
from repro.query.tokens import Token, TokenKind, tokenize
from repro.windows.spec import WindowKind, WindowSpec

_CLAUSE_KEYWORDS = frozenset({"from", "where", "group", "over"})
_CANONICAL_AGGS = {name.lower(): name for name in AGGREGATOR_NAMES}


class _QueryParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = tokenize(text)
        self._position = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _advance(self) -> Token:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise QueryError(
                f"expected {word.upper()}, found {token.text!r}", token.position
            )
        return token

    def _expect_ident(self, what: str) -> Token:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise QueryError(f"expected {what}, found {token.text!r}", token.position)
        return token

    # -- grammar ----------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("select")
        aggregations = self._parse_aggregations()
        self._expect_keyword("from")
        stream = self._expect_ident("stream name").text
        where = None
        if self._peek().is_keyword("where"):
            self._advance()
            where, self._position = parse_embedded_expression(
                self._tokens, self._position, _CLAUSE_KEYWORDS
            )
        group_by: tuple[str, ...] = ()
        if self._peek().is_keyword("group"):
            self._advance()
            self._expect_keyword("by")
            group_by = self._parse_field_list()
        self._expect_keyword("over")
        window = self._parse_window()
        as_of = None
        if self._peek().is_keyword("as"):
            self._advance()
            self._expect_keyword("of")
            number = self._advance()
            if number.kind is not TokenKind.NUMBER:
                raise QueryError(
                    f"expected AS OF timestamp, found {number.text!r}",
                    number.position,
                )
            as_of = int(number.text)
        trailing = self._advance()
        if trailing.kind is not TokenKind.EOF:
            raise QueryError(
                f"unexpected trailing input {trailing.text!r}", trailing.position
            )
        return Query(
            aggregations=aggregations,
            stream=stream,
            window=window,
            where=where,
            group_by=group_by,
            raw_text=self._text,
            as_of=as_of,
        )

    def _parse_aggregations(self) -> tuple[AggSpec, ...]:
        aggregations: list[AggSpec] = []
        while True:
            name_token = self._expect_ident("aggregation name")
            canonical = _CANONICAL_AGGS.get(name_token.text.lower())
            if canonical is None:
                raise QueryError(
                    f"unknown aggregation {name_token.text!r}; supported: "
                    + ", ".join(AGGREGATOR_NAMES),
                    name_token.position,
                )
            lparen = self._advance()
            if lparen.kind is not TokenKind.LPAREN:
                raise QueryError("expected '(' after aggregation name", lparen.position)
            arg = self._advance()
            if arg.kind is TokenKind.STAR:
                field = None
                if canonical != "count":
                    raise QueryError(
                        f"only count(*) accepts '*', not {canonical}", arg.position
                    )
            elif arg.kind is TokenKind.IDENT:
                field = arg.text
            else:
                raise QueryError(
                    f"expected field name or '*', found {arg.text!r}", arg.position
                )
            rparen = self._advance()
            if rparen.kind is not TokenKind.RPAREN:
                raise QueryError("expected ')'", rparen.position)
            aggregations.append(AggSpec(canonical, field))
            if self._peek().kind is TokenKind.COMMA:
                self._advance()
                continue
            return tuple(aggregations)

    def _parse_field_list(self) -> tuple[str, ...]:
        fields = [self._expect_ident("group by field").text]
        while self._peek().kind is TokenKind.COMMA:
            self._advance()
            fields.append(self._expect_ident("group by field").text)
        return tuple(fields)

    def _parse_window(self) -> WindowSpec:
        kind_token = self._expect_ident("window kind")
        kind_word = kind_token.text.lower()
        if kind_word == "infinite":
            size_ms = None
            kind = WindowKind.INFINITE
        elif kind_word in ("sliding", "tumbling"):
            kind = WindowKind.SLIDING if kind_word == "sliding" else WindowKind.TUMBLING
            size_ms = self._parse_duration()
        else:
            raise QueryError(
                f"expected sliding/tumbling/infinite, found {kind_token.text!r}",
                kind_token.position,
            )
        delay_ms = 0
        if self._peek().is_keyword("delayed"):
            self._advance()
            self._expect_keyword("by")
            delay_ms = self._parse_duration()
        try:
            return WindowSpec(kind, size_ms, delay_ms)
        except ValueError as exc:
            raise QueryError(str(exc), kind_token.position) from exc

    def _parse_duration(self) -> int:
        number = self._advance()
        if number.kind is not TokenKind.NUMBER:
            raise QueryError(
                f"expected window size number, found {number.text!r}", number.position
            )
        unit = self._advance()
        if unit.kind is not TokenKind.IDENT:
            raise QueryError(
                f"expected duration unit, found {unit.text!r}", unit.position
            )
        try:
            return parse_duration_ms(f"{number.text} {unit.text}")
        except ValueError as exc:
            raise QueryError(str(exc), unit.position) from exc


def parse_query(text: str) -> Query:
    """Parse one metric statement into a :class:`Query`."""
    return _QueryParser(text).parse()
