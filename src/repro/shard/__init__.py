"""The process-parallel shard runtime.

Runs Railgun's back-end work — the batched ``poll_batches`` →
``process_batch`` path — in separate OS processes so ingestion scales
past one core, while the coordinator process keeps the bus, the
frontend, and the assignment authority. Three layers:

- :mod:`repro.shard.wire` — serde-based framing for work units, replies
  and control messages crossing the process boundary;
- :mod:`repro.shard.worker` / :mod:`repro.shard.supervisor` — the worker
  entrypoint and the process that spawns, routes to, monitors and
  restarts workers;
- :mod:`repro.shard.parallel` — :class:`ParallelCluster`, the
  RailgunCluster-compatible facade with byte-identical reply semantics.
"""

from repro.shard.parallel import ParallelCluster
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import ShardWorker, shard_worker_main

__all__ = [
    "ParallelCluster",
    "ShardSupervisor",
    "ShardWorker",
    "shard_worker_main",
]
