"""The process-parallel shard runtime.

Runs Railgun's back-end work — the batched ``poll_batches`` →
``process_batch`` path — in separate OS processes so ingestion scales
past one core. Four layers:

- :mod:`repro.shard.wire` — serde-based framing for work units, replies,
  checkpoints and control/routing messages crossing process boundaries;
- :mod:`repro.shard.worker` / :mod:`repro.shard.supervisor` — the worker
  entrypoint and the process that spawns, routes to, monitors, restarts
  and checkpoints workers;
- :mod:`repro.shard.parallel` — :class:`ParallelCluster`, the
  RailgunCluster-compatible facade with one in-process coordinator;
- :mod:`repro.shard.router` — :class:`ClusterRouter` +
  :func:`shard_frontend_main`, the sharded-frontend topology: N frontend
  processes each owning a sticky slice of the partition space, shipping
  work to workers over their own data sockets so no single coordinator
  loop sits on the hot path.

Both facades produce byte-identical replies to the single-process
engine; ``docs/ARCHITECTURE.md`` documents the data path, the wire
protocol and the recovery state machines end-to-end.
"""

from repro.shard.parallel import ParallelCluster
from repro.shard.router import ClusterRouter, FrontendEngine, shard_frontend_main
from repro.shard.supervisor import ShardSupervisor
from repro.shard.worker import ShardWorker, shard_worker_main

__all__ = [
    "ClusterRouter",
    "FrontendEngine",
    "ParallelCluster",
    "ShardSupervisor",
    "ShardWorker",
    "shard_frontend_main",
    "shard_worker_main",
]
