"""The shard wire protocol.

Everything that crosses the process boundary between the
:class:`~repro.shard.supervisor.ShardSupervisor` and its
:class:`~repro.shard.worker.ShardWorker` processes is a framed binary
message built from :mod:`repro.common.serde` primitives — batched work
units, batched replies, and control messages (partition assignment /
rebalance, DDL, schema evolution, checkpointing, shutdown). No pickling:
the frames are self-describing, so a worker restarted from a clean
process reconstructs state purely from the replayed control log plus the
replayed partition tail.

Hot-path framing amortizes string costs with per-message string tables:
a :class:`WorkBatch` interns every distinct field name once and events
reference names by index; a :class:`BatchDone` does the same for reply
column names (``"sum(amount)"`` travels once per batch, not once per
event).

Routing framing shards the coordinator itself: the client-side
``ClusterRouter`` ships events to N frontend processes as
:class:`IngestBatch` frames (each frontend owns a sticky slice of the
partition space, installed by :class:`FrontendAssign`), and frontends
return merged task replies as :class:`ReplyBatch` frames. Frontend
recovery is journal-based (:class:`RestoreWatermarks` seeds reply
suppression before the router replays its journal); worker recovery is
announced to every frontend with :class:`WorkerRestarted`;
:class:`DrainRequest`/:class:`DrainAck` quiesce the data plane before a
topology change.

Recovery framing ships whole task checkpoints: a
:class:`TaskCheckpointFrame` wraps the engine's
:class:`~repro.engine.task.TaskCheckpoint` (reservoir metadata + files +
sealed set, LSM manifest + files, iterator positions, next offset) so a
worker's state can cross the process boundary in either direction —
worker→supervisor inside a :class:`CheckpointAck`, supervisor→worker as
a :class:`RestoreTask` seeding a fresh process. Frames are delta-aware:
a :class:`CheckpointRequest` advertises the immutable files the
supervisor already holds, and the worker omits those from the frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.common import serde
from repro.common.errors import SerdeError
from repro.engine.catalog import MetricDef, StreamDef
from repro.engine.task import TaskCheckpoint
from repro.events.event import Event
from repro.lsm.db import Checkpoint
from repro.messaging.log import TopicPartition

# Supervisor -> worker.
MSG_CREATE_STREAM = 1
MSG_CREATE_METRIC = 2
MSG_DELETE_METRIC = 3
MSG_EVOLVE_SCHEMA = 4
MSG_ASSIGN = 5
MSG_WORK_BATCH = 6
MSG_CHECKPOINT_REQUEST = 7
MSG_SHUTDOWN = 8
MSG_CRASH = 9
MSG_ADD_PARTITIONER = 10
MSG_RESTORE_TASK = 11

# Worker -> supervisor.
MSG_BATCH_DONE = 16
MSG_CHECKPOINT_ACK = 17
MSG_WORKER_ERROR = 18

# Router -> frontend.
MSG_INGEST_BATCH = 19
MSG_FRONTEND_ASSIGN = 20
MSG_RESTORE_WATERMARKS = 21
MSG_WORKER_RESTARTED = 22
MSG_DRAIN_REQUEST = 23
MSG_TRUNCATE_LOGS = 26

# Frontend -> router.
MSG_REPLY_BATCH = 24
MSG_DRAIN_ACK = 25

# shm data plane (tags 29/30 are the columnar frames in repro.shard.columnar)
MSG_SHM_HELLO = 27
MSG_SHM_DOORBELL = 28

# TCP front door (remote client <-> ingest server). IngestBatch and
# ReplyBatch are reused verbatim on this plane; these frames add the
# connection handshake, admission verdicts and the remote control plane.
MSG_HELLO = 31
MSG_HELLO_ACK = 32
MSG_SERVER_BUSY = 33
MSG_DDL_REQUEST = 34
MSG_DDL_REPLY = 35
MSG_GOODBYE = 36

# Backfill splice: supervisor->worker install + worker->supervisor ack.
MSG_BACKFILL_INSTALL = 37
MSG_BACKFILL_INSTALLED = 38
# Router-mode backfill: router->frontend job control + paged log reads.
MSG_BACKFILL_START = 39
MSG_BACKFILL_STOP = 40
MSG_BACKFILL_READ = 41
MSG_BACKFILL_RECORDS = 42
MSG_BACKFILL_STALE = 43

# Telemetry introspection over the TCP front door.
MSG_STATS_REQUEST = 44
MSG_STATS_REPLY = 45


@dataclass(frozen=True)
class CreateStream:
    """Replicate a stream definition into a worker's catalogue."""

    stream: StreamDef


@dataclass(frozen=True)
class CreateMetric:
    """Register a metric on every task processor of its topic.

    ``activations`` carries the per-task dispatch frontier at DDL time
    (see :class:`repro.engine.catalog.CreateMetricOp`): a worker
    restoring a task from a pre-metric checkpoint defers the metric to
    a zero-state splice at exactly that offset, so a recovery replay
    activates it where the original incarnation did.
    """

    metric: MetricDef
    activations: tuple = ()


@dataclass(frozen=True)
class DeleteMetric:
    """Unregister a metric cluster-wide."""

    metric_id: int


@dataclass(frozen=True)
class EvolveSchema:
    """Append fields to a stream schema (old chunks stay readable)."""

    stream: str
    new_fields: tuple[tuple[str, str], ...]


@dataclass(frozen=True)
class AddPartitioner:
    """Add a top-level partitioner to an existing stream (§4)."""

    stream: str
    partitioner: str


@dataclass(frozen=True)
class AssignPartitions:
    """Full replacement of a worker's owned partition set (rebalance)."""

    partitions: tuple[TopicPartition, ...]


@dataclass
class WorkBatch:
    """One contiguous offset run of one partition, shipped for processing.

    ``reply_from`` is the supervisor's replied watermark: the worker
    processes every record (state must replay deterministically after a
    restart) but only returns replies for offsets at or above it, so a
    replayed tail never duplicates a reply the client already saw.
    """

    tp: TopicPartition
    reply_from: int
    records: list[tuple[int, Event]]
    #: Optional trace span ``(span_id, ((hop_name, ms), ...))`` — rides
    #: a telemetry tail appended after the original payload, so frames
    #: without one stay byte-identical to the pre-telemetry encoding
    #: and old frames decode with ``trace=None``.
    trace: tuple | None = None


@dataclass(frozen=True)
class CheckpointRequest:
    """Ask a worker for its per-task consumed offsets — and, with
    ``with_state``, full :class:`TaskCheckpointFrame` payloads.

    ``known_files`` maps each task to the immutable file names the
    supervisor's checkpoint store already holds; the worker strips those
    from its frames so steady-state checkpoints ship only new files.
    """

    request_id: int
    with_state: bool = False
    known_files: tuple[tuple[TopicPartition, tuple[str, ...]], ...] = ()

    def known_files_map(self) -> dict[TopicPartition, frozenset[str]]:
        """The delta-exclusion sets, keyed by task."""
        return {tp: frozenset(names) for tp, names in self.known_files}


@dataclass
class TaskCheckpointFrame:
    """One task's checkpoint crossing the process boundary.

    Wraps the engine's :class:`~repro.engine.task.TaskCheckpoint`; the
    file maps may be partial (delta transfer) — the receiver merges them
    with files it already holds before restoring.
    """

    checkpoint: TaskCheckpoint

    @property
    def tp(self) -> TopicPartition:
        return self.checkpoint.tp

    @property
    def offset(self) -> int:
        return self.checkpoint.offset


@dataclass
class RestoreTask:
    """Seed a worker's task processor from a stored checkpoint.

    Sent before any :class:`WorkBatch` for the task (pipe FIFO), with
    fully materialized file maps: the fresh process holds nothing, so
    delta exclusion never applies in this direction.
    """

    frame: TaskCheckpointFrame


@dataclass(frozen=True)
class Shutdown:
    """Graceful worker exit."""


@dataclass(frozen=True)
class Crash:
    """Fault injection (tests): the worker hard-exits mid-loop."""


@dataclass
class BatchDone:
    """Replies + progress for one :class:`WorkBatch`."""

    tp: TopicPartition
    next_offset: int
    processed: int
    replies: list[tuple[int, dict[int, dict[str, Any]] | None]]
    #: Optional trace span continuing the WorkBatch's: the worker's
    #: per-hop timings ``(span_id, ((hop_name, ms), ...))``.
    trace: tuple | None = None
    #: Optional encoded registry snapshot piggybacking the worker's
    #: telemetry back to its dispatcher (observation only).
    stats: bytes | None = None


@dataclass
class CheckpointAck:
    """Per-task consumed offsets at a consistent message boundary.

    When the request asked ``with_state``, ``frames`` carries one
    (possibly delta) :class:`TaskCheckpointFrame` per owned task.
    """

    request_id: int
    offsets: dict[TopicPartition, int]
    frames: list[TaskCheckpointFrame] = field(default_factory=list)


@dataclass(frozen=True)
class WorkerError:
    """A child-process exception (shard worker *or* frontend), surfaced
    on the control channel before the process dies."""

    message: str


@dataclass
class BackfillInstall:
    """Graft a backfilled metric into one task at an exact offset.

    Carries the shadow replay's exported state
    (:class:`~repro.engine.task.BackfillState` fields, flattened) plus
    the cut offset the export is valid at. The worker applies it the
    moment the task's ``next_offset`` reaches ``at_offset`` — splitting
    a :class:`WorkBatch` mid-run when the cut lands inside one — and
    does *not* register the metric in its catalogue: catalogue
    visibility arrives only with the completion broadcast, after every
    owner spliced.
    """

    tp: TopicPartition
    at_offset: int
    metric: MetricDef
    state_rows: list[tuple[bytes, bytes]]
    distinct_rows: list[tuple[bytes, bytes]]
    iterator_positions: dict[str, tuple[int, int]]


@dataclass(frozen=True)
class BackfillInstalled:
    """Worker ack: the named task spliced the backfilled metric."""

    tp: TopicPartition
    metric_id: int


@dataclass
class BackfillStart:
    """Router -> frontend: shadow-replay every owned task of the
    metric's topic and splice each into its worker at the dispatch cut.

    The frontends host the backfill readers in router mode — they own
    the partition logs *and* the dispatch position, so "shadow caught
    the frontier" and "nothing later was shipped yet" are decided in
    one thread and the install rides the task's own data link in
    order. ``peers`` are the topic's already-live metric defs (the
    frontend catalogue never sees metrics otherwise) and ``seeds`` the
    stored checkpoints to fall back on when retention already
    reclaimed a log's early segments. The frame is journaled while the
    job runs, so a respawned frontend resumes the replay.
    """

    metric: MetricDef
    peers: tuple[MetricDef, ...] = ()
    seeds: tuple[tuple[TopicPartition, TaskCheckpoint], ...] = ()


@dataclass(frozen=True)
class BackfillStop:
    """Router -> frontend: the backfill completed (or was abandoned);
    drop its shadows and bookkeeping."""

    metric_id: int


@dataclass(frozen=True)
class BackfillStale:
    """Worker -> frontend nack on the data link: the install's cut is
    already behind the task (``next_offset`` is the worker's frontier —
    possible when the sender restored from a snapshot that lags the
    worker, e.g. right after a frontend respawn). The frontend forgets
    the install and re-splices at a cut at or above the frontier."""

    tp: TopicPartition
    metric_id: int
    next_offset: int


@dataclass(frozen=True)
class BackfillRead:
    """Router -> frontend: page ``max_records`` log records of an owned
    task starting at ``begin`` (the as-of query's read path — the
    router holds no partition logs of its own)."""

    tp: TopicPartition
    begin: int
    max_records: int


@dataclass
class BackfillRecords:
    """Frontend -> router: one :class:`BackfillRead` page.

    ``entries`` are the ``(offset, event)`` records from ``begin``;
    ``start_offset``/``end_offset`` are the log's current retention
    floor and append frontier, so the reader can detect truncation
    below its position and knows the total replay cost.
    """

    tp: TopicPartition
    begin: int
    entries: list[tuple[int, Event]]
    start_offset: int
    end_offset: int


# -- sharded-frontend routing messages ----------------------------------------


@dataclass
class IngestBatch:
    """A run of client events routed to one frontend process.

    Each entry is ``(correlation_id, event, targets)`` where ``targets``
    lists the ``(partitioner, partition)`` pairs of this event's fan-out
    that land on partitions the receiving frontend owns. The event is
    encoded once per frontend, however many of its fan-out targets that
    frontend owns; the router keys per-key ordering on the fact that a
    given partition is owned by exactly one frontend (sticky ownership),
    so the pipe's FIFO order *is* the partition's log order.
    """

    stream: str
    entries: list[tuple[int, Event, tuple[tuple[str, int], ...]]]
    #: Optional trace span minted at the router's ``send_batch``; the
    #: frontend continues it onto the WorkBatch frames it dispatches.
    trace: tuple | None = None


@dataclass(frozen=True)
class FrontendAssign:
    """Full replacement of a frontend's routing table.

    ``routes`` holds one ``(task, worker_id, worker_addr)`` triple per
    partition the frontend owns: the sticky slice of the key space it
    appends to and dispatches from, plus the data-socket address of the
    shard worker that owns each task. ``seeks`` rewinds the named tasks
    to their checkpointed offsets after a rebalance moved them between
    workers (the frontend replays the tail into the new owner; the reply
    watermark keeps the replay silent).
    """

    routes: tuple[tuple[TopicPartition, str, str], ...]
    seeks: tuple[tuple[TopicPartition, int], ...] = ()


@dataclass(frozen=True)
class RestoreWatermarks:
    """Seed a respawned frontend's replied watermarks (crash recovery).

    Sent before the journal replay: the watermark is the router's
    replied-up-to-here record per task, so the fresh frontend skips
    re-dispatching offsets whose replies the client already saw and
    suppresses (``reply_from``) replayed replies for the rest.
    ``seeks`` lowers the replay start below the watermark for tasks
    whose owning worker has itself restarted — the worker's state may
    only reach its checkpointed offset, so the journal replay must
    re-ship from there to rebuild it (replies stay suppressed up to the
    watermark either way).

    ``ingest_base`` is the sequence number of the first ``IngestBatch``
    the replay will carry (durable frontends only): the router prunes
    ingest frames below the frontend's reported durable cut, so the
    respawned engine numbers replayed frames from the prune point and
    skips re-appending any frame its recovered cut already covers.
    """

    watermarks: tuple[tuple[TopicPartition, int], ...]
    seeks: tuple[tuple[TopicPartition, int], ...] = ()
    ingest_base: int = 0


@dataclass(frozen=True)
class TruncateLogs:
    """Checkpoint-aware retention order, router → durable frontend.

    ``offsets`` carries each owned task's stored checkpoint offset; the
    frontend syncs its durable cut, then deletes every log segment
    wholly below the offset. Never journaled — the deletion already
    happened on disk when a respawned frontend reopens its logs.
    """

    offsets: tuple[tuple[TopicPartition, int], ...]


@dataclass(frozen=True)
class WorkerRestarted:
    """Tell a frontend that a shard worker was restarted.

    The frontend drains any pre-crash frames left in the old data
    socket, reconnects to ``addr`` (the restarted worker listens on the
    same address), zeroes its outstanding-batch credits, and seeks each
    task in ``seeks`` back to its checkpointed offset so only the
    uncheckpointed tail replays.
    """

    worker_id: str
    addr: str
    seeks: tuple[tuple[TopicPartition, int], ...]


@dataclass(frozen=True)
class DrainRequest:
    """Ask a frontend to quiesce: dispatch its backlog, wait for every
    outstanding batch, then answer with a :class:`DrainAck`."""

    request_id: int


@dataclass
class ReplyBatch:
    """Completed task replies and progress, frontend -> router.

    Each reply is ``(correlation_id, topic, results)`` — the topic lets
    the router de-duplicate per-task replies exactly (a replayed reply
    for a topic that already answered must not count toward the fan-in
    a second time). ``watermarks`` carries the frontend's advanced
    replied watermarks (the router snapshots them so a frontend respawn
    can restore suppression), and ``processed`` carries per-worker
    ``(worker_id, records, replies)`` deltas that feed the supervisor's
    merged stats and checkpoint cadence.
    """

    replies: list[tuple[int, str, dict[int, dict[str, Any]] | None]]
    watermarks: tuple[tuple[TopicPartition, int], ...] = ()
    processed: tuple[tuple[str, int, int], ...] = ()
    #: durable frontends: ingest frames fsynced behind a consistent cut
    #: — the router's authority to prune its write-ahead journal.
    durable_seq: int = 0
    #: Optional trace span (last span this frontend completed).
    trace: tuple | None = None
    #: Optional telemetry *bundle* (the frontend's own snapshot plus the
    #: worker snapshots it holds), shipped on the last chunk of a flush.
    stats: bytes | None = None


@dataclass(frozen=True)
class DrainAck:
    """A frontend's answer to :class:`DrainRequest`: no outstanding
    batches, no undispatched backlog; ``watermarks`` is the full
    replied-watermark map at the quiesced point."""

    request_id: int
    watermarks: tuple[tuple[TopicPartition, int], ...]


# -- shm data plane -----------------------------------------------------------


@dataclass(frozen=True)
class ShmHello:
    """Link handshake (``transport="shm"``): the dispatcher side created
    a ring pair for this data channel and names them here; the worker
    attaches both. All further traffic on the channel is doorbells."""

    work_ring: str  #: carries WorkBatch frames toward the worker
    reply_ring: str  #: carries BatchDone frames back


@dataclass(frozen=True)
class ShmDoorbell:
    """Readiness signal: frames were published to the paired ring.

    The payload is the signal — it wakes the peer's ``connection.wait``
    so ring consumers never poll. Doorbells are coalesced per publish
    round, not per frame."""


# -- TCP front door -----------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """First frame on a front-door connection: who is calling.

    ``tenant`` selects the admission quota (token bucket, in-flight cap,
    latency budget); ``token`` authenticates when the server was
    configured with per-tenant tokens. ``protocol`` lets a future server
    reject clients it cannot speak to instead of mis-parsing them."""

    tenant: str
    token: str = ""
    protocol: int = 1


@dataclass(frozen=True)
class HelloAck:
    """The server's answer to :class:`Hello`.

    On ``ok`` the ack carries the session id (the client's event-id
    mint prefix — unique per connection, so ids never collide across
    clients) and the tenant's effective admission parameters, so a
    client can pace itself without ever seeing a ``ServerBusy``."""

    ok: bool
    session: str = ""
    error: str = ""
    max_in_flight: int = 0
    p50_budget_ms: float = 0.0
    p99_budget_ms: float = 0.0


@dataclass(frozen=True)
class ServerBusy:
    """Explicit load shed: the named correlations were NOT accepted.

    Admission control answers an over-quota or over-depth
    ``IngestBatch`` with this frame instead of buffering it — the
    client sees exactly which correlations to retry (after
    ``retry_after_ms``) and nothing is ever silently dropped."""

    reason: str
    retry_after_ms: int = 0
    correlations: tuple[int, ...] = ()


@dataclass(frozen=True)
class DdlRequest:
    """Remote control plane: one DDL call, client -> server.

    ``op`` names the facade method (``create_stream``,
    ``create_metric``, ``delete_metric``, ``evolve_schema``,
    ``add_partitioner``); the remaining fields are that method's
    arguments flattened into one generic frame — ``name`` is the
    stream, ``text`` the query or partitioner, ``fields`` the schema
    pairs, ``names`` the partitioner list, ``number`` the partition
    count or metric id, ``flag`` the backfill/global-partitioner bool."""

    request_id: int
    op: str
    name: str = ""
    text: str = ""
    fields: tuple[tuple[str, str], ...] = ()
    names: tuple[str, ...] = ()
    number: int = 0
    flag: bool = False


@dataclass(frozen=True)
class DdlReply:
    """Outcome of a :class:`DdlRequest`; ``value`` carries ints the op
    returns (the metric id of ``create_metric``, else 0)."""

    request_id: int
    ok: bool
    value: int = 0
    error: str = ""


@dataclass(frozen=True)
class Goodbye:
    """Clean client hangup: the server may drop connection state
    immediately instead of waiting for the TCP FIN to surface."""


@dataclass(frozen=True)
class StatsRequest:
    """Ask the front door for the cluster's merged telemetry snapshot."""

    request_id: int


@dataclass(frozen=True)
class StatsReply:
    """Answer to :class:`StatsRequest`: the merged snapshot (the same
    dict every facade's ``telemetry()`` returns) as canonical JSON."""

    request_id: int
    payload: bytes


# -- topic partitions ---------------------------------------------------------


def _write_tp(buf: bytearray, tp: TopicPartition) -> None:
    serde.write_str(buf, tp.topic)
    serde.write_varint(buf, tp.partition)


def _read_tp(data: memoryview, offset: int) -> tuple[TopicPartition, int]:
    topic, offset = serde.read_str(data, offset)
    partition, offset = serde.read_varint(data, offset)
    return TopicPartition(topic, partition), offset


# -- field pairs (schema fields as (name, type-name) tuples) ------------------


def _write_field_pairs(buf: bytearray, fields: Sequence[tuple[str, str]]) -> None:
    serde.write_varint(buf, len(fields))
    for name, type_name in fields:
        serde.write_str(buf, name)
        serde.write_str(buf, type_name)


def _read_field_pairs(
    data: memoryview, offset: int
) -> tuple[tuple[tuple[str, str], ...], int]:
    count, offset = serde.read_varint(data, offset)
    fields = []
    for _ in range(count):
        name, offset = serde.read_str(data, offset)
        type_name, offset = serde.read_str(data, offset)
        fields.append((name, type_name))
    return tuple(fields), offset


# -- (task, offset) pair lists (watermarks, seeks) ----------------------------


def _write_offset_pairs(
    buf: bytearray, pairs: Sequence[tuple[TopicPartition, int]]
) -> None:
    serde.write_varint(buf, len(pairs))
    for tp, offset in pairs:
        _write_tp(buf, tp)
        serde.write_varint(buf, offset)


def _read_offset_pairs(
    data: memoryview, offset: int
) -> tuple[tuple[tuple[TopicPartition, int], ...], int]:
    count, offset = serde.read_varint(data, offset)
    pairs = []
    for _ in range(count):
        tp, offset = _read_tp(data, offset)
        value, offset = serde.read_varint(data, offset)
        pairs.append((tp, value))
    return tuple(pairs), offset


# -- raw row pairs (state-store (key, value) byte rows) -----------------------


def _write_row_pairs(
    buf: bytearray, rows: Sequence[tuple[bytes, bytes]]
) -> None:
    serde.write_varint(buf, len(rows))
    for key, value in rows:
        serde.write_bytes(buf, key)
        serde.write_bytes(buf, value)


def _read_row_pairs(
    data: memoryview, offset: int
) -> tuple[list[tuple[bytes, bytes]], int]:
    count, offset = serde.read_varint(data, offset)
    rows: list[tuple[bytes, bytes]] = []
    for _ in range(count):
        key, offset = serde.read_bytes(data, offset)
        value, offset = serde.read_bytes(data, offset)
        rows.append((key, value))
    return rows, offset


def _write_metric_def(buf: bytearray, metric: MetricDef) -> None:
    serde.write_varint(buf, metric.metric_id)
    serde.write_str(buf, metric.query_text)
    serde.write_str(buf, metric.stream)
    serde.write_str(buf, metric.topic)
    serde.write_varint(buf, 1 if metric.backfill else 0)


def _read_metric_def(data: memoryview, offset: int) -> tuple[MetricDef, int]:
    metric_id, offset = serde.read_varint(data, offset)
    query_text, offset = serde.read_str(data, offset)
    stream, offset = serde.read_str(data, offset)
    topic, offset = serde.read_str(data, offset)
    backfill, offset = serde.read_varint(data, offset)
    return MetricDef(metric_id, query_text, stream, topic, bool(backfill)), offset


def _write_event_records(
    buf: bytearray, entries: list[tuple[int, Event]]
) -> None:
    # String table: distinct field names in first-seen order (the
    # WorkBatch layout).
    names: dict[str, int] = {}
    for _, event in entries:
        for name in event:
            if name not in names:
                names[name] = len(names)
    serde.write_str_list(buf, list(names))
    serde.write_varint(buf, len(entries))
    for record_offset, event in entries:
        serde.write_varint(buf, record_offset)
        serde.write_str(buf, event.event_id)
        serde.write_varint(buf, event.timestamp)
        serde.write_varint(buf, event.field_count())
        for name, value in event.items():
            serde.write_varint(buf, names[name])
            serde.write_value(buf, value)


def _read_event_records(
    data: memoryview, offset: int
) -> tuple[list[tuple[int, Event]], int]:
    names, offset = serde.read_str_list(data, offset)
    count, offset = serde.read_varint(data, offset)
    entries: list[tuple[int, Event]] = []
    for _ in range(count):
        record_offset, offset = serde.read_varint(data, offset)
        event_id, offset = serde.read_str(data, offset)
        timestamp, offset = serde.read_varint(data, offset)
        field_count, offset = serde.read_varint(data, offset)
        fields: dict[str, Any] = {}
        for _ in range(field_count):
            name_index, offset = serde.read_varint(data, offset)
            value, offset = serde.read_value(data, offset)
            fields[names[name_index]] = value
        entries.append((record_offset, Event(event_id, timestamp, fields)))
    return entries, offset


# -- task checkpoints ---------------------------------------------------------


def _write_file_map(buf: bytearray, files: Mapping[str, bytes]) -> None:
    serde.write_varint(buf, len(files))
    for name in sorted(files):
        serde.write_str(buf, name)
        serde.write_bytes(buf, files[name])


def _read_file_map(data: memoryview, offset: int) -> tuple[dict[str, bytes], int]:
    count, offset = serde.read_varint(data, offset)
    files: dict[str, bytes] = {}
    for _ in range(count):
        name, offset = serde.read_str(data, offset)
        payload, offset = serde.read_bytes(data, offset)
        files[name] = payload
    return files, offset


def _write_task_checkpoint(buf: bytearray, cp: TaskCheckpoint) -> None:
    _write_tp(buf, cp.tp)
    serde.write_varint(buf, cp.offset)
    serde.write_bytes(buf, cp.reservoir_meta)
    _write_file_map(buf, cp.reservoir_files)
    serde.write_str_list(buf, sorted(cp.reservoir_sealed))
    serde.write_bytes(buf, cp.state_checkpoint.to_bytes())
    _write_file_map(buf, cp.state_files)
    serde.write_varint(buf, len(cp.iterator_positions))
    for key in sorted(cp.iterator_positions):
        chunk_id, index = cp.iterator_positions[key]
        serde.write_str(buf, key)
        serde.write_signed_varint(buf, chunk_id)
        serde.write_signed_varint(buf, index)
    serde.write_varint(buf, len(cp.metric_ids))
    for metric_id in cp.metric_ids:
        serde.write_varint(buf, metric_id)


def _read_task_checkpoint(
    data: memoryview, offset: int
) -> tuple[TaskCheckpoint, int]:
    tp, offset = _read_tp(data, offset)
    next_offset, offset = serde.read_varint(data, offset)
    reservoir_meta, offset = serde.read_bytes(data, offset)
    reservoir_files, offset = _read_file_map(data, offset)
    sealed_names, offset = serde.read_str_list(data, offset)
    state_blob, offset = serde.read_bytes(data, offset)
    state_files, offset = _read_file_map(data, offset)
    position_count, offset = serde.read_varint(data, offset)
    positions: dict[str, tuple[int, int]] = {}
    for _ in range(position_count):
        key, offset = serde.read_str(data, offset)
        chunk_id, offset = serde.read_signed_varint(data, offset)
        index, offset = serde.read_signed_varint(data, offset)
        positions[key] = (chunk_id, index)
    metric_count, offset = serde.read_varint(data, offset)
    metric_ids = []
    for _ in range(metric_count):
        metric_id, offset = serde.read_varint(data, offset)
        metric_ids.append(metric_id)
    checkpoint = TaskCheckpoint(
        tp=tp,
        offset=next_offset,
        reservoir_meta=reservoir_meta,
        reservoir_files=reservoir_files,
        reservoir_sealed=set(sealed_names),
        state_checkpoint=Checkpoint.from_bytes(state_blob),
        state_files=state_files,
        iterator_positions=positions,
        metric_ids=tuple(metric_ids),
    )
    return checkpoint, offset


# -- telemetry tails ----------------------------------------------------------
#
# The four hot frames (WorkBatch/BatchDone/IngestBatch/ReplyBatch)
# carry telemetry as an *optional trailing section*: the original
# decoders read an exact field sequence and ignore trailing bytes, so a
# frame with no tail is byte-identical to the pre-telemetry encoding,
# an old frame decodes with ``trace``/``stats`` of ``None``, and an old
# decoder simply never looks at the tail.


def _write_telemetry_tail(
    buf: bytearray, trace: tuple | None, stats: bytes | None
) -> None:
    if trace is None and stats is None:
        return
    flags = (1 if trace is not None else 0) | (2 if stats is not None else 0)
    buf.append(flags)
    if trace is not None:
        span_id, hops = trace
        serde.write_str(buf, span_id)
        serde.write_varint(buf, len(hops))
        for stage, ms in hops:
            serde.write_str(buf, stage)
            serde.write_f64(buf, ms)
    if stats is not None:
        serde.write_bytes(buf, stats)


def _read_telemetry_tail(
    view: memoryview, offset: int
) -> tuple[tuple | None, bytes | None]:
    if offset >= len(view):
        return None, None
    flags = view[offset]
    offset += 1
    trace: tuple | None = None
    stats: bytes | None = None
    if flags & 1:
        span_id, offset = serde.read_str(view, offset)
        count, offset = serde.read_varint(view, offset)
        hops = []
        for _ in range(count):
            stage, offset = serde.read_str(view, offset)
            ms, offset = serde.read_f64(view, offset)
            hops.append((stage, ms))
        trace = (span_id, tuple(hops))
    if flags & 2:
        blob, offset = serde.read_bytes(view, offset)
        stats = bytes(blob)
    return trace, stats


# -- encoders -----------------------------------------------------------------


def encode(msg: object) -> bytes:
    """Frame a message for the pipe: 1 tag byte + typed payload."""
    buf = bytearray()
    if isinstance(msg, WorkBatch):
        _encode_work_batch(buf, msg)
    elif isinstance(msg, BatchDone):
        _encode_batch_done(buf, msg)
    elif isinstance(msg, CreateStream):
        buf.append(MSG_CREATE_STREAM)
        stream = msg.stream
        serde.write_str(buf, stream.name)
        _write_field_pairs(buf, stream.fields)
        serde.write_str_list(buf, stream.partitioners)
        serde.write_varint(buf, stream.partitions)
    elif isinstance(msg, CreateMetric):
        buf.append(MSG_CREATE_METRIC)
        metric = msg.metric
        serde.write_varint(buf, metric.metric_id)
        serde.write_str(buf, metric.query_text)
        serde.write_str(buf, metric.stream)
        serde.write_str(buf, metric.topic)
        serde.write_varint(buf, 1 if metric.backfill else 0)
        serde.write_varint(buf, len(msg.activations))
        for tp, at_offset in msg.activations:
            _write_tp(buf, tp)
            serde.write_varint(buf, at_offset)
    elif isinstance(msg, DeleteMetric):
        buf.append(MSG_DELETE_METRIC)
        serde.write_varint(buf, msg.metric_id)
    elif isinstance(msg, EvolveSchema):
        buf.append(MSG_EVOLVE_SCHEMA)
        serde.write_str(buf, msg.stream)
        _write_field_pairs(buf, msg.new_fields)
    elif isinstance(msg, AddPartitioner):
        buf.append(MSG_ADD_PARTITIONER)
        serde.write_str(buf, msg.stream)
        serde.write_str(buf, msg.partitioner)
    elif isinstance(msg, AssignPartitions):
        buf.append(MSG_ASSIGN)
        serde.write_varint(buf, len(msg.partitions))
        for tp in msg.partitions:
            _write_tp(buf, tp)
    elif isinstance(msg, CheckpointRequest):
        buf.append(MSG_CHECKPOINT_REQUEST)
        serde.write_varint(buf, msg.request_id)
        buf.append(1 if msg.with_state else 0)
        serde.write_varint(buf, len(msg.known_files))
        for tp, names in msg.known_files:
            _write_tp(buf, tp)
            serde.write_str_list(buf, list(names))
    elif isinstance(msg, RestoreTask):
        buf.append(MSG_RESTORE_TASK)
        _write_task_checkpoint(buf, msg.frame.checkpoint)
    elif isinstance(msg, Shutdown):
        buf.append(MSG_SHUTDOWN)
    elif isinstance(msg, Crash):
        buf.append(MSG_CRASH)
    elif isinstance(msg, CheckpointAck):
        buf.append(MSG_CHECKPOINT_ACK)
        serde.write_varint(buf, msg.request_id)
        serde.write_varint(buf, len(msg.offsets))
        for tp, next_offset in msg.offsets.items():
            _write_tp(buf, tp)
            serde.write_varint(buf, next_offset)
        serde.write_varint(buf, len(msg.frames))
        for frame in msg.frames:
            _write_task_checkpoint(buf, frame.checkpoint)
    elif isinstance(msg, WorkerError):
        buf.append(MSG_WORKER_ERROR)
        serde.write_str(buf, msg.message)
    elif isinstance(msg, BackfillInstall):
        buf.append(MSG_BACKFILL_INSTALL)
        _write_tp(buf, msg.tp)
        serde.write_varint(buf, msg.at_offset)
        metric = msg.metric
        serde.write_varint(buf, metric.metric_id)
        serde.write_str(buf, metric.query_text)
        serde.write_str(buf, metric.stream)
        serde.write_str(buf, metric.topic)
        serde.write_varint(buf, 1 if metric.backfill else 0)
        _write_row_pairs(buf, msg.state_rows)
        _write_row_pairs(buf, msg.distinct_rows)
        serde.write_varint(buf, len(msg.iterator_positions))
        for key in sorted(msg.iterator_positions):
            chunk_id, index = msg.iterator_positions[key]
            serde.write_str(buf, key)
            serde.write_signed_varint(buf, chunk_id)
            serde.write_signed_varint(buf, index)
    elif isinstance(msg, BackfillInstalled):
        buf.append(MSG_BACKFILL_INSTALLED)
        _write_tp(buf, msg.tp)
        serde.write_varint(buf, msg.metric_id)
    elif isinstance(msg, BackfillStart):
        buf.append(MSG_BACKFILL_START)
        _write_metric_def(buf, msg.metric)
        serde.write_varint(buf, len(msg.peers))
        for peer in msg.peers:
            _write_metric_def(buf, peer)
        serde.write_varint(buf, len(msg.seeds))
        for tp, checkpoint in msg.seeds:
            _write_tp(buf, tp)
            _write_task_checkpoint(buf, checkpoint)
    elif isinstance(msg, BackfillStop):
        buf.append(MSG_BACKFILL_STOP)
        serde.write_varint(buf, msg.metric_id)
    elif isinstance(msg, BackfillStale):
        buf.append(MSG_BACKFILL_STALE)
        _write_tp(buf, msg.tp)
        serde.write_varint(buf, msg.metric_id)
        serde.write_varint(buf, msg.next_offset)
    elif isinstance(msg, BackfillRead):
        buf.append(MSG_BACKFILL_READ)
        _write_tp(buf, msg.tp)
        serde.write_varint(buf, msg.begin)
        serde.write_varint(buf, msg.max_records)
    elif isinstance(msg, BackfillRecords):
        buf.append(MSG_BACKFILL_RECORDS)
        _write_tp(buf, msg.tp)
        serde.write_varint(buf, msg.begin)
        serde.write_varint(buf, msg.start_offset)
        serde.write_varint(buf, msg.end_offset)
        _write_event_records(buf, msg.entries)
    elif isinstance(msg, IngestBatch):
        _encode_ingest_batch(buf, msg)
    elif isinstance(msg, FrontendAssign):
        buf.append(MSG_FRONTEND_ASSIGN)
        serde.write_varint(buf, len(msg.routes))
        for tp, worker_id, addr in msg.routes:
            _write_tp(buf, tp)
            serde.write_str(buf, worker_id)
            serde.write_str(buf, addr)
        _write_offset_pairs(buf, msg.seeks)
    elif isinstance(msg, RestoreWatermarks):
        buf.append(MSG_RESTORE_WATERMARKS)
        _write_offset_pairs(buf, msg.watermarks)
        _write_offset_pairs(buf, msg.seeks)
        serde.write_varint(buf, msg.ingest_base)
    elif isinstance(msg, TruncateLogs):
        buf.append(MSG_TRUNCATE_LOGS)
        _write_offset_pairs(buf, msg.offsets)
    elif isinstance(msg, WorkerRestarted):
        buf.append(MSG_WORKER_RESTARTED)
        serde.write_str(buf, msg.worker_id)
        serde.write_str(buf, msg.addr)
        _write_offset_pairs(buf, msg.seeks)
    elif isinstance(msg, DrainRequest):
        buf.append(MSG_DRAIN_REQUEST)
        serde.write_varint(buf, msg.request_id)
    elif isinstance(msg, ReplyBatch):
        _encode_reply_batch(buf, msg)
    elif isinstance(msg, DrainAck):
        buf.append(MSG_DRAIN_ACK)
        serde.write_varint(buf, msg.request_id)
        _write_offset_pairs(buf, msg.watermarks)
    elif isinstance(msg, ShmHello):
        buf.append(MSG_SHM_HELLO)
        serde.write_str(buf, msg.work_ring)
        serde.write_str(buf, msg.reply_ring)
    elif isinstance(msg, ShmDoorbell):
        buf.append(MSG_SHM_DOORBELL)
    elif isinstance(msg, Hello):
        buf.append(MSG_HELLO)
        serde.write_str(buf, msg.tenant)
        serde.write_str(buf, msg.token)
        serde.write_varint(buf, msg.protocol)
    elif isinstance(msg, HelloAck):
        buf.append(MSG_HELLO_ACK)
        buf.append(1 if msg.ok else 0)
        serde.write_str(buf, msg.session)
        serde.write_str(buf, msg.error)
        serde.write_varint(buf, msg.max_in_flight)
        serde.write_f64(buf, msg.p50_budget_ms)
        serde.write_f64(buf, msg.p99_budget_ms)
    elif isinstance(msg, ServerBusy):
        buf.append(MSG_SERVER_BUSY)
        serde.write_str(buf, msg.reason)
        serde.write_varint(buf, msg.retry_after_ms)
        serde.write_varint(buf, len(msg.correlations))
        for correlation in msg.correlations:
            serde.write_varint(buf, correlation)
    elif isinstance(msg, DdlRequest):
        buf.append(MSG_DDL_REQUEST)
        serde.write_varint(buf, msg.request_id)
        serde.write_str(buf, msg.op)
        serde.write_str(buf, msg.name)
        serde.write_str(buf, msg.text)
        _write_field_pairs(buf, msg.fields)
        serde.write_str_list(buf, list(msg.names))
        serde.write_varint(buf, msg.number)
        buf.append(1 if msg.flag else 0)
    elif isinstance(msg, DdlReply):
        buf.append(MSG_DDL_REPLY)
        serde.write_varint(buf, msg.request_id)
        buf.append(1 if msg.ok else 0)
        serde.write_varint(buf, msg.value)
        serde.write_str(buf, msg.error)
    elif isinstance(msg, Goodbye):
        buf.append(MSG_GOODBYE)
    elif isinstance(msg, StatsRequest):
        buf.append(MSG_STATS_REQUEST)
        serde.write_varint(buf, msg.request_id)
    elif isinstance(msg, StatsReply):
        buf.append(MSG_STATS_REPLY)
        serde.write_varint(buf, msg.request_id)
        serde.write_bytes(buf, msg.payload)
    else:
        raise SerdeError(f"unsupported wire message: {type(msg).__name__}")
    return bytes(buf)


def _encode_work_batch(buf: bytearray, msg: WorkBatch) -> None:
    buf.append(MSG_WORK_BATCH)
    _write_tp(buf, msg.tp)
    serde.write_varint(buf, msg.reply_from)
    # String table: distinct field names in first-seen order.
    names: dict[str, int] = {}
    for _, event in msg.records:
        for name in event:
            if name not in names:
                names[name] = len(names)
    serde.write_str_list(buf, list(names))
    serde.write_varint(buf, len(msg.records))
    for offset, event in msg.records:
        serde.write_varint(buf, offset)
        serde.write_str(buf, event.event_id)
        serde.write_varint(buf, event.timestamp)
        serde.write_varint(buf, event.field_count())
        for name, value in event.items():
            serde.write_varint(buf, names[name])
            serde.write_value(buf, value)
    _write_telemetry_tail(buf, msg.trace, None)


def _encode_batch_done(buf: bytearray, msg: BatchDone) -> None:
    buf.append(MSG_BATCH_DONE)
    _write_tp(buf, msg.tp)
    serde.write_varint(buf, msg.next_offset)
    serde.write_varint(buf, msg.processed)
    # String table: distinct reply column names in first-seen order.
    columns: dict[str, int] = {}
    for _, results in msg.replies:
        if results:
            for values in results.values():
                for column in values:
                    if column not in columns:
                        columns[column] = len(columns)
    serde.write_str_list(buf, list(columns))
    serde.write_varint(buf, len(msg.replies))
    for offset, results in msg.replies:
        serde.write_varint(buf, offset)
        if results is None:
            buf.append(0)
            continue
        buf.append(1)
        serde.write_varint(buf, len(results))
        for metric_id, values in results.items():
            serde.write_varint(buf, metric_id)
            serde.write_varint(buf, len(values))
            for column, value in values.items():
                serde.write_varint(buf, columns[column])
                serde.write_value(buf, value)
    _write_telemetry_tail(buf, msg.trace, msg.stats)


def _encode_ingest_batch(buf: bytearray, msg: IngestBatch) -> None:
    buf.append(MSG_INGEST_BATCH)
    serde.write_str(buf, msg.stream)
    # String table: field names + partitioner names, first-seen order.
    names: dict[str, int] = {}
    for _, event, targets in msg.entries:
        for name in event:
            if name not in names:
                names[name] = len(names)
        for partitioner, _ in targets:
            if partitioner not in names:
                names[partitioner] = len(names)
    serde.write_str_list(buf, list(names))
    serde.write_varint(buf, len(msg.entries))
    for correlation_id, event, targets in msg.entries:
        serde.write_varint(buf, correlation_id)
        serde.write_str(buf, event.event_id)
        serde.write_varint(buf, event.timestamp)
        serde.write_varint(buf, event.field_count())
        for name, value in event.items():
            serde.write_varint(buf, names[name])
            serde.write_value(buf, value)
        serde.write_varint(buf, len(targets))
        for partitioner, partition in targets:
            serde.write_varint(buf, names[partitioner])
            serde.write_varint(buf, partition)
    _write_telemetry_tail(buf, msg.trace, None)


def _encode_reply_batch(buf: bytearray, msg: ReplyBatch) -> None:
    buf.append(MSG_REPLY_BATCH)
    # String table: topics, reply column names and worker ids.
    table: dict[str, int] = {}

    def intern(name: str) -> int:
        if name not in table:
            table[name] = len(table)
        return table[name]

    for _, topic, results in msg.replies:
        intern(topic)
        if results:
            for values in results.values():
                for column in values:
                    intern(column)
    for worker_id, _, _ in msg.processed:
        intern(worker_id)
    serde.write_str_list(buf, list(table))
    serde.write_varint(buf, len(msg.replies))
    for correlation_id, topic, results in msg.replies:
        serde.write_varint(buf, correlation_id)
        serde.write_varint(buf, table[topic])
        if results is None:
            buf.append(0)
            continue
        buf.append(1)
        serde.write_varint(buf, len(results))
        for metric_id, values in results.items():
            serde.write_varint(buf, metric_id)
            serde.write_varint(buf, len(values))
            for column, value in values.items():
                serde.write_varint(buf, table[column])
                serde.write_value(buf, value)
    _write_offset_pairs(buf, msg.watermarks)
    serde.write_varint(buf, len(msg.processed))
    for worker_id, records, replies in msg.processed:
        serde.write_varint(buf, table[worker_id])
        serde.write_varint(buf, records)
        serde.write_varint(buf, replies)
    serde.write_varint(buf, msg.durable_seq)
    _write_telemetry_tail(buf, msg.trace, msg.stats)


# -- decoders -----------------------------------------------------------------


def decode(data: bytes) -> object:
    """Decode one frame produced by :func:`encode`."""
    if not data:
        raise SerdeError("empty wire frame")
    view = memoryview(data)
    tag = view[0]
    offset = 1
    if tag == MSG_WORK_BATCH:
        return _decode_work_batch(view, offset)
    if tag == MSG_BATCH_DONE:
        return _decode_batch_done(view, offset)
    if tag == MSG_CREATE_STREAM:
        name, offset = serde.read_str(view, offset)
        fields, offset = _read_field_pairs(view, offset)
        partitioners, offset = serde.read_str_list(view, offset)
        partitions, offset = serde.read_varint(view, offset)
        return CreateStream(StreamDef(name, fields, tuple(partitioners), partitions))
    if tag == MSG_CREATE_METRIC:
        metric_id, offset = serde.read_varint(view, offset)
        query_text, offset = serde.read_str(view, offset)
        stream, offset = serde.read_str(view, offset)
        topic, offset = serde.read_str(view, offset)
        backfill, offset = serde.read_varint(view, offset)
        count, offset = serde.read_varint(view, offset)
        activations = []
        for _ in range(count):
            tp, offset = _read_tp(view, offset)
            at_offset, offset = serde.read_varint(view, offset)
            activations.append((tp, at_offset))
        return CreateMetric(
            MetricDef(metric_id, query_text, stream, topic, bool(backfill)),
            tuple(activations),
        )
    if tag == MSG_DELETE_METRIC:
        metric_id, offset = serde.read_varint(view, offset)
        return DeleteMetric(metric_id)
    if tag == MSG_EVOLVE_SCHEMA:
        stream, offset = serde.read_str(view, offset)
        new_fields, offset = _read_field_pairs(view, offset)
        return EvolveSchema(stream, new_fields)
    if tag == MSG_ADD_PARTITIONER:
        stream, offset = serde.read_str(view, offset)
        partitioner, offset = serde.read_str(view, offset)
        return AddPartitioner(stream, partitioner)
    if tag == MSG_ASSIGN:
        count, offset = serde.read_varint(view, offset)
        partitions = []
        for _ in range(count):
            tp, offset = _read_tp(view, offset)
            partitions.append(tp)
        return AssignPartitions(tuple(partitions))
    if tag == MSG_CHECKPOINT_REQUEST:
        request_id, offset = serde.read_varint(view, offset)
        with_state = bool(view[offset])
        offset += 1
        known_count, offset = serde.read_varint(view, offset)
        known: list[tuple[TopicPartition, tuple[str, ...]]] = []
        for _ in range(known_count):
            tp, offset = _read_tp(view, offset)
            names, offset = serde.read_str_list(view, offset)
            known.append((tp, tuple(names)))
        return CheckpointRequest(request_id, with_state, tuple(known))
    if tag == MSG_RESTORE_TASK:
        checkpoint, offset = _read_task_checkpoint(view, offset)
        return RestoreTask(TaskCheckpointFrame(checkpoint))
    if tag == MSG_SHUTDOWN:
        return Shutdown()
    if tag == MSG_CRASH:
        return Crash()
    if tag == MSG_CHECKPOINT_ACK:
        request_id, offset = serde.read_varint(view, offset)
        count, offset = serde.read_varint(view, offset)
        offsets: dict[TopicPartition, int] = {}
        for _ in range(count):
            tp, offset = _read_tp(view, offset)
            next_offset, offset = serde.read_varint(view, offset)
            offsets[tp] = next_offset
        frame_count, offset = serde.read_varint(view, offset)
        frames: list[TaskCheckpointFrame] = []
        for _ in range(frame_count):
            checkpoint, offset = _read_task_checkpoint(view, offset)
            frames.append(TaskCheckpointFrame(checkpoint))
        return CheckpointAck(request_id, offsets, frames)
    if tag == MSG_WORKER_ERROR:
        message, offset = serde.read_str(view, offset)
        return WorkerError(message)
    if tag == MSG_BACKFILL_INSTALL:
        tp, offset = _read_tp(view, offset)
        at_offset, offset = serde.read_varint(view, offset)
        metric_id, offset = serde.read_varint(view, offset)
        query_text, offset = serde.read_str(view, offset)
        stream, offset = serde.read_str(view, offset)
        topic, offset = serde.read_str(view, offset)
        backfill, offset = serde.read_varint(view, offset)
        state_rows, offset = _read_row_pairs(view, offset)
        distinct_rows, offset = _read_row_pairs(view, offset)
        position_count, offset = serde.read_varint(view, offset)
        positions: dict[str, tuple[int, int]] = {}
        for _ in range(position_count):
            key, offset = serde.read_str(view, offset)
            chunk_id, offset = serde.read_signed_varint(view, offset)
            index, offset = serde.read_signed_varint(view, offset)
            positions[key] = (chunk_id, index)
        return BackfillInstall(
            tp,
            at_offset,
            MetricDef(metric_id, query_text, stream, topic, bool(backfill)),
            state_rows,
            distinct_rows,
            positions,
        )
    if tag == MSG_BACKFILL_INSTALLED:
        tp, offset = _read_tp(view, offset)
        metric_id, offset = serde.read_varint(view, offset)
        return BackfillInstalled(tp, metric_id)
    if tag == MSG_BACKFILL_START:
        metric, offset = _read_metric_def(view, offset)
        peer_count, offset = serde.read_varint(view, offset)
        peers = []
        for _ in range(peer_count):
            peer, offset = _read_metric_def(view, offset)
            peers.append(peer)
        seed_count, offset = serde.read_varint(view, offset)
        seeds = []
        for _ in range(seed_count):
            tp, offset = _read_tp(view, offset)
            checkpoint, offset = _read_task_checkpoint(view, offset)
            seeds.append((tp, checkpoint))
        return BackfillStart(metric, tuple(peers), tuple(seeds))
    if tag == MSG_BACKFILL_STOP:
        metric_id, offset = serde.read_varint(view, offset)
        return BackfillStop(metric_id)
    if tag == MSG_BACKFILL_STALE:
        tp, offset = _read_tp(view, offset)
        metric_id, offset = serde.read_varint(view, offset)
        next_offset, offset = serde.read_varint(view, offset)
        return BackfillStale(tp, metric_id, next_offset)
    if tag == MSG_BACKFILL_READ:
        tp, offset = _read_tp(view, offset)
        begin, offset = serde.read_varint(view, offset)
        max_records, offset = serde.read_varint(view, offset)
        return BackfillRead(tp, begin, max_records)
    if tag == MSG_BACKFILL_RECORDS:
        tp, offset = _read_tp(view, offset)
        begin, offset = serde.read_varint(view, offset)
        start_offset, offset = serde.read_varint(view, offset)
        end_offset, offset = serde.read_varint(view, offset)
        entries, offset = _read_event_records(view, offset)
        return BackfillRecords(tp, begin, entries, start_offset, end_offset)
    if tag == MSG_INGEST_BATCH:
        return _decode_ingest_batch(view, offset)
    if tag == MSG_FRONTEND_ASSIGN:
        route_count, offset = serde.read_varint(view, offset)
        routes = []
        for _ in range(route_count):
            tp, offset = _read_tp(view, offset)
            worker_id, offset = serde.read_str(view, offset)
            addr, offset = serde.read_str(view, offset)
            routes.append((tp, worker_id, addr))
        seeks, offset = _read_offset_pairs(view, offset)
        return FrontendAssign(tuple(routes), seeks)
    if tag == MSG_RESTORE_WATERMARKS:
        watermarks, offset = _read_offset_pairs(view, offset)
        seeks, offset = _read_offset_pairs(view, offset)
        ingest_base, offset = serde.read_varint(view, offset)
        return RestoreWatermarks(watermarks, seeks, ingest_base)
    if tag == MSG_TRUNCATE_LOGS:
        offsets, offset = _read_offset_pairs(view, offset)
        return TruncateLogs(offsets)
    if tag == MSG_WORKER_RESTARTED:
        worker_id, offset = serde.read_str(view, offset)
        addr, offset = serde.read_str(view, offset)
        seeks, offset = _read_offset_pairs(view, offset)
        return WorkerRestarted(worker_id, addr, seeks)
    if tag == MSG_DRAIN_REQUEST:
        request_id, offset = serde.read_varint(view, offset)
        return DrainRequest(request_id)
    if tag == MSG_REPLY_BATCH:
        return _decode_reply_batch(view, offset)
    if tag == MSG_DRAIN_ACK:
        request_id, offset = serde.read_varint(view, offset)
        watermarks, offset = _read_offset_pairs(view, offset)
        return DrainAck(request_id, watermarks)
    if tag == MSG_SHM_HELLO:
        work_ring, offset = serde.read_str(view, offset)
        reply_ring, offset = serde.read_str(view, offset)
        return ShmHello(work_ring, reply_ring)
    if tag == MSG_SHM_DOORBELL:
        return ShmDoorbell()
    if tag == MSG_HELLO:
        tenant, offset = serde.read_str(view, offset)
        token, offset = serde.read_str(view, offset)
        protocol, offset = serde.read_varint(view, offset)
        return Hello(tenant, token, protocol)
    if tag == MSG_HELLO_ACK:
        ok = bool(view[offset])
        offset += 1
        session, offset = serde.read_str(view, offset)
        error, offset = serde.read_str(view, offset)
        max_in_flight, offset = serde.read_varint(view, offset)
        p50, offset = serde.read_f64(view, offset)
        p99, offset = serde.read_f64(view, offset)
        return HelloAck(ok, session, error, max_in_flight, p50, p99)
    if tag == MSG_SERVER_BUSY:
        reason, offset = serde.read_str(view, offset)
        retry_after_ms, offset = serde.read_varint(view, offset)
        count, offset = serde.read_varint(view, offset)
        correlations = []
        for _ in range(count):
            correlation, offset = serde.read_varint(view, offset)
            correlations.append(correlation)
        return ServerBusy(reason, retry_after_ms, tuple(correlations))
    if tag == MSG_DDL_REQUEST:
        request_id, offset = serde.read_varint(view, offset)
        op, offset = serde.read_str(view, offset)
        name, offset = serde.read_str(view, offset)
        text, offset = serde.read_str(view, offset)
        fields, offset = _read_field_pairs(view, offset)
        names, offset = serde.read_str_list(view, offset)
        number, offset = serde.read_varint(view, offset)
        flag = bool(view[offset])
        offset += 1
        return DdlRequest(
            request_id, op, name, text, fields, tuple(names), number, flag
        )
    if tag == MSG_DDL_REPLY:
        request_id, offset = serde.read_varint(view, offset)
        ok = bool(view[offset])
        offset += 1
        value, offset = serde.read_varint(view, offset)
        error, offset = serde.read_str(view, offset)
        return DdlReply(request_id, ok, value, error)
    if tag == MSG_GOODBYE:
        return Goodbye()
    if tag == MSG_STATS_REQUEST:
        request_id, offset = serde.read_varint(view, offset)
        return StatsRequest(request_id)
    if tag == MSG_STATS_REPLY:
        request_id, offset = serde.read_varint(view, offset)
        payload, offset = serde.read_bytes(view, offset)
        return StatsReply(request_id, bytes(payload))
    raise SerdeError(f"unknown wire message tag {tag}")


def _decode_ingest_batch(view: memoryview, offset: int) -> IngestBatch:
    stream, offset = serde.read_str(view, offset)
    names, offset = serde.read_str_list(view, offset)
    count, offset = serde.read_varint(view, offset)
    entries: list[tuple[int, Event, tuple[tuple[str, int], ...]]] = []
    for _ in range(count):
        correlation_id, offset = serde.read_varint(view, offset)
        event_id, offset = serde.read_str(view, offset)
        timestamp, offset = serde.read_varint(view, offset)
        field_count, offset = serde.read_varint(view, offset)
        fields: dict[str, Any] = {}
        for _ in range(field_count):
            name_index, offset = serde.read_varint(view, offset)
            value, offset = serde.read_value(view, offset)
            fields[names[name_index]] = value
        target_count, offset = serde.read_varint(view, offset)
        targets = []
        for _ in range(target_count):
            name_index, offset = serde.read_varint(view, offset)
            partition, offset = serde.read_varint(view, offset)
            targets.append((names[name_index], partition))
        entries.append(
            (correlation_id, Event(event_id, timestamp, fields), tuple(targets))
        )
    trace, _ = _read_telemetry_tail(view, offset)
    return IngestBatch(stream, entries, trace)


def _decode_reply_batch(view: memoryview, offset: int) -> ReplyBatch:
    table, offset = serde.read_str_list(view, offset)
    count, offset = serde.read_varint(view, offset)
    replies: list[tuple[int, str, dict[int, dict[str, Any]] | None]] = []
    for _ in range(count):
        correlation_id, offset = serde.read_varint(view, offset)
        topic_index, offset = serde.read_varint(view, offset)
        present = view[offset]
        offset += 1
        if not present:
            replies.append((correlation_id, table[topic_index], None))
            continue
        metric_count, offset = serde.read_varint(view, offset)
        results: dict[int, dict[str, Any]] = {}
        for _ in range(metric_count):
            metric_id, offset = serde.read_varint(view, offset)
            column_count, offset = serde.read_varint(view, offset)
            values: dict[str, Any] = {}
            for _ in range(column_count):
                column_index, offset = serde.read_varint(view, offset)
                value, offset = serde.read_value(view, offset)
                values[table[column_index]] = value
            results[metric_id] = values
        replies.append((correlation_id, table[topic_index], results))
    watermarks, offset = _read_offset_pairs(view, offset)
    processed_count, offset = serde.read_varint(view, offset)
    processed = []
    for _ in range(processed_count):
        worker_index, offset = serde.read_varint(view, offset)
        records, offset = serde.read_varint(view, offset)
        reply_count, offset = serde.read_varint(view, offset)
        processed.append((table[worker_index], records, reply_count))
    durable_seq, offset = serde.read_varint(view, offset)
    trace, stats = _read_telemetry_tail(view, offset)
    return ReplyBatch(
        replies, watermarks, tuple(processed), durable_seq, trace, stats
    )


def _decode_work_batch(view: memoryview, offset: int) -> WorkBatch:
    tp, offset = _read_tp(view, offset)
    reply_from, offset = serde.read_varint(view, offset)
    names, offset = serde.read_str_list(view, offset)
    count, offset = serde.read_varint(view, offset)
    records: list[tuple[int, Event]] = []
    for _ in range(count):
        record_offset, offset = serde.read_varint(view, offset)
        event_id, offset = serde.read_str(view, offset)
        timestamp, offset = serde.read_varint(view, offset)
        field_count, offset = serde.read_varint(view, offset)
        fields: dict[str, Any] = {}
        for _ in range(field_count):
            name_index, offset = serde.read_varint(view, offset)
            value, offset = serde.read_value(view, offset)
            fields[names[name_index]] = value
        records.append((record_offset, Event(event_id, timestamp, fields)))
    trace, _ = _read_telemetry_tail(view, offset)
    return WorkBatch(tp, reply_from, records, trace)


def _decode_batch_done(view: memoryview, offset: int) -> BatchDone:
    tp, offset = _read_tp(view, offset)
    next_offset, offset = serde.read_varint(view, offset)
    processed, offset = serde.read_varint(view, offset)
    columns, offset = serde.read_str_list(view, offset)
    count, offset = serde.read_varint(view, offset)
    replies: list[tuple[int, dict[int, dict[str, Any]] | None]] = []
    for _ in range(count):
        reply_offset, offset = serde.read_varint(view, offset)
        present = view[offset]
        offset += 1
        if not present:
            replies.append((reply_offset, None))
            continue
        metric_count, offset = serde.read_varint(view, offset)
        results: dict[int, dict[str, Any]] = {}
        for _ in range(metric_count):
            metric_id, offset = serde.read_varint(view, offset)
            column_count, offset = serde.read_varint(view, offset)
            values: dict[str, Any] = {}
            for _ in range(column_count):
                column_index, offset = serde.read_varint(view, offset)
                value, offset = serde.read_value(view, offset)
                values[columns[column_index]] = value
            results[metric_id] = values
        replies.append((reply_offset, results))
    trace, stats = _read_telemetry_tail(view, offset)
    return BatchDone(tp, next_offset, processed, replies, trace, stats)
