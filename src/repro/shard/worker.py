"""The shard worker — one OS process owning a set of partitions.

A worker is the process-parallel counterpart of a
:class:`~repro.engine.processor.ProcessorUnit`: it runs the batched
consume→process loop (``WorkBatch`` in, ``BatchDone`` out) over its own
:class:`~repro.engine.task.TaskProcessor` per owned partition. It holds
no connection to the message bus — the coordinator side (the
``ParallelCluster`` dispatcher, or each sharded frontend process) polls
the log on its behalf and ships contiguous offset runs across a pipe or
data socket — so the whole data path of a worker is: decode batch,
``process_batch``, encode replies.

Workers are born empty. Catalogue state (streams, metrics, schema
evolutions) arrives as control messages; task state either accumulates
from work batches or arrives wholesale as a
:class:`~repro.shard.wire.RestoreTask` checkpoint frame. After a crash
the supervisor replays the control log into a fresh process, ships each
owned task's latest stored checkpoint, and the cluster replays only the
partition tail past the checkpointed offset with ``reply_from`` set to
the replied watermark — bounded-replay recovery that never duplicates a
client reply. On ``CheckpointRequest(with_state=True)`` the worker
snapshots every owned task and ships the frames back inside the ack,
omitting immutable files the supervisor advertised it already holds.
"""

from __future__ import annotations

import os
import socket
import traceback
from multiprocessing import connection
from multiprocessing.connection import Connection

from repro.engine.catalog import (
    AddPartitionerOp,
    Catalog,
    CreateMetricOp,
    CreateStreamOp,
    DeleteMetricOp,
    EvolveSchemaOp,
)
from repro.engine.processor import UnitConfig
from repro.engine.task import TaskCheckpoint, TaskProcessor
from repro.messaging.log import TopicPartition
from repro.shard import columnar, wire
from repro.shard.shm import ShmError, ShmRing

#: Pre-encoded readiness ping for the shm transport; see shard.shm.
DOORBELL = wire.encode(wire.ShmDoorbell())


class ShardWorker:
    """The in-process brain of one shard worker (testable without fork)."""

    def __init__(self, worker_id: str, config: UnitConfig | None = None) -> None:
        self.worker_id = worker_id
        self.config = config if config is not None else UnitConfig()
        self.catalog = Catalog()
        self.assigned: set[TopicPartition] = set()
        self.task_processors: dict[TopicPartition, TaskProcessor] = {}
        #: last checkpoint taken per task, so the next one can release
        #: the LSM files the previous snapshot pinned.
        self._last_checkpoints: dict[TopicPartition, TaskCheckpoint] = {}
        self.messages_processed = 0

    # -- control plane --------------------------------------------------------

    def handle_control(self, msg: object) -> None:
        """Apply one control message to the local catalogue and tasks."""
        if isinstance(msg, wire.CreateStream):
            self.catalog.apply(CreateStreamOp(msg.stream))
        elif isinstance(msg, wire.CreateMetric):
            self.catalog.apply(CreateMetricOp(msg.metric))
            for tp, processor in self.task_processors.items():
                if tp.topic == msg.metric.topic:
                    processor.add_metric(msg.metric)
        elif isinstance(msg, wire.DeleteMetric):
            self.catalog.apply(DeleteMetricOp(msg.metric_id))
            for processor in self.task_processors.values():
                processor.remove_metric(msg.metric_id)
        elif isinstance(msg, wire.AddPartitioner):
            self.catalog.apply(AddPartitionerOp(msg.stream, msg.partitioner))
        elif isinstance(msg, wire.EvolveSchema):
            self.catalog.apply(EvolveSchemaOp(msg.stream, msg.new_fields))
            stream = self.catalog.streams[msg.stream]
            for processor in self.task_processors.values():
                if processor.stream_name == msg.stream:
                    processor.evolve_schema(stream)
        elif isinstance(msg, wire.AssignPartitions):
            self.assigned = set(msg.partitions)
            # Revoked tasks are dropped: the sticky strategy keeps
            # tasks on their worker, so a revoke means another worker
            # now owns the task and rebuilds it from the shipped
            # checkpoint (plus the replayed tail when one exists).
            for tp in list(self.task_processors):
                if tp not in self.assigned:
                    del self.task_processors[tp]
                    self._last_checkpoints.pop(tp, None)
        else:
            raise TypeError(f"unexpected control message: {type(msg).__name__}")

    # -- data plane -----------------------------------------------------------

    def handle_work(self, batch: wire.WorkBatch) -> wire.BatchDone:
        """Process one contiguous offset run; build the reply frame."""
        processor = self._processor_for(batch.tp)
        answers = processor.process_batch(batch.records)
        self.messages_processed += len(batch.records)
        reply_from = batch.reply_from
        replies = [
            (offset, answer)
            for (offset, _), answer in zip(batch.records, answers)
            if offset >= reply_from
        ]
        return wire.BatchDone(
            tp=batch.tp,
            next_offset=processor.next_offset,
            processed=len(batch.records),
            replies=replies,
        )

    def checkpoint_offsets(self) -> dict[TopicPartition, int]:
        """Consumed offsets per owned task (message-boundary consistent)."""
        return {
            tp: processor.next_offset
            for tp, processor in sorted(
                self.task_processors.items(), key=lambda item: str(item[0])
            )
        }

    # -- checkpoint shipping ---------------------------------------------------

    def build_checkpoints(
        self, known_files: dict[TopicPartition, frozenset[str]] | None = None
    ) -> list[wire.TaskCheckpointFrame]:
        """Snapshot every owned task as (delta) checkpoint frames.

        ``known_files`` lists immutable files the receiver already holds
        per task; their contents are never read or copied (sealed
        reservoir segments and LSM tables never change, so the name is
        enough for the receiver to reuse its copy) — a steady-state
        snapshot costs O(new state). The previous LSM checkpoint of
        each task is released so a long-running worker does not pin
        every historical table file.
        """
        known = known_files or {}
        frames: list[wire.TaskCheckpointFrame] = []
        for tp, processor in sorted(
            self.task_processors.items(), key=lambda item: str(item[0])
        ):
            checkpoint = processor.checkpoint(
                exclude_files=set(known.get(tp, ()))
            )
            previous = self._last_checkpoints.get(tp)
            if previous is not None:
                processor.state.db.release_checkpoint(previous.state_checkpoint)
            self._last_checkpoints[tp] = checkpoint
            frames.append(wire.TaskCheckpointFrame(checkpoint))
        return frames

    def restore_task(self, frame: wire.TaskCheckpointFrame) -> None:
        """Seed a task processor from a (fully materialized) checkpoint.

        The frame must arrive after the control log, so the catalogue
        already knows the stream and metrics; replay of the partition
        tail past ``frame.offset`` then brings the task up to date.
        """
        tp = frame.tp
        stream = self.catalog.stream_of_topic(tp.topic)
        if stream is None:
            raise KeyError(
                f"worker {self.worker_id} got a checkpoint for unknown "
                f"topic {tp.topic!r}"
            )
        self.task_processors[tp] = TaskProcessor.restore(
            frame.checkpoint,
            stream,
            self.catalog.metrics_for_topic(tp.topic),
            reservoir_config=self.config.reservoir,
            lsm_config=self.config.lsm,
        )

    def _processor_for(self, tp: TopicPartition) -> TaskProcessor:
        processor = self.task_processors.get(tp)
        if processor is not None:
            return processor
        stream = self.catalog.stream_of_topic(tp.topic)
        if stream is None:
            raise KeyError(
                f"worker {self.worker_id} got work for unknown topic {tp.topic!r}"
            )
        processor = TaskProcessor.build(
            tp,
            stream,
            self.catalog.metrics_for_topic(tp.topic),
            reservoir_config=self.config.reservoir,
            lsm_config=self.config.lsm,
        )
        self.task_processors[tp] = processor
        return processor


def _bind_listener(addr: str) -> socket.socket:
    """Bind the worker's data-socket listener (AF_UNIX, stream).

    A restarted worker rebinds the *same* address — frontends reconnect
    to it after the supervisor announces the restart — so a stale socket
    file from the previous incarnation is unlinked first.
    """
    if os.path.exists(addr):
        os.unlink(addr)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(addr)
    sock.listen(16)
    return sock


def _handle_one(
    worker: ShardWorker, conn: Connection, msg: object
) -> bool:
    """Dispatch one frame; replies go back on the conn it arrived on.

    Returns False when the worker should exit (graceful shutdown).
    """
    if isinstance(msg, wire.WorkBatch):
        conn.send_bytes(wire.encode(worker.handle_work(msg)))
    elif isinstance(msg, wire.CheckpointRequest):
        frames = (
            worker.build_checkpoints(msg.known_files_map())
            if msg.with_state
            else []
        )
        conn.send_bytes(
            wire.encode(
                wire.CheckpointAck(
                    msg.request_id, worker.checkpoint_offsets(), frames
                )
            )
        )
    elif isinstance(msg, wire.RestoreTask):
        worker.restore_task(msg.frame)
    elif isinstance(msg, wire.Shutdown):
        return False
    elif isinstance(msg, wire.Crash):
        os._exit(17)  # fault injection: die without cleanup
    elif isinstance(msg, wire.ShmDoorbell):
        pass  # pure wakeup; the main loop drains the rings
    else:
        worker.handle_control(msg)
    return True


def _drain_data_ring(
    worker: ShardWorker,
    data_conn: Connection,
    rings: tuple[ShmRing, ShmRing],
) -> bool:
    """Drain one frontend link's work ring; False when the link is dead.

    Mirrors the socket loop's error discipline: only ring/socket I/O
    counts as "the frontend went away" — ``handle_work`` exceptions
    (reservoir/LSM I/O) propagate to the ``WorkerError`` reporter.
    """
    work, reply = rings
    replied = False
    while True:
        try:
            payload = work.try_recv()
        except ShmError:
            return False
        if payload is None:
            break
        done = columnar.encode(worker.handle_work(columnar.decode(payload)))
        try:
            reply.send(done)
        except (OSError, ShmError):
            return False
        replied = True
    if replied:
        try:
            data_conn.send_bytes(DOORBELL)
        except OSError:
            return False
    return True


def shard_worker_main(
    conn: Connection,
    worker_id: str,
    config: UnitConfig | None = None,
    listen_addr: str | None = None,
    shm_names: tuple[str, str] | None = None,
) -> None:
    """Worker process entrypoint: decode → dispatch → reply, until told to stop.

    The supervisor's duplex pipe (``conn``) is the control channel:
    DDL replay, assignment, checkpoint requests, restore frames,
    shutdown. With ``listen_addr`` set (sharded-frontend mode) the
    worker additionally listens on an AF_UNIX socket where frontend
    processes connect their data channels; ``WorkBatch`` frames then
    arrive on those sockets and each ``BatchDone`` is answered on the
    socket its batch came from. Whenever both channels are readable the
    control channel is drained *completely first* — that ordering is
    what guarantees a restarted worker applies its replayed control log
    and ``RestoreTask`` checkpoints before any replayed work batch, and
    a rebalanced task's checkpoint lands before its new traffic.

    With ``shm_names`` set (``transport="shm"``) the supervisor's work
    batches instead arrive columnar-packed through a shared-memory ring
    attached at ``shm_names[0]`` and replies return through the ring at
    ``shm_names[1]``; the pipe carries only control frames and
    doorbells. Frontend links upgrade the same way per connection via a
    ``ShmHello`` on their data socket. The cross-channel ordering
    guarantee holds because a ring frame is published strictly after
    any control frame that precedes it was written to the pipe, and the
    ring drain re-polls the pipe before processing each frame.

    Any exception is reported as a :class:`~repro.shard.wire.WorkerError`
    frame on the control channel before the process exits non-zero, so
    the supervisor can log the cause instead of just observing a dead
    pipe.
    """
    worker = ShardWorker(worker_id, config)
    listener = _bind_listener(listen_addr) if listen_addr is not None else None
    data_conns: list[Connection] = []
    sup_work = sup_reply = None
    if shm_names is not None:
        sup_work = ShmRing.attach(shm_names[0], "consumer")
        sup_reply = ShmRing.attach(shm_names[1], "producer")
    #: per-frontend-link ring pair ``(work, reply)``, announced by
    #: ``ShmHello`` on that link's data socket.
    data_rings: dict[Connection, tuple[ShmRing, ShmRing]] = {}

    def all_rings() -> list[ShmRing]:
        rings = [] if sup_work is None else [sup_work, sup_reply]
        for pair in data_rings.values():
            rings.extend(pair)
        return rings

    def drop_data_conn(data_conn: Connection, *, unlink: bool) -> None:
        data_conns.remove(data_conn)
        data_conn.close()
        for ring in data_rings.pop(data_conn, ()):
            ring.close(unlink=unlink)

    parent_pid = os.getppid()
    try:
        while True:
            wait_on: list = [conn, *data_conns]
            if listener is not None:
                wait_on.append(listener)
            # With rings attached the wait must time out so heartbeats
            # keep advancing even on an idle link; without, it times out
            # anyway so the orphan check below runs on an idle worker.
            timeout = 0.5 if (sup_work is not None or data_rings) else 1.0
            ready = set(connection.wait(wait_on, timeout))
            if os.getppid() != parent_pid:
                # The owning process was killed without cleanup. Pipe
                # EOF cannot signal this: forked siblings inherit each
                # other's pipe ends and keep them open, so reparenting
                # is the only reliable death signal.
                return
            for ring in all_rings():
                ring.beat()
            if conn in ready:
                # Drain the control channel fully before touching data.
                while True:
                    if not _handle_one(worker, conn, wire.decode(conn.recv_bytes())):
                        return
                    if not conn.poll(0):
                        break
            if sup_work is not None:
                replied = False
                while True:
                    payload = sup_work.try_recv()
                    if payload is None:
                        break
                    # A visible ring frame was published strictly after
                    # any control frame sent before it, so that control
                    # frame is already readable — apply it first
                    # (restore-before-work across the two channels).
                    while conn.poll(0):
                        if not _handle_one(
                            worker, conn, wire.decode(conn.recv_bytes())
                        ):
                            return
                    batch = columnar.decode(payload)
                    sup_reply.send(columnar.encode(worker.handle_work(batch)))
                    replied = True
                if replied:
                    conn.send_bytes(DOORBELL)
            if listener is not None and listener in ready:
                accepted, _ = listener.accept()
                data_conns.append(Connection(accepted.detach()))
            for data_conn in [c for c in data_conns if c in ready]:
                # Only the socket reads/writes may be treated as "the
                # frontend went away" — an OSError raised by batch
                # processing itself (reservoir/LSM I/O) must propagate
                # to the WorkerError reporter below, not silently close
                # a healthy frontend's link.
                while True:
                    try:
                        payload = data_conn.recv_bytes()
                    except (EOFError, OSError):
                        # A SIGKILLed frontend cannot unlink its rings;
                        # this worker is the last process holding them.
                        drop_data_conn(data_conn, unlink=True)
                        break
                    msg = wire.decode(payload)
                    if isinstance(msg, wire.WorkBatch):
                        frame = wire.encode(worker.handle_work(msg))
                        try:
                            data_conn.send_bytes(frame)
                        except OSError:
                            drop_data_conn(data_conn, unlink=True)
                            break
                    elif isinstance(msg, wire.ShmHello):
                        data_rings[data_conn] = (
                            ShmRing.attach(msg.work_ring, "consumer"),
                            ShmRing.attach(msg.reply_ring, "producer"),
                        )
                    elif not _handle_one(worker, data_conn, msg):
                        return
                    if not data_conn.poll(0):
                        break
            # Doorbells only wake the loop; every upgraded link's work
            # ring is drained each pass (cheap: a head==tail load when
            # idle), so a doorbell coalesced with the frame it announced
            # is never lost.
            for data_conn in list(data_conns):
                rings = data_rings.get(data_conn)
                if rings is not None and not _drain_data_ring(
                    worker, data_conn, rings
                ):
                    drop_data_conn(data_conn, unlink=True)
    except EOFError:
        return  # supervisor went away; nothing left to reply to
    except BaseException:
        try:
            conn.send_bytes(
                wire.encode(wire.WorkerError(traceback.format_exc(limit=8)))
            )
        except OSError:
            pass
        raise
    finally:
        # Attached rings are closed (not unlinked — their owners clean
        # up) so a blocked peer fails fast on the closed flag instead of
        # waiting out the staleness window.
        for ring in all_rings():
            ring.close()
